//! Round-trip coverage of every derive shape the workspace's new tagged
//! payloads use — most importantly `AnyInstance`'s form: an enum whose
//! tuple variants carry structs of `Vec`s, nested tuples, and `Option`s
//! (the problem-announce frame), next to the named-field and unit
//! variants the protocol messages already exercised.

use serde::{decode, encode, Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Inner {
    weight: u64,
    profit: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct VecPayload {
    capacity: u64,
    items: Vec<Inner>,
    scale: f64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct NestedPayload {
    /// The `BasicNode` shape: options of tuples, with ids and flags.
    parent: Option<(u32, bool)>,
    solution: Option<f64>,
    children: Option<(u32, u32)>,
}

/// The `AnyInstance` shape: a tagged enum over struct payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Tagged {
    Flat(VecPayload),
    Deep(Vec<NestedPayload>),
    Named { id: u32, label: String },
    Unit,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct HoldsEnum {
    before: u8,
    tag: Tagged,
    after: u16,
}

fn samples() -> Vec<Tagged> {
    vec![
        Tagged::Flat(VecPayload {
            capacity: 31,
            items: vec![
                Inner {
                    weight: 5,
                    profit: 9,
                },
                Inner {
                    weight: 1,
                    profit: 2,
                },
            ],
            scale: 0.125,
        }),
        Tagged::Deep(vec![
            NestedPayload {
                parent: None,
                solution: Some(7.0),
                children: Some((1, 2)),
            },
            NestedPayload {
                parent: Some((0, true)),
                solution: None,
                children: None,
            },
        ]),
        Tagged::Named {
            id: 99,
            label: "wire".to_string(),
        },
        Tagged::Unit,
    ]
}

#[test]
fn every_tagged_shape_round_trips() {
    for value in samples() {
        let bytes = encode(&value);
        let back: Tagged = decode(&bytes).expect("round trip");
        assert_eq!(back, value);
    }
}

#[test]
fn enum_inside_struct_round_trips() {
    for tag in samples() {
        let value = HoldsEnum {
            before: 3,
            tag,
            after: 512,
        };
        let bytes = encode(&value);
        let back: HoldsEnum = decode(&bytes).expect("round trip");
        assert_eq!(back, value);
    }
}

#[test]
fn variant_tags_are_stable_and_invalid_tags_rejected() {
    // The derive assigns tags in declaration order — the wire format
    // contract the announce frame depends on.
    assert_eq!(encode(&Tagged::Unit)[0], 3);
    let named = encode(&Tagged::Named {
        id: 1,
        label: String::new(),
    });
    assert_eq!(named[0], 2);

    // An out-of-range tag must error, never panic or misdecode.
    let mut bytes = encode(&Tagged::Unit);
    bytes[0] = 200;
    assert!(decode::<Tagged>(&bytes).is_err());
}

/// The `RejoinSummary` shape (ftbb-wire's rejoin frame payload): a flat
/// struct of floats and counters, encoded next to a `String` address —
/// the exact field mix the rejoin handshake writes. No shim growth was
/// needed for it; this pins the encoding it relies on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct RejoinShaped {
    incumbent: f64,
    table_codes: u32,
    pool_len: u32,
}

#[test]
fn rejoin_shaped_payloads_round_trip_next_to_strings() {
    for (summary, addr) in [
        (
            RejoinShaped {
                incumbent: -127.25,
                table_codes: 4096,
                pool_len: 0,
            },
            "127.0.0.1:45107",
        ),
        (
            RejoinShaped {
                incumbent: f64::INFINITY,
                table_codes: 0,
                pool_len: u32::MAX,
            },
            "[::1]:1",
        ),
    ] {
        // Encoded exactly as the rejoin frame lays it out: address
        // string, then the summary struct.
        let mut bytes = Vec::new();
        addr.to_string().ser(&mut bytes);
        summary.ser(&mut bytes);

        let mut r = bytes.as_slice();
        let got_addr = String::de(&mut r).expect("address decodes");
        let got_summary = RejoinShaped::de(&mut r).expect("summary decodes");
        assert!(r.is_empty(), "nothing may trail the summary");
        assert_eq!(got_addr, addr);
        assert_eq!(got_summary, summary);
    }
}

#[test]
fn truncated_payloads_error_cleanly() {
    for value in samples() {
        let bytes = encode(&value);
        for cut in 0..bytes.len() {
            assert!(
                decode::<Tagged>(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }
}
