//! Minimal, offline stand-in for `serde`, specialized to one format.
//!
//! The real serde separates data model from format; this workspace needs
//! exactly one format — the compact little-endian binary encoding used by
//! `ftbb-wire` — so [`Serialize`]/[`Deserialize`] *are* that codec:
//!
//! * fixed-width little-endian integers and floats (`usize` as `u64`);
//! * `bool` as one validated byte (decode rejects values > 1);
//! * `Vec`/`String`/maps with a `u32` length prefix;
//! * `Option` as a validated tag byte;
//! * enums as a `u8` variant tag (validated on decode);
//! * structs as the concatenation of their fields in declaration order.
//!
//! Decoding is total: corrupt or truncated input returns [`DecodeError`],
//! never panics, and length prefixes cannot trigger oversized allocations
//! (capacity is clamped to what the remaining input could possibly hold).
//!
//! The derive macros are re-exported so `use serde::{Serialize,
//! Deserialize}` + `#[derive(Serialize, Deserialize)]` work exactly as with
//! real serde (including `#[serde(into = "...", from = "...")]`).

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// Error produced by failed decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(String);

impl DecodeError {
    /// Build an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        DecodeError(m.into())
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Types encodable to the workspace binary format.
pub trait Serialize {
    /// Append this value's encoding to `out`.
    fn ser(&self, out: &mut Vec<u8>);
}

/// Types decodable from the workspace binary format.
pub trait Deserialize: Sized {
    /// Decode a value from the front of `r`, advancing it.
    fn de(r: &mut &[u8]) -> Result<Self, DecodeError>;
}

/// Encode a value to bytes.
pub fn encode<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.ser(&mut out);
    out
}

/// Decode a value from bytes, requiring all input to be consumed.
pub fn decode<T: Deserialize>(mut data: &[u8]) -> Result<T, DecodeError> {
    let value = T::de(&mut data)?;
    if !data.is_empty() {
        return Err(DecodeError::msg(format!(
            "{} trailing bytes after value",
            data.len()
        )));
    }
    Ok(value)
}

/// Read exactly `n` bytes, advancing `r`.
pub fn read_bytes<'a>(r: &mut &'a [u8], n: usize) -> Result<&'a [u8], DecodeError> {
    if r.len() < n {
        return Err(DecodeError::msg(format!(
            "truncated: need {n} bytes, have {}",
            r.len()
        )));
    }
    let (head, tail) = r.split_at(n);
    *r = tail;
    Ok(head)
}

/// Read one byte (used by derived enum/option decoders).
pub fn read_u8(r: &mut &[u8]) -> Result<u8, DecodeError> {
    Ok(read_bytes(r, 1)?[0])
}

/// Read a `u32` length prefix, rejecting lengths beyond a sanity bound.
fn read_len(r: &mut &[u8]) -> Result<usize, DecodeError> {
    let len = u32::de(r)? as usize;
    Ok(len)
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl Deserialize for $t {
            fn de(r: &mut &[u8]) -> Result<Self, DecodeError> {
                let bytes = read_bytes(r, std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("sized read")))
            }
        }
    )*}
}
impl_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, f32, f64);

impl Serialize for usize {
    fn ser(&self, out: &mut Vec<u8>) {
        (*self as u64).ser(out);
    }
}

impl Deserialize for usize {
    fn de(r: &mut &[u8]) -> Result<Self, DecodeError> {
        let v = u64::de(r)?;
        usize::try_from(v).map_err(|_| DecodeError::msg("usize out of range"))
    }
}

impl Serialize for isize {
    fn ser(&self, out: &mut Vec<u8>) {
        (*self as i64).ser(out);
    }
}

impl Deserialize for isize {
    fn de(r: &mut &[u8]) -> Result<Self, DecodeError> {
        let v = i64::de(r)?;
        isize::try_from(v).map_err(|_| DecodeError::msg("isize out of range"))
    }
}

impl Serialize for bool {
    fn ser(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
}

impl Deserialize for bool {
    fn de(r: &mut &[u8]) -> Result<Self, DecodeError> {
        match read_u8(r)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DecodeError::msg(format!("invalid bool byte {b}"))),
        }
    }
}

impl Serialize for String {
    fn ser(&self, out: &mut Vec<u8>) {
        (self.len() as u32).ser(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl Deserialize for String {
    fn de(r: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = read_len(r)?;
        let bytes = read_bytes(r, len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::msg("invalid utf-8"))
    }
}

impl Serialize for str {
    fn ser(&self, out: &mut Vec<u8>) {
        (self.len() as u32).ser(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl Deserialize for &'static str {
    /// Trace labels are interned static strings; decoding leaks one
    /// allocation per distinct decoded label, matching that intent.
    fn de(r: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Box::leak(String::de(r)?.into_boxed_str()))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn ser(&self, out: &mut Vec<u8>) {
        (self.len() as u32).ser(out);
        for item in self {
            item.ser(out);
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn de(r: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = read_len(r)?;
        // An adversarial length cannot force a huge allocation: every
        // element consumes at least one input byte for all types used on
        // the wire, so clamp capacity by what the input could hold.
        let mut v = Vec::with_capacity(len.min(r.len()));
        for _ in 0..len {
            v.push(T::de(r)?);
        }
        Ok(v)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn ser(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.ser(out);
            }
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn de(r: &mut &[u8]) -> Result<Self, DecodeError> {
        match read_u8(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::de(r)?)),
            b => Err(DecodeError::msg(format!("invalid option tag {b}"))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn ser(&self, out: &mut Vec<u8>) {
        (self.len() as u32).ser(out);
        for (k, v) in self {
            k.ser(out);
            v.ser(out);
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn de(r: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = read_len(r)?;
        let mut m = BTreeMap::new();
        for _ in 0..len {
            let k = K::de(r)?;
            let v = V::de(r)?;
            m.insert(k, v);
        }
        Ok(m)
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn ser(&self, out: &mut Vec<u8>) {
        (self.len() as u32).ser(out);
        for (k, v) in self {
            k.ser(out);
            v.ser(out);
        }
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn de(r: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = read_len(r)?;
        let mut m = HashMap::with_capacity(len.min(r.len()));
        for _ in 0..len {
            let k = K::de(r)?;
            let v = V::de(r)?;
            m.insert(k, v);
        }
        Ok(m)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn ser(&self, out: &mut Vec<u8>) {
                $(self.$n.ser(out);)+
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn de(r: &mut &[u8]) -> Result<Self, DecodeError> {
                Ok(($($t::de(r)?,)+))
            }
        }
    )+}
}
impl_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn ser(&self, out: &mut Vec<u8>) {
        (**self).ser(out);
    }
}

/// `Arc<T>` encodes exactly as `T` (sharing is a process-local concern,
/// not a wire one) — so a field can switch between owned and shared
/// without changing its encoding.
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn ser(&self, out: &mut Vec<u8>) {
        (**self).ser(out);
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn de(r: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(std::sync::Arc::new(T::de(r)?))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn ser(&self, out: &mut Vec<u8>) {
        (self.len() as u32).ser(out);
        for item in self {
            item.ser(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(decode::<u32>(&encode(&7u32)).unwrap(), 7);
        assert_eq!(decode::<f64>(&encode(&1.25f64)).unwrap(), 1.25);
        assert!(decode::<bool>(&encode(&true)).unwrap());
        assert_eq!(decode::<usize>(&encode(&9usize)).unwrap(), 9);
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        assert_eq!(decode::<Vec<(u32, f64)>>(&encode(&v)).unwrap(), v);
        let s = "héllo".to_string();
        assert_eq!(decode::<String>(&encode(&s)).unwrap(), s);
        let o: Option<u64> = Some(11);
        assert_eq!(decode::<Option<u64>>(&encode(&o)).unwrap(), o);
    }

    #[test]
    fn corrupt_input_errors_not_panics() {
        assert!(decode::<u64>(&[1, 2, 3]).is_err());
        assert!(decode::<bool>(&[2]).is_err());
        assert!(decode::<Option<u8>>(&[9, 0]).is_err());
        assert!(decode::<String>(&[2, 0, 0, 0, 0xff, 0xfe]).is_err());
        // Huge claimed length with tiny payload: must error, not OOM.
        let mut evil = Vec::new();
        (u32::MAX).ser(&mut evil);
        evil.push(1);
        assert!(decode::<Vec<u16>>(&evil).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&5u8);
        bytes.push(0);
        assert!(decode::<u8>(&bytes).is_err());
    }

    #[test]
    fn arc_encodes_as_its_inner_value() {
        let owned: Option<Vec<u32>> = Some(vec![1, 2, 3]);
        let shared: Option<std::sync::Arc<Vec<u32>>> = Some(std::sync::Arc::new(vec![1, 2, 3]));
        assert_eq!(encode(&owned), encode(&shared));
        let back: Option<std::sync::Arc<Vec<u32>>> = decode(&encode(&owned)).unwrap();
        assert_eq!(back, shared);
    }

    #[test]
    fn map_round_trip() {
        let mut m = BTreeMap::new();
        m.insert(3u32, "three".to_string());
        m.insert(1, "one".to_string());
        assert_eq!(decode::<BTreeMap<u32, String>>(&encode(&m)).unwrap(), m);
    }
}
