//! Property tests for the work-stealing deque shim: no interleaving of
//! owner pushes/pops, injector pushes, and steals may ever lose a task or
//! deliver one twice. Each case replays a random operation script against
//! the deques while tracking a multiset model of what went in and what
//! came out; the books must balance exactly.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use proptest::prelude::*;

/// One scripted operation. The value payloads are drawn unique per case so
/// duplication is detectable (a lost task shows up as a missing value, a
/// duplicated one as a double count).
#[derive(Clone, Copy, Debug)]
enum Op {
    PushWorker,
    PushInjector,
    PopWorker,
    StealFromWorker,
    StealFromInjector,
    BatchFromInjector,
}

fn op_from(code: u8) -> Op {
    match code % 6 {
        0 => Op::PushWorker,
        1 => Op::PushInjector,
        2 => Op::PopWorker,
        3 => Op::StealFromWorker,
        4 => Op::StealFromInjector,
        _ => Op::BatchFromInjector,
    }
}

/// Replay `script` against a fresh Worker/Stealer/Injector triple and
/// return (pushed, taken) value lists.
fn replay(script: &[u8], lifo: bool) -> (Vec<u64>, Vec<u64>) {
    let worker = if lifo {
        Worker::new_lifo()
    } else {
        Worker::new_fifo()
    };
    let stealer: Stealer<u64> = worker.stealer();
    let injector: Injector<u64> = Injector::new();
    // A second worker receiving injector batches, drained at the end.
    let batch_dest = Worker::new_fifo();

    let mut next = 0u64;
    let mut pushed = Vec::new();
    let mut taken = Vec::new();

    for &code in script {
        match op_from(code) {
            Op::PushWorker => {
                worker.push(next);
                pushed.push(next);
                next += 1;
            }
            Op::PushInjector => {
                injector.push(next);
                pushed.push(next);
                next += 1;
            }
            Op::PopWorker => {
                if let Some(v) = worker.pop() {
                    taken.push(v);
                }
            }
            Op::StealFromWorker => {
                // Uncontended in this single-threaded replay, so Retry
                // would be a shim bug.
                match stealer.steal() {
                    Steal::Success(v) => taken.push(v),
                    Steal::Empty => {}
                    Steal::Retry => panic!("uncontended steal reported Retry"),
                }
            }
            Op::StealFromInjector => match injector.steal() {
                Steal::Success(v) => taken.push(v),
                Steal::Empty => {}
                Steal::Retry => panic!("uncontended steal reported Retry"),
            },
            Op::BatchFromInjector => match injector.steal_batch_and_pop(&batch_dest) {
                Steal::Success(v) => taken.push(v),
                Steal::Empty => {}
                Steal::Retry => panic!("uncontended batch steal reported Retry"),
            },
        }
    }

    // Drain every residual queue: whatever was pushed but not yet taken
    // must still be sitting in exactly one of them.
    while let Some(v) = worker.pop() {
        taken.push(v);
    }
    while let Some(v) = batch_dest.pop() {
        taken.push(v);
    }
    loop {
        match injector.steal() {
            Steal::Success(v) => taken.push(v),
            Steal::Empty => break,
            Steal::Retry => panic!("uncontended steal reported Retry"),
        }
    }
    (pushed, taken)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn interleavings_never_lose_or_duplicate(
        script in collection::vec(any::<u8>(), 0..200),
        lifo in any::<bool>(),
    ) {
        let (mut pushed, mut taken) = replay(&script, lifo);
        pushed.sort_unstable();
        taken.sort_unstable();
        // Every pushed value came out exactly once: sorted equality is
        // simultaneously the no-loss and no-duplication check.
        prop_assert_eq!(pushed, taken);
    }

    #[test]
    fn threaded_stealing_conserves_tasks(
        n_tasks in 1usize..400,
        thieves in 1usize..4,
    ) {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::{Arc, Mutex};

        let injector = Arc::new(Injector::new());
        let owner = Worker::new_lifo();
        let stealers: Vec<Stealer<u64>> =
            (0..thieves).map(|_| owner.stealer()).collect();
        let done = Arc::new(AtomicBool::new(false));
        let stolen = Arc::new(Mutex::new(Vec::new()));

        let handles: Vec<_> = stealers
            .into_iter()
            .map(|s| {
                let injector = Arc::clone(&injector);
                let done = Arc::clone(&done);
                let stolen = Arc::clone(&stolen);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match s.steal() {
                            Steal::Success(v) => got.push(v),
                            Steal::Empty | Steal::Retry => {}
                        }
                        match injector.steal() {
                            Steal::Success(v) => got.push(v),
                            Steal::Empty | Steal::Retry => {}
                        }
                        if done.load(Ordering::Acquire)
                            && s.is_empty()
                            && injector.is_empty()
                        {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                    stolen.lock().unwrap().extend(got);
                })
            })
            .collect();

        // The owner interleaves pushes to both queues with its own pops,
        // racing the thieves the whole way.
        let mut kept = Vec::new();
        for v in 0..n_tasks as u64 {
            if v % 3 == 0 {
                injector.push(v);
            } else {
                owner.push(v);
            }
            if v % 5 == 0 {
                if let Some(x) = owner.pop() {
                    kept.push(x);
                }
            }
        }
        while let Some(x) = owner.pop() {
            kept.push(x);
        }
        done.store(true, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }

        let mut all = kept;
        all.extend(stolen.lock().unwrap().iter().copied());
        all.sort_unstable();
        prop_assert_eq!(all, (0..n_tasks as u64).collect::<Vec<_>>());
    }
}
