//! Minimal, API-compatible stand-in for `crossbeam`'s MPMC channels and
//! work-stealing deques.
//!
//! The workspace builds offline, so the channel subset the runtime uses —
//! `unbounded`, `bounded`, cloneable `Sender`/`Receiver`, `try_send`,
//! `try_recv`, `recv`, `recv_timeout`, blocking `iter` — is implemented here
//! over a mutex-protected deque and a condvar. Disconnection semantics match
//! crossbeam: a channel is disconnected when all peers on the other side have
//! dropped. Bounded channels report [`channel::TrySendError::Full`] from
//! `try_send` when at capacity, which is what `ftbb-core`'s telemetry sink
//! relies on to shed load instead of blocking the event pump.
//!
//! The [`deque`] module mirrors `crossbeam-deque`'s `Worker`/`Stealer`/
//! `Injector` triple for the expansion worker pool: each worker owns a local
//! queue, siblings steal from the opposite end, and the pump feeds new codes
//! through the shared injector. Lock contention surfaces as
//! [`deque::Steal::Retry`], exactly as crossbeam's lock-free races do, so
//! pool code written against this shim ports to the real crate unchanged.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        /// Signalled on every pop so blocked bounded-channel senders can
        /// retry; unused by unbounded channels.
        space: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        /// `None` for unbounded channels; `Some(cap)` bounds the queue and
        /// makes `try_send` report `Full` at capacity.
        cap: Option<usize>,
    }

    fn new_chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            cap,
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; cloneable.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error from [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity (bounded channels only).
        Full(T),
        /// All receivers have dropped.
        Disconnected(T),
    }

    /// Error from [`Sender::send`].
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message waiting.
        Empty,
        /// All senders have dropped and the queue is drained.
        Disconnected,
    }

    /// Error from [`Receiver::recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error from [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived in time.
        Timeout,
        /// All senders have dropped and the queue is drained.
        Disconnected,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_chan(None)
    }

    /// Create a bounded MPMC channel holding at most `cap` messages;
    /// `try_send` reports [`TrySendError::Full`] once the queue is at
    /// capacity. A `cap` of zero is rounded up to one (this shim has no
    /// rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_chan(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        /// Enqueue without blocking. `Full` when a bounded channel is at
        /// capacity; `Disconnected` when every receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            let mut q = self.chan.queue.lock().unwrap();
            if let Some(cap) = self.chan.cap {
                if q.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            q.push_back(value);
            drop(q);
            self.chan.ready.notify_one();
            Ok(())
        }

        /// Enqueue, blocking while a bounded channel is at capacity; `Err`
        /// when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.chan.queue.lock().unwrap();
            if let Some(cap) = self.chan.cap {
                while q.len() >= cap {
                    if self.chan.receivers.load(Ordering::Acquire) == 0 {
                        return Err(SendError(value));
                    }
                    q = self.chan.space.wait(q).unwrap();
                }
            }
            q.push_back(value);
            drop(q);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe
                // disconnection.
                let _guard = self.chan.queue.lock().unwrap();
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.chan.queue.lock().unwrap();
            match q.pop_front() {
                Some(v) => {
                    if self.chan.cap.is_some() {
                        self.chan.space.notify_one();
                    }
                    Ok(v)
                }
                None if self.chan.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Iterate over the messages available right now, without
        /// blocking: ends at the first `try_recv` miss (empty *or*
        /// disconnected).
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }

        /// Block until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.chan.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    if self.chan.cap.is_some() {
                        self.chan.space.notify_one();
                    }
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.chan.ready.wait(q).unwrap();
            }
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.chan.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    if self.chan.cap.is_some() {
                        self.chan.space.notify_one();
                    }
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self.chan.ready.wait_timeout(q, deadline - now).unwrap();
                q = guard;
                if res.timed_out() && q.is_empty() {
                    if self.chan.senders.load(Ordering::Acquire) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// A blocking iterator over received messages; ends when every
        /// sender has dropped and the queue is drained.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.chan.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last receiver: wake senders blocked on a full bounded
                // channel so they observe disconnection.
                let _guard = self.chan.queue.lock().unwrap();
                self.chan.space.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.try_send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.try_recv(), Ok(i));
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_on_receiver_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(matches!(tx.try_send(1), Err(TrySendError::Disconnected(1))));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.try_send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn iter_drains_then_ends() {
            let (tx, rx) = unbounded();
            for i in 0..3 {
                tx.try_send(i).unwrap();
            }
            drop(tx);
            assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        }

        #[test]
        fn timeout_elapses() {
            let (_tx, rx) = unbounded::<u32>();
            let start = std::time::Instant::now();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            assert!(start.elapsed() >= Duration::from_millis(9));
        }

        #[test]
        fn bounded_try_send_reports_full() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(rx.try_recv(), Ok(1));
            // Popping frees a slot.
            tx.try_send(3).unwrap();
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Ok(3));
        }

        #[test]
        fn bounded_send_blocks_until_space() {
            let (tx, rx) = bounded(1);
            tx.try_send(0u32).unwrap();
            let h = std::thread::spawn(move || tx.send(1).is_ok());
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv(), Ok(0));
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(1));
            assert!(h.join().unwrap());
        }

        #[test]
        fn bounded_send_errors_when_receiver_drops() {
            let (tx, rx) = bounded(1);
            tx.try_send(0u32).unwrap();
            let h = std::thread::spawn(move || tx.send(1));
            std::thread::sleep(Duration::from_millis(10));
            drop(rx);
            assert_eq!(h.join().unwrap(), Err(SendError(1)));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                tx.send(42u32).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
            h.join().unwrap();
        }
    }
}

pub mod deque {
    //! Work-stealing deques in the shape of `crossbeam-deque`.
    //!
    //! A [`Worker`] owns a local queue it alone pushes to and pops from; its
    //! [`Stealer`] handles let other threads take work from the opposite end.
    //! An [`Injector`] is the shared FIFO through which new tasks enter the
    //! pool. Backing storage is a mutex-protected `VecDeque`; where the real
    //! crate's lock-free CAS loops lose a race and report `Steal::Retry`,
    //! this shim reports [`Steal::Retry`] on `try_lock` contention — callers
    //! must treat `Retry` as "look again", never as "empty".

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt, matching `crossbeam_deque::Steal`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was observed empty.
        Empty,
        /// A task was taken.
        Success(T),
        /// The attempt lost a race (here: lock contention); retry.
        Retry,
    }

    impl<T> Steal<T> {
        /// True when the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        /// True when a task was taken.
        pub fn is_success(&self) -> bool {
            matches!(self, Steal::Success(_))
        }

        /// True when the attempt should be repeated.
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }

        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }
    }

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    enum Flavor {
        Fifo,
        Lifo,
    }

    /// The owner's handle on a local work queue. Not `Sync`: only the owning
    /// thread pushes and pops; everyone else goes through a [`Stealer`].
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
        flavor: Flavor,
        /// !Send + !Sync marker-free shims stay Send for pool setup; the
        /// owner discipline is by convention, as in real crossbeam it is by
        /// type. (Worker is Send there too; only Sync is denied.)
        _not_sync: std::marker::PhantomData<std::cell::Cell<()>>,
    }

    /// A handle for taking work from another thread's [`Worker`]; cloneable.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// A FIFO worker: `pop` takes the oldest local task.
        pub fn new_fifo() -> Worker<T> {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Fifo,
                _not_sync: std::marker::PhantomData,
            }
        }

        /// A LIFO worker: `pop` takes the most recently pushed task
        /// (depth-first locality, the usual choice for tree expansion).
        pub fn new_lifo() -> Worker<T> {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Lifo,
                _not_sync: std::marker::PhantomData,
            }
        }

        /// A stealer handle on this worker's queue.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }

        /// Push a task onto the local queue.
        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        /// Pop from the local queue (front for FIFO, back for LIFO).
        pub fn pop(&self) -> Option<T> {
            let mut q = self.queue.lock().unwrap();
            match self.flavor {
                Flavor::Fifo => q.pop_front(),
                Flavor::Lifo => q.pop_back(),
            }
        }

        /// True when the local queue holds nothing right now.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }

        /// Number of tasks in the local queue right now.
        pub fn len(&self) -> usize {
            self.queue.lock().unwrap().len()
        }
    }

    impl<T> Stealer<T> {
        /// Steal one task from the front of the victim's queue. `Retry`
        /// means the lock was contended — look again, the queue may hold
        /// work.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.try_lock() {
                Ok(mut q) => match q.pop_front() {
                    Some(v) => Steal::Success(v),
                    None => Steal::Empty,
                },
                Err(std::sync::TryLockError::WouldBlock) => Steal::Retry,
                Err(std::sync::TryLockError::Poisoned(e)) => {
                    panic!("stealer found poisoned queue: {e}")
                }
            }
        }

        /// True when the victim's queue is observed empty (best effort:
        /// contention reads as non-empty so callers keep polling).
        pub fn is_empty(&self) -> bool {
            match self.queue.try_lock() {
                Ok(q) => q.is_empty(),
                Err(_) => false,
            }
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// The shared entry queue for a pool: any thread pushes, any worker
    /// steals. FIFO, so injected tasks run roughly in submission order.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    impl<T> Injector<T> {
        /// An empty injector.
        pub fn new() -> Injector<T> {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueue a task.
        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        /// Steal one task. `Retry` on lock contention.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.try_lock() {
                Ok(mut q) => match q.pop_front() {
                    Some(v) => Steal::Success(v),
                    None => Steal::Empty,
                },
                Err(std::sync::TryLockError::WouldBlock) => Steal::Retry,
                Err(std::sync::TryLockError::Poisoned(e)) => {
                    panic!("injector queue poisoned: {e}")
                }
            }
        }

        /// Move up to half the injector's backlog into `dest`'s local queue
        /// and pop one task for immediate use — crossbeam's amortized entry
        /// path for busy pools.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = match self.queue.try_lock() {
                Ok(q) => q,
                Err(std::sync::TryLockError::WouldBlock) => return Steal::Retry,
                Err(std::sync::TryLockError::Poisoned(e)) => {
                    panic!("injector queue poisoned: {e}")
                }
            };
            let first = match q.pop_front() {
                Some(v) => v,
                None => return Steal::Empty,
            };
            let extra = q.len().div_ceil(2);
            let mut moved = q.drain(..extra).collect::<Vec<_>>();
            drop(q);
            for task in moved.drain(..) {
                dest.push(task);
            }
            Steal::Success(first)
        }

        /// True when the injector holds nothing right now (best effort
        /// under contention, as for [`Stealer::is_empty`]).
        pub fn is_empty(&self) -> bool {
            match self.queue.try_lock() {
                Ok(q) => q.is_empty(),
                Err(_) => false,
            }
        }

        /// Number of queued tasks right now.
        pub fn len(&self) -> usize {
            self.queue.lock().unwrap().len()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn lifo_pops_newest_fifo_pops_oldest() {
            let lifo = Worker::new_lifo();
            lifo.push(1);
            lifo.push(2);
            assert_eq!(lifo.pop(), Some(2));
            assert_eq!(lifo.pop(), Some(1));
            assert_eq!(lifo.pop(), None);

            let fifo = Worker::new_fifo();
            fifo.push(1);
            fifo.push(2);
            assert_eq!(fifo.pop(), Some(1));
            assert_eq!(fifo.pop(), Some(2));
        }

        #[test]
        fn stealer_takes_from_the_front() {
            let w = Worker::new_lifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            // Owner pops newest, stealer takes oldest: opposite ends.
            assert_eq!(s.steal(), Steal::Success(1));
            assert_eq!(w.pop(), Some(3));
            assert_eq!(s.steal(), Steal::Success(2));
            assert_eq!(s.steal(), Steal::Empty);
        }

        #[test]
        fn injector_is_fifo_and_batch_pop_preserves_tasks() {
            let inj = Injector::new();
            for i in 0..10 {
                inj.push(i);
            }
            let w = Worker::new_fifo();
            let first = inj.steal_batch_and_pop(&w);
            assert_eq!(first, Steal::Success(0));
            // Everything still exists exactly once across the two queues.
            let mut seen = vec![0];
            while let Some(v) = w.pop() {
                seen.push(v);
            }
            while let Steal::Success(v) = inj.steal() {
                seen.push(v);
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn concurrent_steals_lose_nothing() {
            use std::sync::atomic::{AtomicU64, Ordering};
            use std::sync::Arc;

            const N: u64 = 10_000;
            let inj = Arc::new(Injector::new());
            let sum = Arc::new(AtomicU64::new(0));
            let count = Arc::new(AtomicU64::new(0));

            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let inj = Arc::clone(&inj);
                    let sum = Arc::clone(&sum);
                    let count = Arc::clone(&count);
                    std::thread::spawn(move || {
                        let local = Worker::new_lifo();
                        loop {
                            let task = local.pop().or_else(|| loop {
                                match inj.steal_batch_and_pop(&local) {
                                    Steal::Success(v) => break Some(v),
                                    Steal::Empty => break None,
                                    Steal::Retry => std::hint::spin_loop(),
                                }
                            });
                            match task {
                                Some(v) => {
                                    sum.fetch_add(v, Ordering::Relaxed);
                                    count.fetch_add(1, Ordering::Relaxed);
                                }
                                None if count.load(Ordering::Relaxed) == N => break,
                                // Producer may still be pushing; idle-spin.
                                None => std::thread::yield_now(),
                            }
                        }
                    })
                })
                .collect();

            for v in 1..=N {
                inj.push(v);
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(count.load(Ordering::Relaxed), N);
            assert_eq!(sum.load(Ordering::Relaxed), N * (N + 1) / 2);
        }
    }
}
