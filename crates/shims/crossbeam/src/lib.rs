//! Minimal, API-compatible stand-in for `crossbeam`'s MPMC channels.
//!
//! The workspace builds offline, so the channel subset the runtime uses —
//! `unbounded`, `bounded`, cloneable `Sender`/`Receiver`, `try_send`,
//! `try_recv`, `recv`, `recv_timeout`, blocking `iter` — is implemented here
//! over a mutex-protected deque and a condvar. Disconnection semantics match
//! crossbeam: a channel is disconnected when all peers on the other side have
//! dropped. Bounded channels report [`channel::TrySendError::Full`] from
//! `try_send` when at capacity, which is what `ftbb-core`'s telemetry sink
//! relies on to shed load instead of blocking the event pump.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        /// Signalled on every pop so blocked bounded-channel senders can
        /// retry; unused by unbounded channels.
        space: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        /// `None` for unbounded channels; `Some(cap)` bounds the queue and
        /// makes `try_send` report `Full` at capacity.
        cap: Option<usize>,
    }

    fn new_chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            cap,
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; cloneable.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error from [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity (bounded channels only).
        Full(T),
        /// All receivers have dropped.
        Disconnected(T),
    }

    /// Error from [`Sender::send`].
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message waiting.
        Empty,
        /// All senders have dropped and the queue is drained.
        Disconnected,
    }

    /// Error from [`Receiver::recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error from [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived in time.
        Timeout,
        /// All senders have dropped and the queue is drained.
        Disconnected,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_chan(None)
    }

    /// Create a bounded MPMC channel holding at most `cap` messages;
    /// `try_send` reports [`TrySendError::Full`] once the queue is at
    /// capacity. A `cap` of zero is rounded up to one (this shim has no
    /// rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_chan(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        /// Enqueue without blocking. `Full` when a bounded channel is at
        /// capacity; `Disconnected` when every receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            let mut q = self.chan.queue.lock().unwrap();
            if let Some(cap) = self.chan.cap {
                if q.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            q.push_back(value);
            drop(q);
            self.chan.ready.notify_one();
            Ok(())
        }

        /// Enqueue, blocking while a bounded channel is at capacity; `Err`
        /// when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.chan.queue.lock().unwrap();
            if let Some(cap) = self.chan.cap {
                while q.len() >= cap {
                    if self.chan.receivers.load(Ordering::Acquire) == 0 {
                        return Err(SendError(value));
                    }
                    q = self.chan.space.wait(q).unwrap();
                }
            }
            q.push_back(value);
            drop(q);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe
                // disconnection.
                let _guard = self.chan.queue.lock().unwrap();
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.chan.queue.lock().unwrap();
            match q.pop_front() {
                Some(v) => {
                    if self.chan.cap.is_some() {
                        self.chan.space.notify_one();
                    }
                    Ok(v)
                }
                None if self.chan.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Iterate over the messages available right now, without
        /// blocking: ends at the first `try_recv` miss (empty *or*
        /// disconnected).
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }

        /// Block until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.chan.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    if self.chan.cap.is_some() {
                        self.chan.space.notify_one();
                    }
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.chan.ready.wait(q).unwrap();
            }
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.chan.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    if self.chan.cap.is_some() {
                        self.chan.space.notify_one();
                    }
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self.chan.ready.wait_timeout(q, deadline - now).unwrap();
                q = guard;
                if res.timed_out() && q.is_empty() {
                    if self.chan.senders.load(Ordering::Acquire) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// A blocking iterator over received messages; ends when every
        /// sender has dropped and the queue is drained.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.chan.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last receiver: wake senders blocked on a full bounded
                // channel so they observe disconnection.
                let _guard = self.chan.queue.lock().unwrap();
                self.chan.space.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.try_send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.try_recv(), Ok(i));
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_on_receiver_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(matches!(tx.try_send(1), Err(TrySendError::Disconnected(1))));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.try_send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn iter_drains_then_ends() {
            let (tx, rx) = unbounded();
            for i in 0..3 {
                tx.try_send(i).unwrap();
            }
            drop(tx);
            assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        }

        #[test]
        fn timeout_elapses() {
            let (_tx, rx) = unbounded::<u32>();
            let start = std::time::Instant::now();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            assert!(start.elapsed() >= Duration::from_millis(9));
        }

        #[test]
        fn bounded_try_send_reports_full() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(rx.try_recv(), Ok(1));
            // Popping frees a slot.
            tx.try_send(3).unwrap();
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Ok(3));
        }

        #[test]
        fn bounded_send_blocks_until_space() {
            let (tx, rx) = bounded(1);
            tx.try_send(0u32).unwrap();
            let h = std::thread::spawn(move || tx.send(1).is_ok());
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv(), Ok(0));
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(1));
            assert!(h.join().unwrap());
        }

        #[test]
        fn bounded_send_errors_when_receiver_drops() {
            let (tx, rx) = bounded(1);
            tx.try_send(0u32).unwrap();
            let h = std::thread::spawn(move || tx.send(1));
            std::thread::sleep(Duration::from_millis(10));
            drop(rx);
            assert_eq!(h.join().unwrap(), Err(SendError(1)));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                tx.send(42u32).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
            h.join().unwrap();
        }
    }
}
