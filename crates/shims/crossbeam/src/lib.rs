//! Minimal, API-compatible stand-in for `crossbeam`'s MPMC channels.
//!
//! The workspace builds offline, so the channel subset the runtime uses —
//! `unbounded`, cloneable `Sender`/`Receiver`, `try_send`, `try_recv`,
//! `recv`, `recv_timeout`, blocking `iter` — is implemented here over a
//! mutex-protected deque and a condvar. Disconnection semantics match crossbeam: a channel
//! is disconnected when all peers on the other side have dropped.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; cloneable.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error from [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is full (never returned by unbounded channels; kept
        /// for API compatibility).
        Full(T),
        /// All receivers have dropped.
        Disconnected(T),
    }

    /// Error from [`Sender::send`].
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message waiting.
        Empty,
        /// All senders have dropped and the queue is drained.
        Disconnected,
    }

    /// Error from [`Receiver::recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error from [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived in time.
        Timeout,
        /// All senders have dropped and the queue is drained.
        Disconnected,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue without blocking. Unbounded channels never report
        /// `Full`; `Disconnected` when every receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            self.chan.queue.lock().unwrap().push_back(value);
            self.chan.ready.notify_one();
            Ok(())
        }

        /// Enqueue; `Err` when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.try_send(value).map_err(|e| match e {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => SendError(v),
            })
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe
                // disconnection.
                let _guard = self.chan.queue.lock().unwrap();
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.chan.queue.lock().unwrap();
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.chan.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Block until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.chan.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.chan.ready.wait(q).unwrap();
            }
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.chan.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self.chan.ready.wait_timeout(q, deadline - now).unwrap();
                q = guard;
                if res.timed_out() && q.is_empty() {
                    if self.chan.senders.load(Ordering::Acquire) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// A blocking iterator over received messages; ends when every
        /// sender has dropped and the queue is drained.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.try_send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.try_recv(), Ok(i));
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_on_receiver_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(matches!(tx.try_send(1), Err(TrySendError::Disconnected(1))));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.try_send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn iter_drains_then_ends() {
            let (tx, rx) = unbounded();
            for i in 0..3 {
                tx.try_send(i).unwrap();
            }
            drop(tx);
            assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        }

        #[test]
        fn timeout_elapses() {
            let (_tx, rx) = unbounded::<u32>();
            let start = std::time::Instant::now();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            assert!(start.elapsed() >= Duration::from_millis(9));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                tx.send(42u32).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
            h.join().unwrap();
        }
    }
}
