//! Derive macros for the workspace's offline `serde` stand-in.
//!
//! Generates implementations of the binary `serde::Serialize` /
//! `serde::Deserialize` traits for structs (named, tuple, unit) and enums
//! (unit, tuple, and struct variants), plus the `#[serde(into = "T",
//! from = "T")]` conversion attribute used by `CodeSet`.
//!
//! Implemented directly over `proc_macro::TokenTree` (no `syn`/`quote`
//! available offline). Generics are not supported — no serialized type in
//! this workspace is generic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
    /// `#[serde(into = "T", from = "T")]` conversion types, if present.
    into_ty: Option<String>,
    from_ty: Option<String>,
}

/// Derive the binary `Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match (&item.into_ty, &item.shape) {
        (Some(ty), _) => format!(
            "let __conv: {ty} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::ser(&__conv, out);"
        ),
        (None, Shape::Struct(fields)) => ser_fields_body(&item.name, fields),
        (None, Shape::Enum(variants)) => ser_enum_body(&item.name, variants),
    };
    let name = &item.name;
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn ser(&self, out: &mut ::std::vec::Vec<u8>) {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derive the binary `Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match (&item.from_ty, &item.shape) {
        (Some(ty), _) => format!(
            "let __conv: {ty} = ::serde::Deserialize::de(r)?;\n\
             ::std::result::Result::Ok(::std::convert::Into::into(__conv))"
        ),
        (None, Shape::Struct(fields)) => {
            format!(
                "::std::result::Result::Ok({})",
                de_constructor(&item.name, fields)
            )
        }
        (None, Shape::Enum(variants)) => de_enum_body(&item.name, variants),
    };
    let name = &item.name;
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn de(r: &mut &[u8]) -> ::std::result::Result<Self, ::serde::DecodeError> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn ser_fields_body(_name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => String::new(),
        Fields::Named(names) => names
            .iter()
            .map(|f| format!("::serde::Serialize::ser(&self.{f}, out);"))
            .collect::<Vec<_>>()
            .join("\n"),
        Fields::Tuple(n) => (0..*n)
            .map(|i| format!("::serde::Serialize::ser(&self.{i}, out);"))
            .collect::<Vec<_>>()
            .join("\n"),
    }
}

fn ser_enum_body(name: &str, variants: &[Variant]) -> String {
    assert!(
        variants.len() <= 256,
        "enum {name} has too many variants for a u8 tag"
    );
    let mut arms = Vec::new();
    for (tag, v) in variants.iter().enumerate() {
        let vname = &v.name;
        let arm = match &v.fields {
            Fields::Unit => format!("{name}::{vname} => {{ out.push({tag}u8); }}"),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let sers: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::ser({b}, out);"))
                    .collect();
                format!(
                    "{name}::{vname}({}) => {{ out.push({tag}u8); {} }}",
                    binds.join(", "),
                    sers.join(" ")
                )
            }
            Fields::Named(fields) => {
                let sers: Vec<String> = fields
                    .iter()
                    .map(|f| format!("::serde::Serialize::ser({f}, out);"))
                    .collect();
                format!(
                    "{name}::{vname} {{ {} }} => {{ out.push({tag}u8); {} }}",
                    fields.join(", "),
                    sers.join(" ")
                )
            }
        };
        arms.push(arm);
    }
    format!("match self {{\n{}\n}}", arms.join("\n"))
}

fn de_constructor(path: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => path.to_string(),
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::de(r)?"))
                .collect();
            format!("{path} {{ {} }}", inits.join(", "))
        }
        Fields::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|_| "::serde::Deserialize::de(r)?".to_string())
                .collect();
            format!("{path}({})", inits.join(", "))
        }
    }
}

fn de_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = Vec::new();
    for (tag, v) in variants.iter().enumerate() {
        let ctor = de_constructor(&format!("{name}::{}", v.name), &v.fields);
        arms.push(format!("{tag}u8 => ::std::result::Result::Ok({ctor}),"));
    }
    format!(
        "let __tag = ::serde::read_u8(r)?;\n\
         match __tag {{\n{}\n\
           _ => ::std::result::Result::Err(::serde::DecodeError::msg(\
                format!(\"invalid tag {{__tag}} for enum {name}\"))),\n\
         }}",
        arms.join("\n")
    )
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut into_ty = None;
    let mut from_ty = None;

    // Leading attributes (doc comments, #[serde(...)], …).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    parse_serde_attr(g.stream(), &mut into_ty, &mut from_ty);
                    i += 2;
                } else {
                    panic!("malformed attribute");
                }
            }
            _ => break,
        }
    }

    // Visibility.
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
            i += 1;
        }
    }

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected struct/enum, found {t}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected type name, found {t}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive shim does not support generic type {name}");
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct(Fields::Unit),
            t => panic!("unexpected struct body: {t:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            t => panic!("unexpected enum body: {t:?}"),
        },
        k => panic!("cannot derive for item kind {k}"),
    };

    Item {
        name,
        shape,
        into_ty,
        from_ty,
    }
}

/// Extract `into`/`from` types from a `serde(...)` attribute body, if this
/// attribute is one.
fn parse_serde_attr(
    stream: TokenStream,
    into_ty: &mut Option<String>,
    from_ty: &mut Option<String>,
) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return;
    };
    let inner: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < inner.len() {
        if let TokenTree::Ident(key) = &inner[j] {
            let key = key.to_string();
            if matches!(&inner.get(j + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                if let Some(TokenTree::Literal(lit)) = inner.get(j + 2) {
                    let raw = lit.to_string();
                    let ty = raw.trim_matches('"').to_string();
                    match key.as_str() {
                        "into" => *into_ty = Some(ty),
                        "from" => *from_ty = Some(ty),
                        other => panic!("unsupported serde attribute `{other}`"),
                    }
                    j += 3;
                    if matches!(&inner.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                        j += 1;
                    }
                    continue;
                }
            }
            panic!("unsupported serde attribute form at `{key}`");
        }
        j += 1;
    }
}

/// Skip one attribute (`#[...]`) if present at `i`; returns the new index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        i += 2; // '#' + bracket group
    }
    i
}

fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(
            tokens.get(i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            i += 1;
        }
    }
    i
}

/// Advance past a type, stopping at a top-level comma (angle brackets are
/// tracked as depth because they are plain puncts in the token stream).
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0i32;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    i
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        i = skip_visibility(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("expected field name, found {t}"),
        };
        i += 1;
        assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "expected ':' after field {field}"
        );
        i += 1;
        i = skip_type(&tokens, i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(field);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        i = skip_visibility(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        i = skip_type(&tokens, i);
        count += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("expected variant name, found {t}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("explicit discriminants are not supported (variant {name})");
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}
