//! Minimal, offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), range and
//! `any::<T>()` strategies, tuples of strategies, [`Just`],
//! `collection::vec`, `prop_map`/`prop_flat_map`, and
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed (reproducible across runs), and failing inputs are
//! reported but **not shrunk** — the workspace's tests opt out of
//! shrinking anyway (`max_shrink_iters: 0`) because each case is a whole
//! cluster simulation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::Range;

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// Run-level configuration (the supported subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
    /// Ignored: this stand-in never shrinks.
    pub max_shrink_iters: u32,
    /// Ignored: this stand-in never forks.
    pub fork: bool,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
            fork: false,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy (for heterogeneous match arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy; see [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*}
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*}
}
arbitrary_via_gen!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

/// Strategy over the whole domain of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+}
}
tuple_strategy!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H),
);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A length specification: fixed or ranged.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of values from `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Re-export namespace matching `proptest::prop`.
pub mod prop {
    pub use crate::collection;
}

/// Deterministic per-test RNG.
pub fn rng_for(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5eed))
}

/// Assert inside a property (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) }
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) }
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) }
}

/// Define property tests. Each case draws fresh random inputs from the
/// argument strategies; failures report the case number (rerun is
/// deterministic).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __strategies = ($($strat,)+);
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::rng_for(stringify!($name), __case);
                    let ($($pat,)+) =
                        $crate::Strategy::generate(&__strategies, &mut __rng);
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// The imports property tests start with.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hold((a, b) in (0u32..10, 5u64..6), v in collection::vec(any::<bool>(), 3)) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            prop_assert_eq!(v.len(), 3);
        }

        #[test]
        fn flat_map_chains(len in 1usize..5) {
            let strat = Just(len).prop_flat_map(|n| collection::vec(0u8..9, n));
            let mut rng = crate::rng_for("inner", 0);
            let v = strat.generate(&mut rng);
            prop_assert_eq!(v.len(), len);
        }

        #[test]
        fn map_transforms(x in 1u32..100) {
            let strat = (1u32..2).prop_map(|v| v * 10);
            let mut rng = crate::rng_for("map", x);
            prop_assert_eq!(strat.generate(&mut rng), 10);
        }
    }

    #[test]
    fn deterministic_given_name_and_case() {
        let mut a = crate::rng_for("t", 3);
        let mut b = crate::rng_for("t", 3);
        let s = 0u64..1000;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
