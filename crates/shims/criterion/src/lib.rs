//! Minimal, offline stand-in for `criterion`.
//!
//! Provides the API surface this workspace's benches use — groups,
//! `bench_function`, `bench_with_input`, throughput annotation,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/
//! `criterion_main!` macros — with a simple wall-clock measurement loop:
//! warm up briefly, then run batches until ~`measure_ms` elapses, and
//! report the mean per-iteration time (and throughput when annotated) on
//! stdout. No statistics, plots, or baselines.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier (name, or name + parameter).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter (the group provides the function name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    measure: Duration,
    /// Mean per-iteration time of the last `iter` call.
    last_mean: Option<Duration>,
}

impl Bencher {
    /// Measure `f` repeatedly and record the mean iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up iteration.
        black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.measure {
                break;
            }
        }
        self.last_mean = Some(start.elapsed() / iters.max(1) as u32);
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn report(label: &str, mean: Option<Duration>, throughput: Option<Throughput>) {
    let Some(mean) = mean else {
        println!("bench {label}: no measurement");
        return;
    };
    let mut line = format!("bench {label}: {} /iter", fmt_duration(mean));
    if let Some(tp) = throughput {
        let per_sec = |n: u64| n as f64 / mean.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Bytes(n) => {
                line.push_str(&format!(" ({:.1} MiB/s)", per_sec(n) / (1024.0 * 1024.0)));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!(" ({:.0} elem/s)", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// The benchmark driver.
pub struct Criterion {
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs quick: enough to see relative costs, not to publish.
        let ms = std::env::var("FTBB_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(50);
        Criterion {
            measure: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            measure: self.measure,
            last_mean: None,
        };
        f(&mut b);
        report(name, b.last_mean, None);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes by time, not
    /// sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measure = d.min(Duration::from_millis(250));
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            measure: self.criterion.measure,
            last_mean: None,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.label),
            b.last_mean,
            self.throughput,
        );
        self
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            measure: self.criterion.measure,
            last_mean: None,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.label),
            b.last_mean,
            self.throughput,
        );
        self
    }

    /// Finish the group (no-op; for API compatibility).
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_runs() {
        let mut c = Criterion {
            measure: Duration::from_millis(1),
        };
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs >= 2, "warm-up + at least one measured iteration");
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion {
            measure: Duration::from_millis(1),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_function(BenchmarkId::from_parameter(32), |b| b.iter(|| black_box(1)));
        group.bench_with_input(BenchmarkId::new("x", 2), &2u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
