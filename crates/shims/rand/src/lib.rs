//! Minimal, API-compatible stand-in for `rand` 0.8.
//!
//! The workspace builds offline, so the subset of the `rand` API the seed
//! code uses — `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64`,
//! `rngs::SmallRng`, and `seq::SliceRandom::{choose, shuffle}` — is
//! implemented here over xoshiro256++ seeded via splitmix64. Determinism is
//! the property the tests rely on; statistical quality of xoshiro256++ is
//! more than adequate for workload generation.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Sample a value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types uniformly samplable from a range (`Rng::gen_range`).
pub trait SampleUniform: Sized + PartialOrd {
    /// Sample uniformly from `[lo, hi)` (`inclusive == false`) or
    /// `[lo, hi]` (`inclusive == true`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = if inclusive {
                    assert!(lo <= hi, "empty range in gen_range");
                    (hi as i128 - lo as i128) as u128 + 1
                } else {
                    assert!(lo < hi, "empty range in gen_range");
                    (hi as i128 - lo as i128) as u128
                };
                // Modulo bias is < 2^-64 for every span this workspace uses.
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*}
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*}
}
uniform_float!(f32, f64);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi, true)
    }
}

/// User-facing sampling methods, blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// Sample from the standard distribution (uniform over the type's
    /// values; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (expanded via splitmix64).
    fn seed_from_u64(seed: u64) -> Self;

    /// Build from OS "entropy" (offline stand-in: a fixed-seed mix of the
    /// current time — only determinism-insensitive callers may use this).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        Self::seed_from_u64(nanos)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = super::splitmix64(&mut sm);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [mut s0, mut s1, mut s2, mut s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// Common imports.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..64).any(|_| rng.gen_bool(0.0)));
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..32).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "32-element shuffle should move something");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }
}
