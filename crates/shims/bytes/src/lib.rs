//! Minimal, API-compatible stand-in for the `bytes` crate.
//!
//! The workspace builds offline, so the subset the codecs use is
//! implemented here. Semantics match `bytes` 1.x for the covered surface;
//! panics on underflow exactly like the real crate. Two deliberate
//! simplifications:
//!
//! * [`Bytes`] is a refcounted view (`Arc<Vec<u8>>` + range), so `clone`
//!   is O(1) — a frame encoded once and queued to many peers shares one
//!   heap buffer, as with the real crate.
//! * [`BytesMut`] is a `Vec<u8>` behind a consumed-prefix cursor:
//!   [`BytesMut::advance`] is O(1) amortized (compaction is deferred until
//!   the dead prefix outweighs the live bytes), [`BytesMut::split_to`]
//!   copies (O(n) where the real crate is O(1)), and
//!   [`BytesMut::as_vec_mut`] exposes the backing vector for serializers
//!   that target `Vec<u8>` — a shim extension the real crate does not
//!   need, because there `put_*` is the only write path.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer: a refcounted view into a
/// shared allocation.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copy out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

/// Views compare by content, not by which allocation backs them.
impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

/// A growable byte buffer with a consumed-prefix cursor: append at the
/// back, consume from the front.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Consumed prefix of `data`; the live bytes are `data[start..]`.
    start: usize,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            start: 0,
        }
    }

    /// Length in (live) bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writable capacity left before the next reallocation.
    pub fn capacity(&self) -> usize {
        self.data.capacity() - self.start
    }

    /// Ensure room for `additional` more bytes. Reclaims the consumed
    /// prefix first, so a drained buffer reuses its allocation instead of
    /// growing — the property scratch-buffer encoders rely on.
    pub fn reserve(&mut self, additional: usize) {
        if self.start > 0 {
            self.compact();
        }
        self.data.reserve(additional);
    }

    /// Drop all live bytes (the allocation is kept).
    pub fn clear(&mut self) {
        self.data.clear();
        self.start = 0;
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Consume `n` live bytes from the front. O(1) amortized: the dead
    /// prefix is only compacted once it outweighs the live remainder (or
    /// everything was consumed).
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        self.start += n;
        if self.start >= self.data.len() {
            self.data.clear();
            self.start = 0;
        } else if self.start > 64 * 1024 && self.start > self.len() {
            self.compact();
        }
    }

    /// Split off the first `n` live bytes into their own buffer,
    /// advancing past them. (O(n) copy in this shim; O(1) in real
    /// `bytes`.)
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to past end of buffer");
        let head = BytesMut {
            data: self[..n].to_vec(),
            start: 0,
        };
        self.advance(n);
        head
    }

    /// Take all live bytes, leaving `self` empty. The allocation moves
    /// with the returned buffer when nothing was consumed (the encoder
    /// hot path), so `split().freeze()` hands the filled buffer off
    /// without a copy.
    pub fn split(&mut self) -> BytesMut {
        if self.start == 0 {
            BytesMut {
                data: std::mem::take(&mut self.data),
                start: 0,
            }
        } else {
            let n = self.len();
            self.split_to(n)
        }
    }

    /// Freeze into an immutable, cheaply cloneable buffer.
    pub fn freeze(mut self) -> Bytes {
        if self.start > 0 {
            self.compact();
        }
        Bytes::from(self.data)
    }

    /// Copy out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }

    /// The backing vector, for serializers that write to `Vec<u8>` (this
    /// workspace's serde shim). Shim extension: only callable while
    /// nothing has been consumed, so appended bytes stay live.
    pub fn as_vec_mut(&mut self) -> &mut Vec<u8> {
        assert_eq!(
            self.start, 0,
            "as_vec_mut on a buffer with a consumed prefix"
        );
        &mut self.data
    }

    fn compact(&mut self) {
        self.data.drain(..self.start);
        self.start = 0;
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data[self.start..]
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { data: v, start: 0 }
    }
}

/// Read cursor over a byte source; reads advance the cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Read raw bytes into `dst`, advancing. Panics if underfull.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write sink for binary encoders.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xdead_beef);
        buf.put_f64_le(1.5);
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1u8];
        r.get_u32_le();
    }

    #[test]
    fn bytes_clone_shares_the_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_ref().as_ptr(), b.as_ref().as_ptr()));
    }

    #[test]
    fn bytes_equality_is_by_content() {
        assert_eq!(Bytes::from(vec![1u8, 2]), Bytes::from(vec![1u8, 2]));
        assert_ne!(Bytes::from(vec![1u8, 2]), Bytes::from(vec![1u8, 3]));
    }

    #[test]
    fn advance_consumes_from_the_front() {
        let mut buf = BytesMut::from(vec![1u8, 2, 3, 4, 5]);
        buf.advance(2);
        assert_eq!(&buf[..], &[3, 4, 5]);
        buf.extend_from_slice(&[6]);
        assert_eq!(&buf[..], &[3, 4, 5, 6]);
        buf.advance(4);
        assert!(buf.is_empty());
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut buf = BytesMut::from(vec![1u8]);
        buf.advance(2);
    }

    #[test]
    fn split_to_takes_the_head() {
        let mut buf = BytesMut::from(vec![1u8, 2, 3, 4]);
        let head = buf.split_to(3);
        assert_eq!(&head[..], &[1, 2, 3]);
        assert_eq!(&buf[..], &[4]);
    }

    #[test]
    fn split_then_freeze_moves_the_bytes_out() {
        let mut scratch = BytesMut::with_capacity(64);
        scratch.put_u32_le(0xfeed_f00d);
        let frame = scratch.split().freeze();
        assert_eq!(frame.len(), 4);
        assert!(scratch.is_empty());
        // The scratch is reusable for the next frame.
        scratch.reserve(16);
        scratch.put_u8(9);
        assert_eq!(&scratch[..], &[9]);
    }

    #[test]
    fn reserve_reclaims_the_consumed_prefix() {
        let mut buf = BytesMut::with_capacity(8);
        buf.extend_from_slice(&[1, 2, 3, 4, 5, 6]);
        buf.advance(4);
        let cap = buf.data.capacity();
        buf.reserve(4); // 2 live + 4 more fit in the original 8
        assert_eq!(buf.data.capacity(), cap, "no growth needed");
        assert_eq!(&buf[..], &[5, 6]);
    }

    #[test]
    fn as_vec_mut_appends_live_bytes() {
        let mut buf = BytesMut::new();
        buf.as_vec_mut().extend_from_slice(&[1, 2]);
        assert_eq!(&buf[..], &[1, 2]);
    }
}
