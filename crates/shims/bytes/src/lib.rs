//! Minimal, API-compatible stand-in for the `bytes` crate.
//!
//! The workspace builds offline, so the handful of `Buf`/`BufMut` methods
//! the codecs use are implemented here over plain `Vec<u8>`/`&[u8]`.
//! Semantics match `bytes` 1.x for the covered subset; panics on underflow
//! exactly like the real crate.

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer (here: an owned `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }

    /// Freeze into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Copy out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

/// Read cursor over a byte source; reads advance the cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Read raw bytes into `dst`, advancing. Panics if underfull.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write sink for binary encoders.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xdead_beef);
        buf.put_f64_le(1.5);
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1u8];
        r.get_u32_le();
    }
}
