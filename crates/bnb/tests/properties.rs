//! Property-based tests of the sequential B&B engine against exhaustive
//! oracles — the engine is the workspace-wide correctness reference, so it
//! gets the strongest scrutiny.

use ftbb_bnb::{
    record_basic_tree, solve, BasicTreeProblem, Correlation, KnapsackInstance, MaxSatInstance,
    RecordLimits, SelectRule, SolveConfig,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Knapsack: B&B equals brute force for every correlation structure.
    #[test]
    fn knapsack_matches_brute_force(
        n in 4usize..13,
        range in 5u64..60,
        corr in 0u8..4,
        frac in 0.2f64..0.8,
        seed in any::<u64>(),
    ) {
        let correlation = match corr {
            0 => Correlation::Uncorrelated,
            1 => Correlation::Weak,
            2 => Correlation::Strong,
            _ => Correlation::SubsetSum,
        };
        let k = KnapsackInstance::generate(n, range, correlation, frac, seed);
        let expect = k.brute_force() as f64;
        let r = solve(&k, &SolveConfig::default());
        prop_assert_eq!(r.best.map(|v| -v), Some(expect));
    }

    /// MAX-SAT: B&B equals brute force.
    #[test]
    fn maxsat_matches_brute_force(
        vars in 3u16..10,
        clauses in 4usize..24,
        seed in any::<u64>(),
    ) {
        let inst = MaxSatInstance::generate(vars, clauses, seed);
        let expect = inst.brute_force();
        let r = solve(&inst, &SolveConfig::default());
        let got = r.best.expect("some assignment always exists");
        prop_assert!((got - expect).abs() < 1e-9, "got {got}, expected {expect}");
    }

    /// All three selection rules agree, on live problems and on their
    /// recorded basic trees.
    #[test]
    fn selection_rules_agree(n in 4usize..11, seed in any::<u64>()) {
        let k = KnapsackInstance::generate(n, 40, Correlation::Uncorrelated, 0.5, seed);
        let tree = record_basic_tree(&k, RecordLimits::default()).unwrap();
        let replay = BasicTreeProblem::new(tree);
        let mut answers = Vec::new();
        for rule in [SelectRule::BestFirst, SelectRule::DepthFirst, SelectRule::BreadthFirst] {
            let cfg = SolveConfig { rule, ..Default::default() };
            answers.push(solve(&k, &cfg).best);
            answers.push(solve(&replay, &cfg).best);
        }
        for w in answers.windows(2) {
            prop_assert_eq!(w[0], w[1]);
        }
    }

    /// A recorded basic tree's optimum equals the live problem's optimum,
    /// and replaying it expands no more nodes than the recording holds.
    #[test]
    fn recording_preserves_optimum(n in 4usize..11, seed in any::<u64>()) {
        let k = KnapsackInstance::generate(n, 30, Correlation::Weak, 0.5, seed);
        let tree = record_basic_tree(&k, RecordLimits::default()).unwrap();
        let direct = solve(&k, &SolveConfig::default());
        prop_assert_eq!(tree.optimal(), direct.best);
        let replay = solve(&BasicTreeProblem::new(tree.clone()), &SolveConfig::default());
        prop_assert_eq!(replay.best, direct.best);
        prop_assert!(replay.stats.expanded as usize <= tree.len());
    }

    /// Warm starts never change the optimum when the initial incumbent is
    /// above it, and never report a solution when it is below it.
    #[test]
    fn warm_start_is_safe(n in 4usize..11, seed in any::<u64>(), offset in -0.4f64..0.4) {
        let k = KnapsackInstance::generate(n, 30, Correlation::Uncorrelated, 0.5, seed);
        let cold = solve(&k, &SolveConfig::default());
        let optimum = cold.best.expect("knapsack always has the empty solution");
        let warm_value = optimum + offset.abs() + 0.5; // strictly above optimum
        let warm = solve(&k, &SolveConfig {
            initial_incumbent: Some(warm_value),
            ..Default::default()
        });
        prop_assert_eq!(warm.best, Some(optimum));
        let blocked = solve(&k, &SolveConfig {
            initial_incumbent: Some(optimum - 0.5),
            ..Default::default()
        });
        prop_assert_eq!(blocked.best, None);
    }
}
