//! Replaying recorded basic trees through the [`BranchBound`] interface.
//!
//! This adapter is how the paper's simulation methodology works (§6.2): "the
//! simulation was configured so that it could be driven either by real
//! (precomputed) B&B trees or by random trees … The bound values are used
//! for pruning the test tree and obtaining the B&B tree, and for computing
//! the optimal solution."

use crate::problem::BranchBound;
use ftbb_tree::{BasicTree, NodeId, Var};
use serde::{Deserialize, Serialize};

/// A [`BranchBound`] problem backed by a recorded [`BasicTree`].
///
/// Serializable so it can ride [`crate::AnyInstance`] over the wire; a
/// decoded value must be re-checked with [`BasicTree::validate`] (the
/// derive decodes structure, not invariants — `AnyInstance::validate`
/// does this for announce frames).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasicTreeProblem {
    tree: BasicTree,
}

impl BasicTreeProblem {
    /// Wrap a recorded tree.
    pub fn new(tree: BasicTree) -> Self {
        BasicTreeProblem { tree }
    }

    /// The underlying tree.
    pub fn tree(&self) -> &BasicTree {
        &self.tree
    }
}

impl BranchBound for BasicTreeProblem {
    type Node = NodeId;

    fn root(&self) -> NodeId {
        self.tree.root()
    }

    fn bound(&self, node: &NodeId) -> f64 {
        self.tree.node(*node).bound
    }

    fn solution(&self, node: &NodeId) -> Option<f64> {
        self.tree.node(*node).solution
    }

    fn branching_var(&self, node: &NodeId) -> Option<Var> {
        self.tree
            .node(*node)
            .children
            .map(|_| self.tree.node(*node).var)
    }

    fn decompose(&self, node: &NodeId) -> Option<(NodeId, NodeId)> {
        self.tree.node(*node).children
    }

    fn cost(&self, node: &NodeId) -> f64 {
        self.tree.node(*node).cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbb_tree::basic_tree::fig1_example;
    use ftbb_tree::Code;

    #[test]
    fn adapter_exposes_tree_data() {
        let p = BasicTreeProblem::new(fig1_example());
        let root = p.root();
        assert_eq!(p.bound(&root), 0.0);
        assert_eq!(p.branching_var(&root), Some(1));
        let (l, r) = p.decompose(&root).unwrap();
        assert_eq!(p.bound(&l), 1.0);
        assert_eq!(p.bound(&r), 2.0);
        assert_eq!(p.solution(&l), None);
        assert_eq!(p.cost(&root), 1.0);
    }

    #[test]
    fn rebuild_from_code_is_self_contained() {
        let p = BasicTreeProblem::new(fig1_example());
        // Code (x1,0)(x2,1) identifies node 4 (the optimum).
        let code = Code::from_decisions(&[(1, false), (2, true)]);
        let node = p.rebuild(&code).unwrap();
        assert_eq!(p.solution(&node), Some(7.0));
        // Wrong variable: rejected.
        let bad = Code::from_decisions(&[(9, false)]);
        assert!(p.rebuild(&bad).is_none());
        // Descends past a leaf: rejected.
        let deep = Code::from_decisions(&[(1, false), (2, true), (4, false)]);
        assert!(p.rebuild(&deep).is_none());
    }
}
