//! 0/1 knapsack as a [`BranchBound`] problem.
//!
//! The classic binary-decision B&B: items sorted by profit density, each
//! tree level decides take/skip for one item, bounds come from Dantzig's
//! fractional relaxation. Knapsack maximizes profit; the trait minimizes, so
//! the objective is negated profit.
//!
//! This is one of the "real problems" whose instrumented runs produce basic
//! trees (§6.2) — see [`crate::recorder`].

use crate::problem::BranchBound;
use ftbb_tree::Var;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Item {
    /// Item weight.
    pub weight: u64,
    /// Item profit.
    pub profit: u64,
}

/// A 0/1 knapsack instance. Items are stored in profit-density order
/// (highest `profit/weight` first), which is also the branching order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnapsackInstance {
    /// Knapsack capacity.
    pub capacity: u64,
    /// Items, sorted by decreasing profit density.
    pub items: Vec<Item>,
    /// Cost-model scale: seconds of simulated bounding work per remaining
    /// item. Affects only the recorded per-node costs, not correctness.
    pub cost_per_item: f64,
}

/// Correlation structure of generated instances (standard taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Correlation {
    /// Weights and profits independent uniform.
    Uncorrelated,
    /// Profit = weight ± small noise.
    Weak,
    /// Profit = weight + constant.
    Strong,
    /// Profit = weight (subset-sum).
    SubsetSum,
}

impl KnapsackInstance {
    /// Build from raw items (any order); sorts by density.
    pub fn new(capacity: u64, mut items: Vec<Item>) -> Self {
        items.sort_by(|a, b| {
            let da = a.profit as f64 / a.weight.max(1) as f64;
            let db = b.profit as f64 / b.weight.max(1) as f64;
            db.partial_cmp(&da).expect("finite densities")
        });
        KnapsackInstance {
            capacity,
            items,
            cost_per_item: 1e-5,
        }
    }

    /// Random instance: `n` items, coefficients in `[1, range]`, capacity a
    /// fraction of the total weight. Deterministic per seed.
    pub fn generate(
        n: usize,
        range: u64,
        correlation: Correlation,
        capacity_fraction: f64,
        seed: u64,
    ) -> Self {
        assert!(range >= 2 && n >= 1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            let weight = rng.gen_range(1..=range);
            let profit = match correlation {
                Correlation::Uncorrelated => rng.gen_range(1..=range),
                Correlation::Weak => {
                    let noise = rng.gen_range(0..=range / 5);
                    (weight + noise).saturating_sub(range / 10).max(1)
                }
                Correlation::Strong => weight + range / 10,
                Correlation::SubsetSum => weight,
            };
            items.push(Item { weight, profit });
        }
        let total: u64 = items.iter().map(|i| i.weight).sum();
        let capacity = ((total as f64) * capacity_fraction).round() as u64;
        KnapsackInstance::new(capacity.max(1), items)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True for the degenerate zero-item instance.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Exhaustive optimum (profit), for cross-checking small instances.
    pub fn brute_force(&self) -> u64 {
        assert!(self.items.len() <= 24, "brute force only for small n");
        let n = self.items.len();
        let mut best = 0u64;
        for mask in 0u32..(1u32 << n) {
            let (mut w, mut p) = (0u64, 0u64);
            for (i, item) in self.items.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    w += item.weight;
                    p += item.profit;
                }
            }
            if w <= self.capacity {
                best = best.max(p);
            }
        }
        best
    }
}

/// A knapsack subproblem: decisions fixed for items `0..level`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnapNode {
    /// Next item to decide (density order).
    pub level: u16,
    /// Weight already committed.
    pub weight: u64,
    /// Profit already collected.
    pub profit: u64,
    /// True if a take-decision overflowed the capacity.
    pub infeasible: bool,
}

impl KnapsackInstance {
    /// Dantzig fractional upper bound on additional profit from `level` on,
    /// given `slack` remaining capacity. Also reports whether the greedy
    /// fill packed every remaining item (in which case the bound is exact
    /// and feasible).
    fn fractional_tail(&self, level: usize, slack: u64) -> (f64, bool) {
        let mut room = slack;
        let mut add = 0.0;
        for item in &self.items[level..] {
            if item.weight <= room {
                room -= item.weight;
                add += item.profit as f64;
            } else {
                add += item.profit as f64 * room as f64 / item.weight as f64;
                return (add, false);
            }
        }
        (add, true)
    }
}

impl BranchBound for KnapsackInstance {
    type Node = KnapNode;

    fn root(&self) -> KnapNode {
        KnapNode {
            level: 0,
            weight: 0,
            profit: 0,
            infeasible: false,
        }
    }

    fn bound(&self, node: &KnapNode) -> f64 {
        if node.infeasible {
            return f64::INFINITY;
        }
        let slack = self.capacity - node.weight;
        let (tail, _) = self.fractional_tail(node.level as usize, slack);
        -(node.profit as f64 + tail)
    }

    fn solution(&self, node: &KnapNode) -> Option<f64> {
        if node.infeasible {
            return None;
        }
        let slack = self.capacity - node.weight;
        let (tail, complete) = self.fractional_tail(node.level as usize, slack);
        if node.level as usize >= self.items.len() {
            Some(-(node.profit as f64))
        } else if complete {
            // Greedy packed every remaining item: bound is feasible.
            Some(-(node.profit as f64 + tail))
        } else {
            None
        }
    }

    fn branching_var(&self, node: &KnapNode) -> Option<Var> {
        if node.infeasible || node.level as usize >= self.items.len() {
            return None;
        }
        // Fathomed-by-completeness nodes are leaves too.
        let slack = self.capacity - node.weight;
        let (_, complete) = self.fractional_tail(node.level as usize, slack);
        if complete {
            None
        } else {
            Some(node.level as Var)
        }
    }

    fn decompose(&self, node: &KnapNode) -> Option<(KnapNode, KnapNode)> {
        self.branching_var(node)?;
        let item = self.items[node.level as usize];
        // Left (bit 0): skip the item.
        let skip = KnapNode {
            level: node.level + 1,
            ..*node
        };
        // Right (bit 1): take the item (infeasible if it overflows).
        let take = if node.weight + item.weight <= self.capacity {
            KnapNode {
                level: node.level + 1,
                weight: node.weight + item.weight,
                profit: node.profit + item.profit,
                infeasible: false,
            }
        } else {
            KnapNode {
                level: node.level + 1,
                infeasible: true,
                ..*node
            }
        };
        Some((skip, take))
    }

    fn cost(&self, node: &KnapNode) -> f64 {
        let remaining = self.items.len().saturating_sub(node.level as usize);
        self.cost_per_item * (1.0 + remaining as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{solve, SolveConfig};

    fn tiny() -> KnapsackInstance {
        KnapsackInstance::new(
            10,
            vec![
                Item {
                    weight: 5,
                    profit: 10,
                },
                Item {
                    weight: 4,
                    profit: 40,
                },
                Item {
                    weight: 6,
                    profit: 30,
                },
                Item {
                    weight: 3,
                    profit: 50,
                },
            ],
        )
    }

    #[test]
    fn sorted_by_density() {
        let k = tiny();
        let densities: Vec<f64> = k
            .items
            .iter()
            .map(|i| i.profit as f64 / i.weight as f64)
            .collect();
        assert!(densities.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn solves_tiny_instance() {
        let k = tiny();
        let r = solve(&k, &SolveConfig::default());
        // take items (3,50),(4,40): weight 7, profit 90 — beats (3,50)+(6,30).
        assert_eq!(r.best, Some(-90.0));
        assert_eq!(k.brute_force(), 90);
    }

    #[test]
    fn matches_brute_force_across_seeds() {
        for seed in 0..12 {
            for corr in [
                Correlation::Uncorrelated,
                Correlation::Weak,
                Correlation::Strong,
                Correlation::SubsetSum,
            ] {
                let k = KnapsackInstance::generate(14, 50, corr, 0.5, seed);
                let r = solve(&k, &SolveConfig::default());
                let expect = k.brute_force();
                assert_eq!(
                    r.best.map(|v| -v),
                    Some(expect as f64),
                    "seed {seed} corr {corr:?}"
                );
            }
        }
    }

    #[test]
    fn rebuild_replays_decisions() {
        let k = tiny();
        let r = solve(&k, &SolveConfig::default());
        let code = r.best_code.unwrap();
        let node = k.rebuild(&code).unwrap();
        assert_eq!(k.solution(&node), r.best);
    }

    #[test]
    fn bound_is_admissible() {
        // The root bound must not exceed (in minimization, must lower-bound)
        // the optimum.
        for seed in 0..8 {
            let k = KnapsackInstance::generate(12, 30, Correlation::Uncorrelated, 0.4, seed);
            let root = k.root();
            let opt = -(k.brute_force() as f64);
            assert!(
                k.bound(&root) <= opt + 1e-9,
                "bound {} vs optimum {opt}",
                k.bound(&root)
            );
        }
    }

    #[test]
    fn infeasible_take_is_leaf_with_inf_bound() {
        let k = KnapsackInstance::new(
            3,
            vec![
                Item {
                    weight: 5,
                    profit: 100,
                },
                Item {
                    weight: 2,
                    profit: 1,
                },
            ],
        );
        let root = k.root();
        let (_skip, take) = k.decompose(&root).unwrap();
        assert!(take.infeasible);
        assert_eq!(k.bound(&take), f64::INFINITY);
        assert_eq!(k.branching_var(&take), None);
        assert_eq!(k.solution(&take), None);
    }

    #[test]
    fn cost_decreases_with_depth() {
        let k = tiny();
        let root = k.root();
        let (skip, _) = k.decompose(&root).unwrap();
        assert!(k.cost(&skip) < k.cost(&root));
    }

    #[test]
    fn empty_capacity_instance() {
        let k = KnapsackInstance::new(
            1,
            vec![Item {
                weight: 10,
                profit: 10,
            }],
        );
        let r = solve(&k, &SolveConfig::default());
        assert_eq!(r.best, Some(0.0)); // take nothing
    }
}
