//! The branch-and-bound problem abstraction (§2 of the paper).
//!
//! A sequential B&B algorithm applies four operators over a pool of active
//! problems: **Decompose**, **Bound**, **Select**, **Eliminate**. This trait
//! supplies the problem-specific pieces (decompose, bound, feasibility); the
//! engine in [`crate::engine`] supplies select and eliminate.
//!
//! Everything minimizes. Maximization problems (like knapsack) negate their
//! objective.

use ftbb_tree::{Code, Var};

/// A problem solvable by branch and bound.
///
/// Subproblems (`Node`s) form a binary tree: [`decompose`](BranchBound::decompose)
/// splits a node into a left (branch bit 0) and right (branch bit 1) child by
/// deciding the node's [`branching_var`](BranchBound::branching_var). This
/// matches the paper's encoding assumption: "the branching factor for the
/// search tree is 2 and each branch is a decision on a condition variable."
pub trait BranchBound {
    /// A subproblem: the state accumulated along the path from the root.
    type Node: Clone;

    /// The root (original) problem.
    fn root(&self) -> Self::Node;

    /// Lower bound `l(v)` on the best objective in this subtree.
    fn bound(&self, node: &Self::Node) -> f64;

    /// If bounding this node produced a feasible solution, its value.
    fn solution(&self, node: &Self::Node) -> Option<f64>;

    /// The condition variable this node branches on, or `None` for a leaf.
    fn branching_var(&self, node: &Self::Node) -> Option<Var>;

    /// Split into (left = var:=0, right = var:=1), or `None` for a leaf.
    /// Must be `Some` exactly when `branching_var` is `Some`.
    fn decompose(&self, node: &Self::Node) -> Option<(Self::Node, Self::Node)>;

    /// Synthetic compute cost of bounding + decomposing this node, in
    /// seconds. Drives the recorded per-node times in basic trees (the
    /// paper's granularity). Defaults to a fixed 1 ms.
    fn cost(&self, _node: &Self::Node) -> f64 {
        0.001
    }

    /// Rebuild a node from its tree code by replaying the decisions from
    /// the root — this is what makes codes *self-contained* (§5.3.1): "the
    /// code (along with the initial data …) is enough to initiate a problem
    /// on any processor."
    ///
    /// Returns `None` if the code does not correspond to a path of this
    /// problem's tree (wrong variable or descent past a leaf).
    fn rebuild(&self, code: &Code) -> Option<Self::Node> {
        let mut node = self.root();
        for pair in code.pairs() {
            if self.branching_var(&node)? != pair.var {
                return None;
            }
            let (l, r) = self.decompose(&node)?;
            node = if pair.bit { r } else { l };
        }
        Some(node)
    }
}
