//! The pool of active problems and the Select operator (§2).
//!
//! "Selection may depend on bound values, such as in the best-first
//! selection rule, or not, as in the case of depth-first or breadth-first
//! rules."

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Which subproblem the Select operator picks next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SelectRule {
    /// Smallest bound first (ties: oldest first).
    #[default]
    BestFirst,
    /// Most recently inserted first (LIFO) — memory-frugal.
    DepthFirst,
    /// Oldest first (FIFO).
    BreadthFirst,
}

/// An entry in the pool.
#[derive(Debug, Clone)]
pub struct PoolEntry<N> {
    /// The subproblem's lower bound (Select priority for best-first).
    pub bound: f64,
    /// Depth in the search tree (informational).
    pub depth: u32,
    /// The subproblem itself.
    pub node: N,
}

struct HeapItem<N> {
    bound: f64,
    seq: u64,
    entry: PoolEntry<N>,
}

impl<N> PartialEq for HeapItem<N> {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.seq == other.seq
    }
}
impl<N> Eq for HeapItem<N> {}
impl<N> PartialOrd for HeapItem<N> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<N> Ord for HeapItem<N> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: invert for min-bound-first; ties pop oldest seq first.
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

enum Store<N> {
    Heap(BinaryHeap<HeapItem<N>>),
    Deque(VecDeque<PoolEntry<N>>),
}

/// The pool of active problems, with a pluggable Select rule.
pub struct Pool<N> {
    rule: SelectRule,
    store: Store<N>,
    next_seq: u64,
    peak_len: usize,
}

impl<N> Pool<N> {
    /// An empty pool with the given selection rule.
    pub fn new(rule: SelectRule) -> Self {
        let store = match rule {
            SelectRule::BestFirst => Store::Heap(BinaryHeap::new()),
            _ => Store::Deque(VecDeque::new()),
        };
        Pool {
            rule,
            store,
            next_seq: 0,
            peak_len: 0,
        }
    }

    /// The active selection rule.
    pub fn rule(&self) -> SelectRule {
        self.rule
    }

    /// Insert a subproblem.
    pub fn push(&mut self, entry: PoolEntry<N>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.store {
            Store::Heap(h) => h.push(HeapItem {
                bound: entry.bound,
                seq,
                entry,
            }),
            Store::Deque(d) => d.push_back(entry),
        }
        self.peak_len = self.peak_len.max(self.len());
    }

    /// Select and remove the next subproblem per the rule.
    pub fn pop(&mut self) -> Option<PoolEntry<N>> {
        match (&mut self.store, self.rule) {
            (Store::Heap(h), _) => h.pop().map(|i| i.entry),
            (Store::Deque(d), SelectRule::DepthFirst) => d.pop_back(),
            (Store::Deque(d), _) => d.pop_front(),
        }
    }

    /// Number of active subproblems.
    pub fn len(&self) -> usize {
        match &self.store {
            Store::Heap(h) => h.len(),
            Store::Deque(d) => d.len(),
        }
    }

    /// True when no subproblems are active.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Largest size the pool ever reached (storage metric).
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Iterate over the pool's entries (order unspecified).
    pub fn iter(&self) -> Box<dyn Iterator<Item = &PoolEntry<N>> + '_> {
        match &self.store {
            Store::Heap(h) => Box::new(h.iter().map(|i| &i.entry)),
            Store::Deque(d) => Box::new(d.iter()),
        }
    }

    /// Remove up to `k` entries for donation to another process (work
    /// sharing). Best-first pools donate their *worst*-bound entries (the
    /// donor keeps the most promising work); deque pools donate from the
    /// front (the oldest, typically shallowest/largest subtrees — the
    /// classic work-stealing choice).
    pub fn split_off(&mut self, k: usize) -> Vec<PoolEntry<N>> {
        let mut out = Vec::with_capacity(k.min(self.len()));
        match &mut self.store {
            Store::Heap(h) => {
                // Take the k worst bounds: drain fully, keep the best.
                let mut all: Vec<HeapItem<N>> = std::mem::take(h).into_vec();
                all.sort_by(|a, b| {
                    a.bound
                        .partial_cmp(&b.bound)
                        .unwrap_or(Ordering::Equal)
                        .then_with(|| a.seq.cmp(&b.seq))
                });
                let keep = all.len().saturating_sub(k);
                for item in all.drain(keep..) {
                    out.push(item.entry);
                }
                *h = all.into_iter().collect();
            }
            Store::Deque(d) => {
                for _ in 0..k.min(d.len()) {
                    if let Some(e) = d.pop_front() {
                        out.push(e);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(bound: f64, tag: u32) -> PoolEntry<u32> {
        PoolEntry {
            bound,
            depth: 0,
            node: tag,
        }
    }

    #[test]
    fn best_first_pops_min_bound() {
        let mut p = Pool::new(SelectRule::BestFirst);
        p.push(entry(3.0, 3));
        p.push(entry(1.0, 1));
        p.push(entry(2.0, 2));
        let order: Vec<u32> = std::iter::from_fn(|| p.pop().map(|e| e.node)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn best_first_ties_pop_oldest() {
        let mut p = Pool::new(SelectRule::BestFirst);
        for tag in 0..10 {
            p.push(entry(5.0, tag));
        }
        let order: Vec<u32> = std::iter::from_fn(|| p.pop().map(|e| e.node)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn depth_first_is_lifo() {
        let mut p = Pool::new(SelectRule::DepthFirst);
        p.push(entry(1.0, 1));
        p.push(entry(2.0, 2));
        p.push(entry(3.0, 3));
        let order: Vec<u32> = std::iter::from_fn(|| p.pop().map(|e| e.node)).collect();
        assert_eq!(order, vec![3, 2, 1]);
    }

    #[test]
    fn breadth_first_is_fifo() {
        let mut p = Pool::new(SelectRule::BreadthFirst);
        p.push(entry(1.0, 1));
        p.push(entry(2.0, 2));
        let order: Vec<u32> = std::iter::from_fn(|| p.pop().map(|e| e.node)).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn split_off_heap_donates_worst() {
        let mut p = Pool::new(SelectRule::BestFirst);
        for (b, t) in [(1.0, 1), (5.0, 5), (3.0, 3), (4.0, 4), (2.0, 2)] {
            p.push(entry(b, t));
        }
        let donated = p.split_off(2);
        let mut tags: Vec<u32> = donated.iter().map(|e| e.node).collect();
        tags.sort_unstable();
        assert_eq!(tags, vec![4, 5]);
        // Donor keeps the best and still pops in order.
        assert_eq!(p.pop().unwrap().node, 1);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn split_off_deque_donates_oldest() {
        let mut p = Pool::new(SelectRule::DepthFirst);
        p.push(entry(1.0, 1));
        p.push(entry(2.0, 2));
        p.push(entry(3.0, 3));
        let donated = p.split_off(2);
        let tags: Vec<u32> = donated.iter().map(|e| e.node).collect();
        assert_eq!(tags, vec![1, 2]);
        assert_eq!(p.pop().unwrap().node, 3);
    }

    #[test]
    fn split_off_more_than_len() {
        let mut p = Pool::new(SelectRule::BestFirst);
        p.push(entry(1.0, 1));
        let donated = p.split_off(10);
        assert_eq!(donated.len(), 1);
        assert!(p.is_empty());
    }

    #[test]
    fn peak_len_tracks_high_water() {
        let mut p = Pool::new(SelectRule::BreadthFirst);
        for i in 0..5 {
            p.push(entry(i as f64, i));
        }
        for _ in 0..3 {
            p.pop();
        }
        p.push(entry(9.0, 9));
        assert_eq!(p.peak_len(), 5);
    }
}
