//! The pool of active problems and the Select operator (§2).
//!
//! "Selection may depend on bound values, such as in the best-first
//! selection rule, or not, as in the case of depth-first or breadth-first
//! rules."
//!
//! Best-first pools are backed by a min-max (interval) heap so that both
//! ends are cheap: `pop` takes the best bound in O(log n), and
//! [`Pool::split_off`] donates the *worst* k bounds in O(k log n) —
//! donation used to drain, sort, and rebuild the whole heap on every
//! work grant.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::VecDeque;

/// Which subproblem the Select operator picks next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SelectRule {
    /// Smallest bound first (ties: oldest first).
    #[default]
    BestFirst,
    /// Most recently inserted first (LIFO) — memory-frugal.
    DepthFirst,
    /// Oldest first (FIFO).
    BreadthFirst,
}

/// An entry in the pool.
#[derive(Debug, Clone)]
pub struct PoolEntry<N> {
    /// The subproblem's lower bound (Select priority for best-first).
    pub bound: f64,
    /// Depth in the search tree (informational).
    pub depth: u32,
    /// The subproblem itself.
    pub node: N,
}

struct HeapItem<N> {
    bound: f64,
    seq: u64,
    entry: PoolEntry<N>,
}

/// Total order on heap items: bound ascending, then insertion sequence
/// ascending (ties pop oldest first). `seq` is unique, so this is a
/// strict total order — pop sequences are representation-independent.
fn item_cmp<N>(a: &HeapItem<N>, b: &HeapItem<N>) -> Ordering {
    a.bound
        .partial_cmp(&b.bound)
        .unwrap_or(Ordering::Equal)
        .then_with(|| a.seq.cmp(&b.seq))
}

/// A min-max heap (Atkinson et al., 1986): min levels and max levels
/// alternate, the global minimum sits at the root and the global maximum
/// at one of its children. Both `pop_min` and `pop_max` are O(log n).
struct MinMaxHeap<N> {
    buf: Vec<HeapItem<N>>,
}

impl<N> MinMaxHeap<N> {
    fn new() -> Self {
        MinMaxHeap { buf: Vec::new() }
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    fn iter(&self) -> std::slice::Iter<'_, HeapItem<N>> {
        self.buf.iter()
    }

    /// Even tree levels (root = level 0) are min levels.
    #[inline]
    fn is_min_level(i: usize) -> bool {
        (i + 1).ilog2() & 1 == 0
    }

    #[inline]
    fn less(&self, a: usize, b: usize) -> bool {
        item_cmp(&self.buf[a], &self.buf[b]) == Ordering::Less
    }

    fn push(&mut self, item: HeapItem<N>) {
        self.buf.push(item);
        let i = self.buf.len() - 1;
        if i == 0 {
            return;
        }
        let p = (i - 1) / 2;
        if Self::is_min_level(i) {
            if self.less(p, i) {
                self.buf.swap(i, p);
                self.bubble_up_max(p);
            } else {
                self.bubble_up_min(i);
            }
        } else if self.less(i, p) {
            self.buf.swap(i, p);
            self.bubble_up_min(p);
        } else {
            self.bubble_up_max(i);
        }
    }

    fn bubble_up_min(&mut self, mut i: usize) {
        while i >= 3 {
            let g = ((i - 1) / 2 - 1) / 2;
            if self.less(i, g) {
                self.buf.swap(i, g);
                i = g;
            } else {
                break;
            }
        }
    }

    fn bubble_up_max(&mut self, mut i: usize) {
        while i >= 3 {
            let g = ((i - 1) / 2 - 1) / 2;
            if self.less(g, i) {
                self.buf.swap(i, g);
                i = g;
            } else {
                break;
            }
        }
    }

    /// The smallest item, if any.
    fn peek_min(&self) -> Option<&HeapItem<N>> {
        self.buf.first()
    }

    /// Remove and return the smallest item.
    fn pop_min(&mut self) -> Option<HeapItem<N>> {
        match self.buf.len() {
            0 => None,
            1 => self.buf.pop(),
            _ => {
                let last = self.buf.len() - 1;
                self.buf.swap(0, last);
                let out = self.buf.pop();
                self.trickle_down_min(0);
                out
            }
        }
    }

    /// Remove and return the largest item.
    fn pop_max(&mut self) -> Option<HeapItem<N>> {
        match self.buf.len() {
            0 => None,
            1 | 2 => self.buf.pop(),
            _ => {
                let m = if self.less(1, 2) { 2 } else { 1 };
                let last = self.buf.len() - 1;
                self.buf.swap(m, last);
                let out = self.buf.pop();
                if m < self.buf.len() {
                    self.trickle_down_max(m);
                }
                out
            }
        }
    }

    /// Index of the extreme element (per `pick`) among children and
    /// grandchildren of `i`, or `None` if `i` is a leaf.
    fn extreme_descendant(&self, i: usize, pick_less: bool) -> Option<usize> {
        let len = self.buf.len();
        let c0 = 2 * i + 1;
        if c0 >= len {
            return None;
        }
        let mut m = c0;
        for j in [2 * i + 2, 4 * i + 3, 4 * i + 4, 4 * i + 5, 4 * i + 6] {
            if j < len {
                let better = if pick_less {
                    self.less(j, m)
                } else {
                    self.less(m, j)
                };
                if better {
                    m = j;
                }
            }
        }
        Some(m)
    }

    fn trickle_down_min(&mut self, mut i: usize) {
        while let Some(m) = self.extreme_descendant(i, true) {
            if m > 2 * i + 2 {
                // Grandchild.
                if self.less(m, i) {
                    self.buf.swap(i, m);
                    let p = (m - 1) / 2;
                    if self.less(p, m) {
                        self.buf.swap(m, p);
                    }
                    i = m;
                } else {
                    break;
                }
            } else {
                // Direct child.
                if self.less(m, i) {
                    self.buf.swap(i, m);
                }
                break;
            }
        }
    }

    fn trickle_down_max(&mut self, mut i: usize) {
        while let Some(m) = self.extreme_descendant(i, false) {
            if m > 2 * i + 2 {
                if self.less(i, m) {
                    self.buf.swap(i, m);
                    let p = (m - 1) / 2;
                    if self.less(m, p) {
                        self.buf.swap(m, p);
                    }
                    i = m;
                } else {
                    break;
                }
            } else {
                if self.less(i, m) {
                    self.buf.swap(i, m);
                }
                break;
            }
        }
    }
}

enum Store<N> {
    Heap(MinMaxHeap<N>),
    Deque(VecDeque<PoolEntry<N>>),
}

/// The pool of active problems, with a pluggable Select rule.
pub struct Pool<N> {
    rule: SelectRule,
    store: Store<N>,
    next_seq: u64,
    peak_len: usize,
}

impl<N> Pool<N> {
    /// An empty pool with the given selection rule.
    pub fn new(rule: SelectRule) -> Self {
        let store = match rule {
            SelectRule::BestFirst => Store::Heap(MinMaxHeap::new()),
            _ => Store::Deque(VecDeque::new()),
        };
        Pool {
            rule,
            store,
            next_seq: 0,
            peak_len: 0,
        }
    }

    /// The active selection rule.
    pub fn rule(&self) -> SelectRule {
        self.rule
    }

    /// Insert a subproblem.
    pub fn push(&mut self, entry: PoolEntry<N>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.store {
            Store::Heap(h) => h.push(HeapItem {
                bound: entry.bound,
                seq,
                entry,
            }),
            Store::Deque(d) => d.push_back(entry),
        }
        self.peak_len = self.peak_len.max(self.len());
    }

    /// Select and remove the next subproblem per the rule.
    pub fn pop(&mut self) -> Option<PoolEntry<N>> {
        match (&mut self.store, self.rule) {
            (Store::Heap(h), _) => h.pop_min().map(|i| i.entry),
            (Store::Deque(d), SelectRule::DepthFirst) => d.pop_back(),
            (Store::Deque(d), _) => d.pop_front(),
        }
    }

    /// Select the next subproblem whose bound can still improve
    /// `incumbent`, lazily discarding provably non-improving entries
    /// (`bound >= incumbent`) into `pruned` in pop order. The caller
    /// decides their fate: the distributed process completes them (their
    /// subtrees count toward termination detection), the sequential
    /// engine just counts them.
    ///
    /// For the best-first heap the scan stops at the first improving
    /// entry — the top is the minimum bound, so a non-improving top
    /// proves the whole pool is non-improving.
    pub fn pop_improving(
        &mut self,
        incumbent: f64,
        pruned: &mut Vec<PoolEntry<N>>,
    ) -> Option<PoolEntry<N>> {
        loop {
            let next = self.pop()?;
            if next.bound >= incumbent {
                pruned.push(next);
            } else {
                return Some(next);
            }
        }
    }

    /// Number of active subproblems.
    pub fn len(&self) -> usize {
        match &self.store {
            Store::Heap(h) => h.len(),
            Store::Deque(d) => d.len(),
        }
    }

    /// True when no subproblems are active.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Largest size the pool ever reached (storage metric).
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// The smallest bound in the pool, if any (best-first pools only;
    /// `None` for deque rules, whose pop order ignores bounds).
    pub fn min_bound(&self) -> Option<f64> {
        match &self.store {
            Store::Heap(h) => h.peek_min().map(|i| i.bound),
            Store::Deque(_) => None,
        }
    }

    /// Iterate over the pool's entries (order unspecified).
    pub fn iter(&self) -> PoolIter<'_, N> {
        PoolIter {
            inner: match &self.store {
                Store::Heap(h) => IterInner::Heap(h.iter()),
                Store::Deque(d) => IterInner::Deque(d.iter()),
            },
        }
    }

    /// Remove up to `k` entries for donation to another process (work
    /// sharing). Best-first pools donate their *worst*-bound entries (the
    /// donor keeps the most promising work), in ascending (bound, seq)
    /// order; deque pools donate from the front (the oldest, typically
    /// shallowest/largest subtrees — the classic work-stealing choice).
    pub fn split_off(&mut self, k: usize) -> Vec<PoolEntry<N>> {
        let mut out = Vec::with_capacity(k.min(self.len()));
        match &mut self.store {
            Store::Heap(h) => {
                // k pops from the max end — O(k log n), donor untouched
                // otherwise. Reversed, the donation is ascending
                // (bound, seq): the order the old drain-and-sort gave.
                for _ in 0..k {
                    match h.pop_max() {
                        Some(item) => out.push(item.entry),
                        None => break,
                    }
                }
                out.reverse();
            }
            Store::Deque(d) => {
                for _ in 0..k.min(d.len()) {
                    if let Some(e) = d.pop_front() {
                        out.push(e);
                    }
                }
            }
        }
        out
    }
}

/// Non-allocating iterator over a pool's entries — replaces the former
/// `Box<dyn Iterator>`.
pub struct PoolIter<'a, N> {
    inner: IterInner<'a, N>,
}

enum IterInner<'a, N> {
    Heap(std::slice::Iter<'a, HeapItem<N>>),
    Deque(std::collections::vec_deque::Iter<'a, PoolEntry<N>>),
}

impl<'a, N> Iterator for PoolIter<'a, N> {
    type Item = &'a PoolEntry<N>;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            IterInner::Heap(it) => it.next().map(|i| &i.entry),
            IterInner::Deque(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            IterInner::Heap(it) => it.size_hint(),
            IterInner::Deque(it) => it.size_hint(),
        }
    }
}

impl<N> ExactSizeIterator for PoolIter<'_, N> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(bound: f64, tag: u32) -> PoolEntry<u32> {
        PoolEntry {
            bound,
            depth: 0,
            node: tag,
        }
    }

    #[test]
    fn best_first_pops_min_bound() {
        let mut p = Pool::new(SelectRule::BestFirst);
        p.push(entry(3.0, 3));
        p.push(entry(1.0, 1));
        p.push(entry(2.0, 2));
        let order: Vec<u32> = std::iter::from_fn(|| p.pop().map(|e| e.node)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn best_first_ties_pop_oldest() {
        let mut p = Pool::new(SelectRule::BestFirst);
        for tag in 0..10 {
            p.push(entry(5.0, tag));
        }
        let order: Vec<u32> = std::iter::from_fn(|| p.pop().map(|e| e.node)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn depth_first_is_lifo() {
        let mut p = Pool::new(SelectRule::DepthFirst);
        p.push(entry(1.0, 1));
        p.push(entry(2.0, 2));
        p.push(entry(3.0, 3));
        let order: Vec<u32> = std::iter::from_fn(|| p.pop().map(|e| e.node)).collect();
        assert_eq!(order, vec![3, 2, 1]);
    }

    #[test]
    fn breadth_first_is_fifo() {
        let mut p = Pool::new(SelectRule::BreadthFirst);
        p.push(entry(1.0, 1));
        p.push(entry(2.0, 2));
        let order: Vec<u32> = std::iter::from_fn(|| p.pop().map(|e| e.node)).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn split_off_heap_donates_worst() {
        let mut p = Pool::new(SelectRule::BestFirst);
        for (b, t) in [(1.0, 1), (5.0, 5), (3.0, 3), (4.0, 4), (2.0, 2)] {
            p.push(entry(b, t));
        }
        let donated = p.split_off(2);
        let mut tags: Vec<u32> = donated.iter().map(|e| e.node).collect();
        tags.sort_unstable();
        assert_eq!(tags, vec![4, 5]);
        // Donor keeps the best and still pops in order.
        assert_eq!(p.pop().unwrap().node, 1);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn split_off_donation_order_is_bound_then_seq_ascending() {
        // The donated vector must be exactly what the old drain-and-sort
        // produced: the worst k, ascending by (bound, insertion seq) —
        // including seq tie-breaks among equal bounds.
        let mut p = Pool::new(SelectRule::BestFirst);
        // tags record insertion order; bounds include ties.
        for (i, b) in [3.0, 7.0, 7.0, 1.0, 9.0, 7.0, 2.0].iter().enumerate() {
            p.push(entry(*b, i as u32));
        }
        // Sorted by (bound, seq): (1.0,3) (2.0,6) (3.0,0) (7.0,1) (7.0,2) (7.0,5) (9.0,4)
        // Worst 4 in ascending order: tags 1, 2, 5, 4.
        let donated: Vec<u32> = p.split_off(4).iter().map(|e| e.node).collect();
        assert_eq!(donated, vec![1, 2, 5, 4]);
        // Donor still pops best-first.
        let order: Vec<u32> = std::iter::from_fn(|| p.pop().map(|e| e.node)).collect();
        assert_eq!(order, vec![3, 6, 0]);
    }

    #[test]
    fn split_off_deque_donates_oldest() {
        let mut p = Pool::new(SelectRule::DepthFirst);
        p.push(entry(1.0, 1));
        p.push(entry(2.0, 2));
        p.push(entry(3.0, 3));
        let donated = p.split_off(2);
        let tags: Vec<u32> = donated.iter().map(|e| e.node).collect();
        assert_eq!(tags, vec![1, 2]);
        assert_eq!(p.pop().unwrap().node, 3);
    }

    #[test]
    fn split_off_more_than_len() {
        let mut p = Pool::new(SelectRule::BestFirst);
        p.push(entry(1.0, 1));
        let donated = p.split_off(10);
        assert_eq!(donated.len(), 1);
        assert!(p.is_empty());
    }

    #[test]
    fn peak_len_tracks_high_water() {
        let mut p = Pool::new(SelectRule::BreadthFirst);
        for i in 0..5 {
            p.push(entry(i as f64, i));
        }
        for _ in 0..3 {
            p.pop();
        }
        p.push(entry(9.0, 9));
        assert_eq!(p.peak_len(), 5);
    }

    #[test]
    fn pop_improving_prunes_and_counts() {
        let mut p = Pool::new(SelectRule::BestFirst);
        for (b, t) in [(4.0, 4), (1.0, 1), (6.0, 6), (2.0, 2), (5.0, 5)] {
            p.push(entry(b, t));
        }
        let mut pruned = Vec::new();
        // Incumbent 3.0: 1 and 2 improve; 4, 5, 6 are dead weight.
        assert_eq!(p.pop_improving(3.0, &mut pruned).unwrap().node, 1);
        assert!(pruned.is_empty());
        assert_eq!(p.pop_improving(3.0, &mut pruned).unwrap().node, 2);
        assert!(pruned.is_empty());
        // Third call drains the non-improving rest in pop order.
        assert!(p.pop_improving(3.0, &mut pruned).is_none());
        let tags: Vec<u32> = pruned.iter().map(|e| e.node).collect();
        assert_eq!(tags, vec![4, 5, 6]);
        assert!(p.is_empty());
    }

    #[test]
    fn pop_improving_deque_scans_in_pop_order() {
        let mut p = Pool::new(SelectRule::DepthFirst);
        for (b, t) in [(1.0, 1), (9.0, 9), (2.0, 2)] {
            p.push(entry(b, t));
        }
        let mut pruned = Vec::new();
        // LIFO: pops 2 (improving), then 9 (pruned), then 1 (improving).
        assert_eq!(p.pop_improving(3.0, &mut pruned).unwrap().node, 2);
        assert_eq!(p.pop_improving(3.0, &mut pruned).unwrap().node, 1);
        assert_eq!(pruned.len(), 1);
        assert_eq!(pruned[0].node, 9);
    }

    #[test]
    fn min_bound_tracks_heap_top() {
        let mut p = Pool::new(SelectRule::BestFirst);
        assert_eq!(p.min_bound(), None);
        p.push(entry(4.0, 4));
        p.push(entry(2.0, 2));
        assert_eq!(p.min_bound(), Some(2.0));
        p.pop();
        assert_eq!(p.min_bound(), Some(4.0));
        assert_eq!(Pool::<u32>::new(SelectRule::DepthFirst).min_bound(), None);
    }

    #[test]
    fn iter_visits_every_entry_without_boxing() {
        let mut p = Pool::new(SelectRule::BestFirst);
        for i in 0..7 {
            p.push(entry(i as f64, i));
        }
        let mut tags: Vec<u32> = p.iter().map(|e| e.node).collect();
        tags.sort_unstable();
        assert_eq!(tags, (0..7).collect::<Vec<_>>());
        assert_eq!(p.iter().len(), 7);
    }

    /// Randomized interleaving of push / pop(min) / split_off against a
    /// reference sorted-vec model: the min-max heap must agree with the
    /// model at every step.
    #[test]
    fn heap_matches_reference_model() {
        // Deterministic LCG; no external rand needed here.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut pool: Pool<u32> = Pool::new(SelectRule::BestFirst);
        // Model: (bound, seq, tag), kept sorted ascending.
        let mut model: Vec<(f64, u64, u32)> = Vec::new();
        let mut seq = 0u64;
        for step in 0..4000u32 {
            match rng() % 10 {
                0..=5 => {
                    // Push, with deliberately clustered bounds for ties.
                    let bound = (rng() % 50) as f64;
                    let tag = step;
                    pool.push(entry(bound, tag));
                    model.push((bound, seq, tag));
                    seq += 1;
                    model.sort_by(|a, b| a.partial_cmp(b).unwrap());
                }
                6 | 7 => {
                    let got = pool.pop().map(|e| e.node);
                    let want = if model.is_empty() {
                        None
                    } else {
                        Some(model.remove(0).2)
                    };
                    assert_eq!(got, want, "pop_min diverged at step {step}");
                }
                8 => {
                    let k = (rng() % 4) as usize;
                    let got: Vec<u32> = pool.split_off(k).iter().map(|e| e.node).collect();
                    let take = k.min(model.len());
                    let want: Vec<u32> = model
                        .split_off(model.len() - take)
                        .iter()
                        .map(|m| m.2)
                        .collect();
                    assert_eq!(got, want, "split_off diverged at step {step}");
                }
                _ => {
                    let mut pruned = Vec::new();
                    let cutoff = (rng() % 50) as f64;
                    let got = pool.pop_improving(cutoff, &mut pruned).map(|e| e.node);
                    let mut want = None;
                    let mut want_pruned = Vec::new();
                    while !model.is_empty() {
                        let m = model.remove(0);
                        if m.0 >= cutoff {
                            want_pruned.push(m.2);
                        } else {
                            want = Some(m.2);
                            break;
                        }
                    }
                    assert_eq!(got, want, "pop_improving diverged at step {step}");
                    let got_pruned: Vec<u32> = pruned.iter().map(|e| e.node).collect();
                    assert_eq!(got_pruned, want_pruned);
                }
            }
            assert_eq!(pool.len(), model.len());
            assert_eq!(pool.min_bound(), model.first().map(|m| m.0));
        }
    }
}
