//! Weighted MAX-SAT as a [`BranchBound`] problem.
//!
//! Minimizes the total weight of falsified clauses. Unlike knapsack, the
//! branching variable is chosen *dynamically* (the unassigned variable
//! occurring in the most unresolved clauses), so different subtrees branch
//! on different variables in different orders — exactly the situation the
//! paper's `⟨variable, value⟩` code pairs exist for (§5.3.1, Figure 1).

use crate::problem::BranchBound;
use ftbb_tree::Var;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A literal: variable index and polarity (`true` = positive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Literal {
    /// Variable index in `0..num_vars`.
    pub var: u16,
    /// `true` for `x`, `false` for `¬x`.
    pub positive: bool,
}

/// A weighted clause (disjunction of literals).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clause {
    /// The literals.
    pub literals: Vec<Literal>,
    /// Weight paid if the clause is falsified.
    pub weight: f64,
}

/// A weighted MAX-SAT instance with at most 64 variables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaxSatInstance {
    /// Number of variables (≤ 64).
    pub num_vars: u16,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl MaxSatInstance {
    /// Build an instance; validates literal ranges.
    pub fn new(num_vars: u16, clauses: Vec<Clause>) -> Self {
        assert!(num_vars <= 64, "at most 64 variables supported");
        for c in &clauses {
            assert!(!c.literals.is_empty(), "empty clause");
            assert!(c.weight > 0.0, "non-positive clause weight");
            for l in &c.literals {
                assert!(l.var < num_vars, "literal variable out of range");
            }
        }
        MaxSatInstance { num_vars, clauses }
    }

    /// Random weighted 3-SAT-ish instance (clauses of length 2–3),
    /// deterministic per seed.
    pub fn generate(num_vars: u16, num_clauses: usize, seed: u64) -> Self {
        assert!((2..=64).contains(&num_vars));
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut clauses = Vec::with_capacity(num_clauses);
        for _ in 0..num_clauses {
            let len = rng.gen_range(2..=3usize.min(num_vars as usize));
            let mut vars: Vec<u16> = Vec::with_capacity(len);
            while vars.len() < len {
                let v = rng.gen_range(0..num_vars);
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
            let literals = vars
                .into_iter()
                .map(|var| Literal {
                    var,
                    positive: rng.gen_bool(0.5),
                })
                .collect();
            clauses.push(Clause {
                literals,
                weight: rng.gen_range(1..=10) as f64,
            });
        }
        MaxSatInstance::new(num_vars, clauses)
    }

    /// Exhaustive optimum (minimum falsified weight) for small instances.
    pub fn brute_force(&self) -> f64 {
        assert!(self.num_vars <= 22, "brute force only for small instances");
        let mut best = f64::INFINITY;
        for assignment in 0u64..(1u64 << self.num_vars) {
            let mut falsified = 0.0;
            for c in &self.clauses {
                let sat = c
                    .literals
                    .iter()
                    .any(|l| ((assignment >> l.var) & 1 == 1) == l.positive);
                if !sat {
                    falsified += c.weight;
                }
            }
            best = best.min(falsified);
        }
        best
    }

    /// Clause status under a partial assignment.
    fn clause_state(&self, clause: &Clause, node: &SatNode) -> ClauseState {
        let mut any_unassigned = false;
        for l in &clause.literals {
            if (node.assigned >> l.var) & 1 == 1 {
                if ((node.values >> l.var) & 1 == 1) == l.positive {
                    return ClauseState::Satisfied;
                }
            } else {
                any_unassigned = true;
            }
        }
        if any_unassigned {
            ClauseState::Open
        } else {
            ClauseState::Falsified
        }
    }
}

enum ClauseState {
    Satisfied,
    Falsified,
    Open,
}

/// A partial assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SatNode {
    /// Bitmask of assigned variables.
    pub assigned: u64,
    /// Values of assigned variables (bits meaningful where `assigned` set).
    pub values: u64,
}

impl BranchBound for MaxSatInstance {
    type Node = SatNode;

    fn root(&self) -> SatNode {
        SatNode::default()
    }

    fn bound(&self, node: &SatNode) -> f64 {
        // Weight of clauses already falsified — every extension pays it.
        self.clauses
            .iter()
            .filter(|c| matches!(self.clause_state(c, node), ClauseState::Falsified))
            .map(|c| c.weight)
            .sum()
    }

    fn solution(&self, node: &SatNode) -> Option<f64> {
        // A solution exists once no clause is open (even if variables remain
        // unassigned — they can't change anything).
        let any_open = self
            .clauses
            .iter()
            .any(|c| matches!(self.clause_state(c, node), ClauseState::Open));
        if any_open {
            None
        } else {
            Some(self.bound(node))
        }
    }

    fn branching_var(&self, node: &SatNode) -> Option<Var> {
        // Most-occurring unassigned variable among open clauses.
        let mut counts = [0u32; 64];
        let mut any = false;
        for c in &self.clauses {
            if matches!(self.clause_state(c, node), ClauseState::Open) {
                for l in &c.literals {
                    if (node.assigned >> l.var) & 1 == 0 {
                        counts[l.var as usize] += 1;
                        any = true;
                    }
                }
            }
        }
        if !any {
            return None;
        }
        let var = (0..self.num_vars)
            .max_by_key(|&v| counts[v as usize])
            .expect("num_vars > 0");
        Some(var)
    }

    fn decompose(&self, node: &SatNode) -> Option<(SatNode, SatNode)> {
        let var = self.branching_var(node)?;
        let mk = |value: bool| SatNode {
            assigned: node.assigned | (1 << var),
            values: if value {
                node.values | (1 << var)
            } else {
                node.values & !(1 << var)
            },
        };
        Some((mk(false), mk(true)))
    }

    fn cost(&self, _node: &SatNode) -> f64 {
        1e-6 * (1.0 + self.clauses.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{solve, SolveConfig};

    fn lit(var: u16, positive: bool) -> Literal {
        Literal { var, positive }
    }

    #[test]
    fn trivially_satisfiable() {
        let inst = MaxSatInstance::new(
            2,
            vec![Clause {
                literals: vec![lit(0, true), lit(1, true)],
                weight: 5.0,
            }],
        );
        let r = solve(&inst, &SolveConfig::default());
        assert_eq!(r.best, Some(0.0));
    }

    #[test]
    fn contradiction_pays_min_weight() {
        // (x0) weight 2 and (¬x0) weight 3: best falsifies the cheaper one.
        let inst = MaxSatInstance::new(
            1,
            vec![
                Clause {
                    literals: vec![lit(0, true)],
                    weight: 2.0,
                },
                Clause {
                    literals: vec![lit(0, false)],
                    weight: 3.0,
                },
            ],
        );
        let r = solve(&inst, &SolveConfig::default());
        assert_eq!(r.best, Some(2.0));
    }

    #[test]
    fn matches_brute_force() {
        for seed in 0..10 {
            let inst = MaxSatInstance::generate(10, 30, seed);
            let r = solve(&inst, &SolveConfig::default());
            let expect = inst.brute_force();
            assert!(
                (r.best.unwrap() - expect).abs() < 1e-9,
                "seed {seed}: got {:?}, expected {expect}",
                r.best
            );
        }
    }

    #[test]
    fn branching_order_varies_across_subtrees() {
        // Find an instance where the two root children branch on different
        // variables — the motivating case for ⟨var, value⟩ code pairs.
        let mut found = false;
        for seed in 0..50 {
            let inst = MaxSatInstance::generate(8, 16, seed);
            let root = inst.root();
            let Some((l, r)) = inst.decompose(&root) else {
                continue;
            };
            let (lv, rv) = (inst.branching_var(&l), inst.branching_var(&r));
            if lv.is_some() && rv.is_some() && lv != rv {
                found = true;
                break;
            }
        }
        assert!(
            found,
            "expected at least one instance with divergent branching order"
        );
    }

    #[test]
    fn rebuild_is_self_contained() {
        let inst = MaxSatInstance::generate(8, 20, 3);
        let r = solve(&inst, &SolveConfig::default());
        let code = r.best_code.unwrap();
        let node = inst.rebuild(&code).unwrap();
        assert_eq!(inst.solution(&node), r.best);
    }

    #[test]
    fn bound_monotone_in_assignments() {
        let inst = MaxSatInstance::generate(8, 20, 4);
        let root = inst.root();
        let (l, r) = inst.decompose(&root).unwrap();
        assert!(inst.bound(&l) >= inst.bound(&root));
        assert!(inst.bound(&r) >= inst.bound(&root));
    }

    #[test]
    #[should_panic(expected = "empty clause")]
    fn rejects_empty_clause() {
        MaxSatInstance::new(
            1,
            vec![Clause {
                literals: vec![],
                weight: 1.0,
            }],
        );
    }
}
