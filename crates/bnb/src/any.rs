//! Problem-agnostic workloads: one serializable type over every
//! [`BranchBound`] problem the repo ships.
//!
//! The paper's mechanism is *problem-specific only through the tree code*
//! (§2, §5.3.1): any branch-and-bound problem whose decisions encode as
//! `⟨variable, value⟩` pairs rides the same recovery machinery. This
//! module makes that claim executable: [`AnyInstance`] is an enum over 0/1
//! knapsack, weighted MAX-SAT, and recorded basic trees, dispatching the
//! [`BranchBound`] operators per variant. Because it derives the workspace
//! serde codec, a materialized instance travels the wire unchanged — the
//! `ftbb-wire` problem-announce frame ships an [`AnyInstance`] so peers
//! can solve a problem they never generated locally.

use crate::knapsack::{KnapNode, KnapsackInstance};
use crate::maxsat::{MaxSatInstance, SatNode};
use crate::problem::BranchBound;
use crate::replay::BasicTreeProblem;
use ftbb_tree::{NodeId, Var};
use serde::{Deserialize, Serialize};

/// Any workload the cluster can solve, in one serializable value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AnyInstance {
    /// 0/1 knapsack ([`KnapsackInstance`]).
    Knapsack(KnapsackInstance),
    /// Weighted MAX-SAT ([`MaxSatInstance`]).
    MaxSat(MaxSatInstance),
    /// A recorded basic tree replayed through [`BasicTreeProblem`].
    RecordedTree(BasicTreeProblem),
}

/// A subproblem of an [`AnyInstance`]: the matching variant's node type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnyNode {
    /// Knapsack subproblem.
    Knapsack(KnapNode),
    /// MAX-SAT partial assignment.
    MaxSat(SatNode),
    /// Recorded-tree node id.
    Tree(NodeId),
}

/// A node of the wrong variant reached an [`AnyInstance`] operator. Like a
/// foreign tree code, this indicates protocol corruption, not a user error.
fn mismatch(instance: &AnyInstance, node: &AnyNode) -> ! {
    panic!(
        "AnyInstance mismatch: {} instance asked to expand a {:?} node",
        instance.kind(),
        node
    );
}

impl AnyInstance {
    /// A human-readable workload label (`knapsack` / `maxsat` /
    /// `recorded-tree`) for logs and error messages. Note this names the
    /// *materialized* workload, not a config spelling: a recorded tree is
    /// the same instance whether it came from `--problem tree-file` or
    /// over the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            AnyInstance::Knapsack(_) => "knapsack",
            AnyInstance::MaxSat(_) => "maxsat",
            AnyInstance::RecordedTree(_) => "recorded-tree",
        }
    }

    /// Structural validation, for instances decoded from untrusted bytes
    /// (the serde derive decodes structure, not invariants). Mirrors the
    /// panicking checks of the variants' constructors.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            AnyInstance::Knapsack(k) => {
                if k.capacity == 0 {
                    return Err("knapsack capacity must be at least 1".into());
                }
                if k.items.iter().any(|i| i.weight == 0) {
                    return Err("knapsack item weights must be at least 1".into());
                }
                Ok(())
            }
            AnyInstance::MaxSat(m) => {
                if m.num_vars > 64 {
                    return Err("maxsat supports at most 64 variables".into());
                }
                for c in &m.clauses {
                    if c.literals.is_empty() {
                        return Err("maxsat clause is empty".into());
                    }
                    if !(c.weight > 0.0 && c.weight.is_finite()) {
                        return Err("maxsat clause weight must be positive and finite".into());
                    }
                    if c.literals.iter().any(|l| l.var >= m.num_vars) {
                        return Err("maxsat literal variable out of range".into());
                    }
                }
                Ok(())
            }
            AnyInstance::RecordedTree(t) => t.tree().validate(),
        }
    }
}

impl From<KnapsackInstance> for AnyInstance {
    fn from(k: KnapsackInstance) -> Self {
        AnyInstance::Knapsack(k)
    }
}

impl From<MaxSatInstance> for AnyInstance {
    fn from(m: MaxSatInstance) -> Self {
        AnyInstance::MaxSat(m)
    }
}

impl From<BasicTreeProblem> for AnyInstance {
    fn from(t: BasicTreeProblem) -> Self {
        AnyInstance::RecordedTree(t)
    }
}

impl From<ftbb_tree::BasicTree> for AnyInstance {
    fn from(t: ftbb_tree::BasicTree) -> Self {
        AnyInstance::RecordedTree(BasicTreeProblem::new(t))
    }
}

impl BranchBound for AnyInstance {
    type Node = AnyNode;

    fn root(&self) -> AnyNode {
        match self {
            AnyInstance::Knapsack(p) => AnyNode::Knapsack(p.root()),
            AnyInstance::MaxSat(p) => AnyNode::MaxSat(p.root()),
            AnyInstance::RecordedTree(p) => AnyNode::Tree(p.root()),
        }
    }

    fn bound(&self, node: &AnyNode) -> f64 {
        match (self, node) {
            (AnyInstance::Knapsack(p), AnyNode::Knapsack(n)) => p.bound(n),
            (AnyInstance::MaxSat(p), AnyNode::MaxSat(n)) => p.bound(n),
            (AnyInstance::RecordedTree(p), AnyNode::Tree(n)) => p.bound(n),
            _ => mismatch(self, node),
        }
    }

    fn solution(&self, node: &AnyNode) -> Option<f64> {
        match (self, node) {
            (AnyInstance::Knapsack(p), AnyNode::Knapsack(n)) => p.solution(n),
            (AnyInstance::MaxSat(p), AnyNode::MaxSat(n)) => p.solution(n),
            (AnyInstance::RecordedTree(p), AnyNode::Tree(n)) => p.solution(n),
            _ => mismatch(self, node),
        }
    }

    fn branching_var(&self, node: &AnyNode) -> Option<Var> {
        match (self, node) {
            (AnyInstance::Knapsack(p), AnyNode::Knapsack(n)) => p.branching_var(n),
            (AnyInstance::MaxSat(p), AnyNode::MaxSat(n)) => p.branching_var(n),
            (AnyInstance::RecordedTree(p), AnyNode::Tree(n)) => p.branching_var(n),
            _ => mismatch(self, node),
        }
    }

    fn decompose(&self, node: &AnyNode) -> Option<(AnyNode, AnyNode)> {
        match (self, node) {
            (AnyInstance::Knapsack(p), AnyNode::Knapsack(n)) => p
                .decompose(n)
                .map(|(l, r)| (AnyNode::Knapsack(l), AnyNode::Knapsack(r))),
            (AnyInstance::MaxSat(p), AnyNode::MaxSat(n)) => p
                .decompose(n)
                .map(|(l, r)| (AnyNode::MaxSat(l), AnyNode::MaxSat(r))),
            (AnyInstance::RecordedTree(p), AnyNode::Tree(n)) => p
                .decompose(n)
                .map(|(l, r)| (AnyNode::Tree(l), AnyNode::Tree(r))),
            _ => mismatch(self, node),
        }
    }

    fn cost(&self, node: &AnyNode) -> f64 {
        match (self, node) {
            (AnyInstance::Knapsack(p), AnyNode::Knapsack(n)) => p.cost(n),
            (AnyInstance::MaxSat(p), AnyNode::MaxSat(n)) => p.cost(n),
            (AnyInstance::RecordedTree(p), AnyNode::Tree(n)) => p.cost(n),
            _ => mismatch(self, node),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{solve, SolveConfig};
    use crate::knapsack::Correlation;
    use crate::recorder::{record_basic_tree, RecordLimits};
    use ftbb_tree::basic_tree::fig1_example;

    #[test]
    fn knapsack_dispatch_matches_direct_solve() {
        let k = KnapsackInstance::generate(14, 50, Correlation::Weak, 0.5, 9);
        let direct = solve(&k, &SolveConfig::default());
        let any = AnyInstance::from(k);
        let dispatched = solve(&any, &SolveConfig::default());
        assert_eq!(dispatched.best, direct.best);
        assert_eq!(dispatched.best_code, direct.best_code);
        assert_eq!(any.kind(), "knapsack");
    }

    #[test]
    fn maxsat_dispatch_matches_direct_solve() {
        let m = MaxSatInstance::generate(10, 30, 4);
        let direct = solve(&m, &SolveConfig::default());
        let any = AnyInstance::from(m);
        let dispatched = solve(&any, &SolveConfig::default());
        assert_eq!(dispatched.best, direct.best);
        assert_eq!(any.kind(), "maxsat");
    }

    #[test]
    fn recorded_tree_dispatch_matches_tree_optimum() {
        let any = AnyInstance::from(fig1_example());
        let r = solve(&any, &SolveConfig::default());
        assert_eq!(r.best, fig1_example().optimal());
        assert_eq!(any.kind(), "recorded-tree");
    }

    #[test]
    fn rebuild_is_self_contained_for_every_variant() {
        let variants: Vec<AnyInstance> = vec![
            KnapsackInstance::generate(12, 40, Correlation::Uncorrelated, 0.5, 3).into(),
            MaxSatInstance::generate(8, 20, 3).into(),
            fig1_example().into(),
        ];
        for any in variants {
            let r = solve(&any, &SolveConfig::default());
            let code = r.best_code.expect("feasible instance");
            let node = any.rebuild(&code).expect("own best code replays");
            assert_eq!(any.solution(&node), r.best, "{}", any.kind());
        }
    }

    #[test]
    fn serde_round_trips_every_variant() {
        let k = KnapsackInstance::generate(10, 30, Correlation::Strong, 0.5, 5);
        let m = MaxSatInstance::generate(6, 12, 7);
        let tree = record_basic_tree(&k, RecordLimits::default()).unwrap();
        for any in [
            AnyInstance::Knapsack(k.clone()),
            AnyInstance::MaxSat(m),
            AnyInstance::RecordedTree(BasicTreeProblem::new(tree)),
        ] {
            let bytes = serde::encode(&any);
            let back: AnyInstance = serde::decode(&bytes).expect("round trip");
            assert_eq!(back, any);
            assert!(back.validate().is_ok());
        }
    }

    #[test]
    fn validate_rejects_corrupt_instances() {
        let mut k = KnapsackInstance::generate(5, 20, Correlation::Weak, 0.5, 1);
        k.capacity = 0;
        assert!(AnyInstance::Knapsack(k).validate().is_err());

        let mut m = MaxSatInstance::generate(4, 8, 1);
        m.clauses[0].weight = -1.0;
        assert!(AnyInstance::MaxSat(m.clone()).validate().is_err());
        m.clauses[0].weight = 1.0;
        m.clauses[0].literals[0].var = 99;
        assert!(AnyInstance::MaxSat(m).validate().is_err());
    }

    #[test]
    #[should_panic(expected = "AnyInstance mismatch")]
    fn foreign_node_variant_panics() {
        let any = AnyInstance::from(MaxSatInstance::generate(4, 8, 1));
        let knap_node =
            AnyNode::Knapsack(KnapsackInstance::generate(4, 10, Correlation::Weak, 0.5, 1).root());
        any.bound(&knap_node);
    }
}
