//! The sequential B&B engine (§2): Select, Bound, Decompose, Eliminate in a
//! loop over the pool of active problems. Serves as the correctness
//! reference for every distributed run — the distributed algorithm must find
//! exactly the same optimum on the same tree, regardless of failures.

use crate::pool::{Pool, PoolEntry, SelectRule};
use crate::problem::BranchBound;
use ftbb_tree::Code;

/// Statistics of a sequential solve.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveStats {
    /// Nodes popped and processed (bounded + decomposed) — the paper's
    /// "nodes expanded".
    pub expanded: u64,
    /// Children discarded at creation because `l(v) ≥ U`.
    pub eliminated_at_insert: u64,
    /// Pool entries discarded at selection because the incumbent improved
    /// after they were inserted.
    pub eliminated_at_pop: u64,
    /// Leaves reached (fathomed: infeasible or fully solved).
    pub fathomed_leaves: u64,
    /// Times the incumbent improved.
    pub incumbent_updates: u64,
    /// Total simulated compute cost of expanded nodes, in seconds.
    pub total_cost: f64,
    /// Peak pool size (storage metric).
    pub peak_pool: usize,
}

/// Result of a sequential solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResult {
    /// The optimal objective value, `None` if the problem is infeasible.
    pub best: Option<f64>,
    /// The code of the node where the optimum was found.
    pub best_code: Option<Code>,
    /// Counters.
    pub stats: SolveStats,
}

/// Configuration for a sequential solve.
#[derive(Debug, Clone)]
pub struct SolveConfig {
    /// Selection rule.
    pub rule: SelectRule,
    /// Optional starting incumbent (e.g. from a heuristic).
    pub initial_incumbent: Option<f64>,
    /// Safety valve: abort after this many expansions (`None` = unlimited).
    pub max_expanded: Option<u64>,
}

impl Default for SolveConfig {
    fn default() -> Self {
        SolveConfig {
            rule: SelectRule::BestFirst,
            initial_incumbent: None,
            max_expanded: None,
        }
    }
}

/// Solve `problem` to optimality.
pub fn solve<P: BranchBound>(problem: &P, config: &SolveConfig) -> SolveResult {
    solve_observed(problem, config, |_, _| {})
}

/// Solve, invoking `observe(code, bound)` for every expanded node — used by
/// the basic-tree recorder and by tests that need the expansion order.
pub fn solve_observed<P, F>(problem: &P, config: &SolveConfig, mut observe: F) -> SolveResult
where
    P: BranchBound,
    F: FnMut(&Code, f64),
{
    let mut pool: Pool<(P::Node, Code)> = Pool::new(config.rule);
    let mut incumbent = config.initial_incumbent.unwrap_or(f64::INFINITY);
    let mut best: Option<f64> = None;
    let mut best_code: Option<Code> = None;
    let mut stats = SolveStats::default();

    let root = problem.root();
    let root_bound = problem.bound(&root);
    pool.push(PoolEntry {
        bound: root_bound,
        depth: 0,
        node: (root, Code::root()),
    });

    // Eliminate (at selection), lazily inside the pool: the incumbent may
    // have improved since entries were inserted; `pop_improving` discards
    // the provably non-improving ones without expanding them.
    let mut pruned = Vec::new();
    loop {
        let next = pool.pop_improving(incumbent, &mut pruned);
        stats.eliminated_at_pop += pruned.len() as u64;
        pruned.clear();
        let Some(entry) = next else { break };
        if let Some(limit) = config.max_expanded {
            if stats.expanded >= limit {
                break;
            }
        }
        let (node, code) = entry.node;
        stats.expanded += 1;
        stats.total_cost += problem.cost(&node);
        observe(&code, entry.bound);

        // Bound may certify a feasible solution at this node.
        if let Some(value) = problem.solution(&node) {
            if value < incumbent {
                incumbent = value;
                best = Some(value);
                best_code = Some(code.clone());
                stats.incumbent_updates += 1;
            }
        }

        // Decompose.
        match (problem.branching_var(&node), problem.decompose(&node)) {
            (Some(var), Some((left, right))) => {
                for (child, bit) in [(left, false), (right, true)] {
                    let b = problem.bound(&child);
                    if b >= incumbent {
                        stats.eliminated_at_insert += 1;
                    } else {
                        pool.push(PoolEntry {
                            bound: b,
                            depth: entry.depth + 1,
                            node: (child, code.child(var, bit)),
                        });
                    }
                }
            }
            (None, None) => {
                stats.fathomed_leaves += 1;
            }
            _ => panic!("branching_var and decompose must agree on leaf-ness"),
        }
    }

    stats.peak_pool = pool.peak_len();
    SolveResult {
        best,
        best_code,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::BasicTreeProblem;
    use ftbb_tree::basic_tree::fig1_example;

    #[test]
    fn solves_fig1_tree() {
        let problem = BasicTreeProblem::new(fig1_example());
        let r = solve(&problem, &SolveConfig::default());
        assert_eq!(r.best, Some(7.0));
        assert_eq!(
            r.best_code.unwrap(),
            Code::from_decisions(&[(1, false), (2, true)])
        );
        assert!(r.stats.expanded >= 4); // root, both internals, the optimum leaf
    }

    #[test]
    fn all_rules_find_same_optimum() {
        let tree = ftbb_tree::random_basic_tree(&ftbb_tree::TreeConfig {
            target_nodes: 2001,
            seed: 11,
            ..Default::default()
        });
        let problem = BasicTreeProblem::new(tree);
        let mut values = Vec::new();
        for rule in [
            SelectRule::BestFirst,
            SelectRule::DepthFirst,
            SelectRule::BreadthFirst,
        ] {
            let r = solve(
                &problem,
                &SolveConfig {
                    rule,
                    ..Default::default()
                },
            );
            values.push(r.best);
        }
        assert_eq!(values[0], values[1]);
        assert_eq!(values[1], values[2]);
        assert_eq!(values[0], problem.tree().optimal());
    }

    #[test]
    fn best_first_expands_no_more_than_depth_first() {
        // Best-first with exact bounds explores the minimal certified set;
        // depth-first generally expands at least as many nodes.
        let tree = ftbb_tree::random_basic_tree(&ftbb_tree::TreeConfig {
            target_nodes: 4001,
            seed: 5,
            bound_growth: 0.1,
            ..Default::default()
        });
        let problem = BasicTreeProblem::new(tree);
        let best = solve(
            &problem,
            &SolveConfig {
                rule: SelectRule::BestFirst,
                ..Default::default()
            },
        );
        let dfs = solve(
            &problem,
            &SolveConfig {
                rule: SelectRule::DepthFirst,
                ..Default::default()
            },
        );
        assert!(best.stats.expanded <= dfs.stats.expanded);
    }

    #[test]
    fn initial_incumbent_prunes() {
        let problem = BasicTreeProblem::new(fig1_example());
        let cold = solve(&problem, &SolveConfig::default());
        let warm = solve(
            &problem,
            &SolveConfig {
                initial_incumbent: Some(7.5),
                ..Default::default()
            },
        );
        assert_eq!(warm.best, Some(7.0));
        assert!(warm.stats.expanded <= cold.stats.expanded);
        assert!(
            warm.stats.eliminated_at_insert + warm.stats.eliminated_at_pop
                >= cold.stats.eliminated_at_insert + cold.stats.eliminated_at_pop
        );
    }

    #[test]
    fn incumbent_below_optimum_yields_no_solution() {
        let problem = BasicTreeProblem::new(fig1_example());
        let r = solve(
            &problem,
            &SolveConfig {
                initial_incumbent: Some(5.0),
                ..Default::default()
            },
        );
        // Nothing beats 5.0 in this tree; search proves it quickly.
        assert_eq!(r.best, None);
    }

    #[test]
    fn max_expanded_aborts() {
        let tree = ftbb_tree::random_basic_tree(&ftbb_tree::TreeConfig {
            target_nodes: 4001,
            seed: 9,
            ..Default::default()
        });
        let problem = BasicTreeProblem::new(tree);
        let r = solve(
            &problem,
            &SolveConfig {
                max_expanded: Some(10),
                ..Default::default()
            },
        );
        assert!(r.stats.expanded <= 10);
    }

    #[test]
    fn observe_sees_expansion_order() {
        let problem = BasicTreeProblem::new(fig1_example());
        let mut codes = Vec::new();
        solve_observed(&problem, &SolveConfig::default(), |c, _| {
            codes.push(c.clone())
        });
        assert_eq!(codes[0], Code::root());
        // All observed codes are distinct.
        let mut dedup = codes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len());
    }
}
