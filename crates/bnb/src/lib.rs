//! # ftbb-bnb — sequential branch-and-bound engine and problems
//!
//! Implements §2 of Iamnitchi & Foster (ICPP 2000): the four-operator
//! (Decompose / Bound / Select / Eliminate) sequential B&B loop, three
//! selection rules, real problems (0/1 knapsack, weighted MAX-SAT), the
//! basic-tree recorder of §6.2, and a replay adapter that drives the engine
//! from recorded trees.
//!
//! The sequential engine is the *correctness oracle* for the distributed
//! algorithm: every simulated distributed run — under any crash schedule
//! that leaves at least one process alive — must find the same optimum.

#![warn(missing_docs)]

pub mod any;
pub mod engine;
pub mod knapsack;
pub mod maxsat;
pub mod pool;
pub mod problem;
pub mod recorder;
pub mod replay;

pub use any::{AnyInstance, AnyNode};
pub use engine::{solve, solve_observed, SolveConfig, SolveResult, SolveStats};
pub use knapsack::{Correlation, Item, KnapNode, KnapsackInstance};
pub use maxsat::{Clause, Literal, MaxSatInstance, SatNode};
pub use pool::{Pool, PoolEntry, SelectRule};
pub use problem::BranchBound;
pub use recorder::{record_basic_tree, RecordError, RecordLimits};
pub use replay::BasicTreeProblem;
