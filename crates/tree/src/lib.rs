//! # ftbb-tree — the paper's problem-specific encoding and its algebra
//!
//! Implements the machinery of §5.3 of Iamnitchi & Foster (ICPP 2000):
//!
//! * [`Code`] — a subproblem encoded by its position in the B&B tree as a
//!   sequence of `⟨variable, branch⟩` decision pairs (Figure 1). Codes are
//!   self-contained: code + root instance data reconstructs the subproblem
//!   anywhere.
//! * [`CodeSet`] — a contracted set of completed codes: sibling codes merge
//!   into their parent, descendants of completed ancestors are dropped.
//!   This is both the *work-report compression* and, when contraction
//!   reaches the root code, the *termination detector* (§5.4).
//! * [`pick_recovery`] — failure recovery by complementing the completed
//!   set to find a subproblem nobody is known to have finished (§5.3.2).
//! * [`BasicTree`] — recorded, unpruned B&B trees with per-node bounds,
//!   costs and feasibility (§6.2), plus random generators and the calibrated
//!   workloads for every figure/table of the evaluation.

#![warn(missing_docs)]

pub mod basic_tree;
pub mod code;
pub mod codeset;
pub mod complement;
pub mod generator;
pub mod io;

pub use basic_tree::{BasicNode, BasicTree, NodeId, TreeStats};
pub use code::{Code, Pair, Var};
pub use codeset::{compress, compress_into, CodeSet, MergeOutcome};
pub use complement::{common_prefix_len, pick_recovery, RecoveryStrategy};
pub use generator::{calibrated, random_basic_tree, TreeConfig};
