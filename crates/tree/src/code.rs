//! The paper's problem encoding (§5.3.1).
//!
//! A subproblem is uniquely identified by its position in the B&B tree,
//! written as a sequence of pairs `⟨xᵢ, value⟩`: `xᵢ` is the condition
//! (branching) variable and `value ∈ {0, 1}` selects the left or right
//! branch. Variables are part of the code because different subtrees may
//! branch on different variables in different orders. Together with the
//! root instance data, a code is *self-contained*: it suffices to
//! reconstruct and re-solve the subproblem on any processor.
//!
//! ## Representation
//!
//! The paper's efficiency argument leans on codes being *tiny* — most
//! B&B subproblems live within a few dozen decisions of the root — so
//! the in-memory layout stores up to [`Code::INLINE_CAP`] decisions
//! inline in the struct: the variables in a `[Var; INLINE_CAP]` array
//! and the branch bits in one `u16` mask, 32 bytes total. Cloning a
//! shallow code is a single memcpy with no heap traffic; only codes
//! deeper than the cap spill to a heap `Vec<u32>` of packed
//! `var << 1 | bit` words. Equality, ordering, hashing, and the serde
//! wire encoding are all defined over the logical pair sequence and are
//! byte-identical to the previous `Vec<Pair>` representation (pinned by
//! equivalence proptests).

use serde::{DecodeError, Deserialize, Serialize};
use std::fmt;
use std::hash::{Hash, Hasher};

/// A condition (branching) variable identifier.
pub type Var = u16;

/// One decision `⟨var, bit⟩` on the path from the root.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pair {
    /// The condition variable branched upon.
    pub var: Var,
    /// `false` = left branch (0), `true` = right branch (1).
    pub bit: bool,
}

impl Pair {
    /// Pack into the in-memory word. `var` occupies the high bits so the
    /// packed `u32` order equals the `(var, bit)` lexicographic order.
    #[inline]
    fn pack(self) -> u32 {
        ((self.var as u32) << 1) | self.bit as u32
    }

    /// Unpack from the in-memory word.
    #[inline]
    fn unpack(word: u32) -> Pair {
        Pair {
            var: (word >> 1) as Var,
            bit: word & 1 == 1,
        }
    }
}

impl fmt::Debug for Pair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<x{},{}>", self.var, self.bit as u8)
    }
}

/// Decisions stored inline (no heap) up to this depth.
const INLINE_CAP: usize = 12;

/// Inline decisions: variables in an array, branch bits in one mask
/// (bit `i` = decision `i`'s branch; bits at or above `len` are zero).
/// Codes deeper than [`INLINE_CAP`] spill to a heap `Vec` of packed
/// `var << 1 | bit` words.
enum Repr {
    Inline {
        len: u8,
        bits: u16,
        vars: [Var; INLINE_CAP],
    },
    Spill(Vec<u32>),
}

/// A subproblem code: the path of decisions from the root. The root problem
/// has the empty code `()`.
pub struct Code {
    repr: Repr,
}

// Manual `Clone` (instead of the derive) so the in-cap arm — a plain
// 32-byte copy — inlines into downstream crates without LTO. This is
// the hottest single operation in the solver (every expansion clones
// the parent code twice).
impl Clone for Code {
    #[inline]
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Inline { len, bits, vars } => Code {
                repr: Repr::Inline {
                    len: *len,
                    bits: *bits,
                    vars: *vars,
                },
            },
            Repr::Spill(v) => Code {
                repr: Repr::Spill(v.clone()),
            },
        }
    }
}

impl Code {
    /// Maximum depth stored inline; deeper codes spill to the heap.
    pub const INLINE_CAP: usize = INLINE_CAP;

    /// The root problem's code, `()`.
    pub fn root() -> Self {
        Code {
            repr: Repr::Inline {
                len: 0,
                bits: 0,
                vars: [0; INLINE_CAP],
            },
        }
    }

    /// Build a code from decision pairs.
    pub fn from_pairs(pairs: Vec<Pair>) -> Self {
        pairs.into_iter().collect()
    }

    /// Convenience constructor from `(var, bit)` tuples.
    pub fn from_decisions(decisions: &[(Var, bool)]) -> Self {
        decisions
            .iter()
            .map(|&(var, bit)| Pair { var, bit })
            .collect()
    }

    /// Append one decision in place.
    fn push(&mut self, p: Pair) {
        match &mut self.repr {
            Repr::Inline { len, bits, vars } => {
                let n = *len as usize;
                if n < INLINE_CAP {
                    vars[n] = p.var;
                    *bits |= (p.bit as u16) << n;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(INLINE_CAP + 1);
                    for (i, var) in vars.iter().enumerate() {
                        v.push(((*var as u32) << 1) | ((*bits >> i) & 1) as u32);
                    }
                    v.push(p.pack());
                    self.repr = Repr::Spill(v);
                }
            }
            Repr::Spill(v) => v.push(p.pack()),
        }
    }

    /// Drop the final decision in place. Panics on the root.
    fn pop(&mut self) {
        match &mut self.repr {
            Repr::Inline { len, bits, vars } => {
                debug_assert!(*len > 0);
                *len -= 1;
                *bits &= (1u16 << *len) - 1;
                vars[*len as usize] = 0;
            }
            Repr::Spill(v) => {
                v.pop().expect("non-empty");
                if v.len() <= INLINE_CAP {
                    let mut vars = [0 as Var; INLINE_CAP];
                    let mut bits = 0u16;
                    for (i, &w) in v.iter().enumerate() {
                        vars[i] = (w >> 1) as Var;
                        bits |= ((w & 1) as u16) << i;
                    }
                    self.repr = Repr::Inline {
                        len: v.len() as u8,
                        bits,
                        vars,
                    };
                }
            }
        }
    }

    /// The decision pairs, root-first.
    pub fn pairs(&self) -> Pairs<'_> {
        Pairs {
            inner: self.pairs_kind(),
        }
    }

    /// The repr-specific pair iterator — lets crate-internal hot loops
    /// (the table walks) monomorphize per variant instead of branching
    /// on the representation at every step.
    #[inline]
    pub(crate) fn pairs_kind(&self) -> PairsKind<'_> {
        match &self.repr {
            Repr::Inline { len, bits, vars } => PairsKind::Inline(InlinePairs {
                vars: vars[..*len as usize].iter(),
                bits: *bits,
            }),
            Repr::Spill(v) => PairsKind::Spill(SpillPairs(v.iter())),
        }
    }

    /// The decision at `depth` (0 = the root's first branch), or `None`
    /// past the end.
    pub fn pair_at(&self, depth: usize) -> Option<Pair> {
        match &self.repr {
            Repr::Inline { len, bits, vars } => (depth < *len as usize).then(|| Pair {
                var: vars[depth],
                bit: (bits >> depth) & 1 == 1,
            }),
            Repr::Spill(v) => v.get(depth).copied().map(Pair::unpack),
        }
    }

    /// Is this the root code?
    #[inline]
    pub fn is_root(&self) -> bool {
        self.depth() == 0
    }

    /// Depth in the tree (number of decisions).
    #[inline]
    pub fn depth(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Spill(v) => v.len(),
        }
    }

    /// The code of the child obtained by branching on `var` with `bit`.
    pub fn child(&self, var: Var, bit: bool) -> Code {
        let mut code = self.clone();
        code.push(Pair { var, bit });
        code
    }

    /// The parent's code, or `None` for the root.
    pub fn parent(&self) -> Option<Code> {
        if self.is_root() {
            return None;
        }
        let mut code = self.clone();
        code.pop();
        Some(code)
    }

    /// The sibling's code (same parent, opposite final branch), or `None`
    /// for the root.
    pub fn sibling(&self) -> Option<Code> {
        if self.is_root() {
            return None;
        }
        let mut code = self.clone();
        match &mut code.repr {
            Repr::Inline { len, bits, .. } => *bits ^= 1 << (*len - 1),
            Repr::Spill(v) => *v.last_mut().expect("non-empty") ^= 1,
        }
        Some(code)
    }

    /// The final decision pair, or `None` for the root.
    pub fn last(&self) -> Option<Pair> {
        let d = self.depth();
        if d == 0 {
            None
        } else {
            self.pair_at(d - 1)
        }
    }

    /// Is `self` an ancestor of (a strict prefix of) `other`?
    pub fn is_ancestor_of(&self, other: &Code) -> bool {
        self.depth() < other.depth() && self.matches_prefix(other)
    }

    /// Is `self` an ancestor of or equal to `other`?
    pub fn is_prefix_of(&self, other: &Code) -> bool {
        self.depth() <= other.depth() && self.matches_prefix(other)
    }

    /// Do `other`'s first `self.depth()` pairs equal `self`'s? (Caller
    /// checks the depth relation.)
    fn matches_prefix(&self, other: &Code) -> bool {
        self.pairs().zip(other.pairs()).all(|(a, b)| a == b)
    }

    /// Are `self` and `other` siblings (same parent, opposite branch)?
    pub fn is_sibling_of(&self, other: &Code) -> bool {
        let n = self.depth();
        if n != other.depth() || n == 0 {
            return false;
        }
        let (a, b) = (self.last().unwrap(), other.last().unwrap());
        // Same parent path, same variable, opposite branch bit.
        a.var == b.var
            && a.bit != b.bit
            && self
                .pairs()
                .zip(other.pairs())
                .take(n - 1)
                .all(|(x, y)| x == y)
    }

    /// Size of this code on the wire, in bytes: each pair packs a 15-bit
    /// variable id and the branch bit into a `u16`, plus a 2-byte length
    /// header. This is the quantity the work-report compression of §5.3.2
    /// reduces.
    pub fn wire_size(&self) -> usize {
        2 + 2 * self.depth()
    }
}

/// Iterator over a code's decision pairs, root-first (see [`Code::pairs`]).
#[derive(Clone)]
pub struct Pairs<'a> {
    inner: PairsKind<'a>,
}

/// Repr-specific pair iterators (see [`Code::pairs_kind`]).
#[derive(Clone)]
pub(crate) enum PairsKind<'a> {
    Inline(InlinePairs<'a>),
    Spill(SpillPairs<'a>),
}

/// Pairs of an inline code: variable slice plus the shifting bit mask.
#[derive(Clone)]
pub(crate) struct InlinePairs<'a> {
    vars: std::slice::Iter<'a, Var>,
    bits: u16,
}

impl Iterator for InlinePairs<'_> {
    type Item = Pair;

    #[inline]
    fn next(&mut self) -> Option<Pair> {
        let var = *self.vars.next()?;
        let bit = self.bits & 1 == 1;
        self.bits >>= 1;
        Some(Pair { var, bit })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.vars.size_hint()
    }
}

impl ExactSizeIterator for InlinePairs<'_> {}

/// Pairs of a spilled code: packed `var << 1 | bit` words.
#[derive(Clone)]
pub(crate) struct SpillPairs<'a>(std::slice::Iter<'a, u32>);

impl Iterator for SpillPairs<'_> {
    type Item = Pair;

    #[inline]
    fn next(&mut self) -> Option<Pair> {
        self.0.next().copied().map(Pair::unpack)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl ExactSizeIterator for SpillPairs<'_> {}

impl Iterator for Pairs<'_> {
    type Item = Pair;

    #[inline]
    fn next(&mut self) -> Option<Pair> {
        match &mut self.inner {
            PairsKind::Inline(it) => it.next(),
            PairsKind::Spill(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            PairsKind::Inline(it) => it.size_hint(),
            PairsKind::Spill(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for Pairs<'_> {}

impl Default for Code {
    fn default() -> Self {
        Code::root()
    }
}

impl FromIterator<Pair> for Code {
    fn from_iter<I: IntoIterator<Item = Pair>>(iter: I) -> Self {
        let mut code = Code::root();
        for p in iter {
            code.push(p);
        }
        code
    }
}

impl PartialEq for Code {
    fn eq(&self, other: &Self) -> bool {
        // Representation is canonical (inline iff depth <= cap), so
        // variants compare directly; inline bits above `len` are zero.
        match (&self.repr, &other.repr) {
            (
                Repr::Inline { len, bits, vars },
                Repr::Inline {
                    len: l2,
                    bits: b2,
                    vars: v2,
                },
            ) => len == l2 && bits == b2 && vars[..*len as usize] == v2[..*l2 as usize],
            (Repr::Spill(a), Repr::Spill(b)) => a == b,
            _ => false,
        }
    }
}
impl Eq for Code {}

impl PartialOrd for Code {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Code {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Lexicographic over the pair sequence — exactly the derived
        // `Vec<Pair>` ordering.
        self.pairs().cmp(other.pairs())
    }
}

impl Hash for Code {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Mirror the derived `Vec<Pair>` hash: length prefix, then each
        // pair as (u16 var, u8 bit).
        state.write_usize(self.depth());
        for p in self.pairs() {
            p.hash(state);
        }
    }
}

impl Serialize for Code {
    fn ser(&self, out: &mut Vec<u8>) {
        // Byte-identical to the former derived encoding of
        // `struct Code { pairs: Vec<Pair> }`: u32 length prefix, then
        // each pair as (u16 var LE, u8 bit).
        (self.depth() as u32).ser(out);
        for p in self.pairs() {
            p.ser(out);
        }
    }
}

impl Deserialize for Code {
    fn de(r: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = u32::de(r)? as usize;
        let mut code = Code::root();
        for _ in 0..len {
            code.push(Pair::de(r)?);
        }
        Ok(code)
    }
}

impl fmt::Debug for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Code {
    /// Formats like the paper's Figure 1: `(<x1,0>,<x2,1>)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.pairs().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "<x{},{}>", p.var, p.bit as u8)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example of the paper's Figure 1.
    fn fig1_code() -> Code {
        Code::from_decisions(&[(1, false), (2, true), (5, false)])
    }

    /// A code of `depth` decisions on vars 1..=depth.
    fn deep_code(depth: u16) -> Code {
        let mut c = Code::root();
        for var in 1..=depth {
            c = c.child(var, var % 2 == 0);
        }
        c
    }

    #[test]
    fn root_properties() {
        let r = Code::root();
        assert!(r.is_root());
        assert_eq!(r.depth(), 0);
        assert_eq!(r.parent(), None);
        assert_eq!(r.sibling(), None);
        assert_eq!(r.last(), None);
        assert_eq!(format!("{r}"), "()");
        assert_eq!(r.wire_size(), 2);
    }

    #[test]
    fn figure_1_display() {
        assert_eq!(format!("{}", fig1_code()), "(<x1,0>,<x2,1>,<x5,0>)");
    }

    #[test]
    fn child_parent_sibling() {
        let c = fig1_code();
        let parent = Code::from_decisions(&[(1, false), (2, true)]);
        assert_eq!(c.parent(), Some(parent.clone()));
        assert_eq!(parent.child(5, false), c);
        let sib = Code::from_decisions(&[(1, false), (2, true), (5, true)]);
        assert_eq!(c.sibling(), Some(sib.clone()));
        assert!(c.is_sibling_of(&sib));
        assert!(sib.is_sibling_of(&c));
        assert_eq!(sib.sibling(), Some(c.clone()));
    }

    #[test]
    fn siblings_require_same_var() {
        // Same position, different variable: NOT siblings (different subtrees
        // may branch on different variables — paper §5.3.1).
        let a = Code::from_decisions(&[(1, false), (3, false)]);
        let b = Code::from_decisions(&[(1, false), (4, true)]);
        assert!(!a.is_sibling_of(&b));
    }

    #[test]
    fn ancestry() {
        let c = fig1_code();
        let anc = Code::from_decisions(&[(1, false)]);
        assert!(anc.is_ancestor_of(&c));
        assert!(Code::root().is_ancestor_of(&c));
        assert!(!c.is_ancestor_of(&anc));
        assert!(!c.is_ancestor_of(&c));
        assert!(c.is_prefix_of(&c));
        assert!(anc.is_prefix_of(&c));
        // Divergent path is not an ancestor.
        let other = Code::from_decisions(&[(1, true)]);
        assert!(!other.is_ancestor_of(&c));
    }

    #[test]
    fn wire_size_grows_with_depth() {
        // "The deeper the node in the tree, the larger the size of its code."
        let mut c = Code::root();
        let mut prev = c.wire_size();
        for d in 0..10 {
            c = c.child(d, d % 2 == 0);
            assert!(c.wire_size() > prev);
            prev = c.wire_size();
        }
        assert_eq!(c.wire_size(), 2 + 2 * 10);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Code::from_decisions(&[(1, false)]);
        let b = Code::from_decisions(&[(1, false), (2, false)]);
        let c = Code::from_decisions(&[(1, true)]);
        assert!(a < b && b < c);
    }

    #[test]
    fn spill_boundary_preserves_semantics() {
        // Walk a lineage across the inline cap: every depth must keep
        // child/parent/sibling/ancestry coherent, inline or spilled.
        let deep = deep_code(Code::INLINE_CAP as u16 + 4);
        let mut c = deep.clone();
        let mut depth = c.depth();
        while let Some(p) = c.parent() {
            assert_eq!(p.depth(), depth - 1);
            assert!(p.is_ancestor_of(&deep) || p == deep);
            assert_eq!(p.child(c.last().unwrap().var, c.last().unwrap().bit), c);
            let sib = c.sibling().unwrap();
            assert!(c.is_sibling_of(&sib));
            assert_eq!(sib.parent().unwrap(), p);
            c = p;
            depth -= 1;
        }
        assert!(c.is_root());
    }

    #[test]
    fn spilled_codes_round_trip_serde() {
        for depth in [0u16, 1, 11, 12, 13, 20] {
            let c = deep_code(depth);
            let bytes = serde::encode(&c);
            assert_eq!(bytes.len(), 4 + 3 * depth as usize);
            let back: Code = serde::decode(&bytes).expect("round trip");
            assert_eq!(back, c);
        }
    }
}
