//! The paper's problem encoding (§5.3.1).
//!
//! A subproblem is uniquely identified by its position in the B&B tree,
//! written as a sequence of pairs `⟨xᵢ, value⟩`: `xᵢ` is the condition
//! (branching) variable and `value ∈ {0, 1}` selects the left or right
//! branch. Variables are part of the code because different subtrees may
//! branch on different variables in different orders. Together with the
//! root instance data, a code is *self-contained*: it suffices to
//! reconstruct and re-solve the subproblem on any processor.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A condition (branching) variable identifier.
pub type Var = u16;

/// One decision `⟨var, bit⟩` on the path from the root.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pair {
    /// The condition variable branched upon.
    pub var: Var,
    /// `false` = left branch (0), `true` = right branch (1).
    pub bit: bool,
}

impl fmt::Debug for Pair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<x{},{}>", self.var, self.bit as u8)
    }
}

/// A subproblem code: the path of decisions from the root. The root problem
/// has the empty code `()`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Code {
    pairs: Vec<Pair>,
}

impl Code {
    /// The root problem's code, `()`.
    pub fn root() -> Self {
        Code { pairs: Vec::new() }
    }

    /// Build a code from decision pairs.
    pub fn from_pairs(pairs: Vec<Pair>) -> Self {
        Code { pairs }
    }

    /// Convenience constructor from `(var, bit)` tuples.
    pub fn from_decisions(decisions: &[(Var, bool)]) -> Self {
        Code {
            pairs: decisions
                .iter()
                .map(|&(var, bit)| Pair { var, bit })
                .collect(),
        }
    }

    /// The decision pairs, root-first.
    pub fn pairs(&self) -> &[Pair] {
        &self.pairs
    }

    /// Is this the root code?
    pub fn is_root(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Depth in the tree (number of decisions).
    pub fn depth(&self) -> usize {
        self.pairs.len()
    }

    /// The code of the child obtained by branching on `var` with `bit`.
    pub fn child(&self, var: Var, bit: bool) -> Code {
        let mut pairs = Vec::with_capacity(self.pairs.len() + 1);
        pairs.extend_from_slice(&self.pairs);
        pairs.push(Pair { var, bit });
        Code { pairs }
    }

    /// The parent's code, or `None` for the root.
    pub fn parent(&self) -> Option<Code> {
        if self.pairs.is_empty() {
            None
        } else {
            Some(Code {
                pairs: self.pairs[..self.pairs.len() - 1].to_vec(),
            })
        }
    }

    /// The sibling's code (same parent, opposite final branch), or `None`
    /// for the root.
    pub fn sibling(&self) -> Option<Code> {
        let last = *self.pairs.last()?;
        let mut pairs = self.pairs.clone();
        *pairs.last_mut().expect("non-empty") = Pair {
            var: last.var,
            bit: !last.bit,
        };
        Some(Code { pairs })
    }

    /// The final decision pair, or `None` for the root.
    pub fn last(&self) -> Option<Pair> {
        self.pairs.last().copied()
    }

    /// Is `self` an ancestor of (a strict prefix of) `other`?
    pub fn is_ancestor_of(&self, other: &Code) -> bool {
        self.pairs.len() < other.pairs.len() && other.pairs[..self.pairs.len()] == self.pairs[..]
    }

    /// Is `self` an ancestor of or equal to `other`?
    pub fn is_prefix_of(&self, other: &Code) -> bool {
        self.pairs.len() <= other.pairs.len() && other.pairs[..self.pairs.len()] == self.pairs[..]
    }

    /// Are `self` and `other` siblings (same parent, opposite branch)?
    pub fn is_sibling_of(&self, other: &Code) -> bool {
        if self.pairs.len() != other.pairs.len() || self.pairs.is_empty() {
            return false;
        }
        let n = self.pairs.len() - 1;
        self.pairs[..n] == other.pairs[..n]
            && self.pairs[n].var == other.pairs[n].var
            && self.pairs[n].bit != other.pairs[n].bit
    }

    /// Size of this code on the wire, in bytes: each pair packs a 15-bit
    /// variable id and the branch bit into a `u16`, plus a 2-byte length
    /// header. This is the quantity the work-report compression of §5.3.2
    /// reduces.
    pub fn wire_size(&self) -> usize {
        2 + 2 * self.pairs.len()
    }
}

impl fmt::Debug for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Code {
    /// Formats like the paper's Figure 1: `(<x1,0>,<x2,1>)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.pairs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "<x{},{}>", p.var, p.bit as u8)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example of the paper's Figure 1.
    fn fig1_code() -> Code {
        Code::from_decisions(&[(1, false), (2, true), (5, false)])
    }

    #[test]
    fn root_properties() {
        let r = Code::root();
        assert!(r.is_root());
        assert_eq!(r.depth(), 0);
        assert_eq!(r.parent(), None);
        assert_eq!(r.sibling(), None);
        assert_eq!(r.last(), None);
        assert_eq!(format!("{r}"), "()");
        assert_eq!(r.wire_size(), 2);
    }

    #[test]
    fn figure_1_display() {
        assert_eq!(format!("{}", fig1_code()), "(<x1,0>,<x2,1>,<x5,0>)");
    }

    #[test]
    fn child_parent_sibling() {
        let c = fig1_code();
        let parent = Code::from_decisions(&[(1, false), (2, true)]);
        assert_eq!(c.parent(), Some(parent.clone()));
        assert_eq!(parent.child(5, false), c);
        let sib = Code::from_decisions(&[(1, false), (2, true), (5, true)]);
        assert_eq!(c.sibling(), Some(sib.clone()));
        assert!(c.is_sibling_of(&sib));
        assert!(sib.is_sibling_of(&c));
        assert_eq!(sib.sibling(), Some(c.clone()));
    }

    #[test]
    fn siblings_require_same_var() {
        // Same position, different variable: NOT siblings (different subtrees
        // may branch on different variables — paper §5.3.1).
        let a = Code::from_decisions(&[(1, false), (3, false)]);
        let b = Code::from_decisions(&[(1, false), (4, true)]);
        assert!(!a.is_sibling_of(&b));
    }

    #[test]
    fn ancestry() {
        let c = fig1_code();
        let anc = Code::from_decisions(&[(1, false)]);
        assert!(anc.is_ancestor_of(&c));
        assert!(Code::root().is_ancestor_of(&c));
        assert!(!c.is_ancestor_of(&anc));
        assert!(!c.is_ancestor_of(&c));
        assert!(c.is_prefix_of(&c));
        assert!(anc.is_prefix_of(&c));
        // Divergent path is not an ancestor.
        let other = Code::from_decisions(&[(1, true)]);
        assert!(!other.is_ancestor_of(&c));
    }

    #[test]
    fn wire_size_grows_with_depth() {
        // "The deeper the node in the tree, the larger the size of its code."
        let mut c = Code::root();
        let mut prev = c.wire_size();
        for d in 0..10 {
            c = c.child(d, d % 2 == 0);
            assert!(c.wire_size() > prev);
            prev = c.wire_size();
        }
        assert_eq!(c.wire_size(), 2 + 2 * 10);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Code::from_decisions(&[(1, false)]);
        let b = Code::from_decisions(&[(1, false), (2, false)]);
        let c = Code::from_decisions(&[(1, true)]);
        assert!(a < b && b < c);
    }
}
