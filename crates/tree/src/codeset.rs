//! Contracting sets of completed subproblem codes (§5.3.2).
//!
//! Every process keeps a *table* of the completed problems it knows about.
//! The table is a trie over decision pairs with two rewrite rules applied
//! eagerly on insertion:
//!
//! 1. **Sibling contraction** — the codes of two completed siblings are
//!    replaced by their parent's code ("the completion of a parent node
//!    implies the completion of its children"), recursively.
//! 2. **Ancestor subsumption** — a code whose ancestor is already completed
//!    is redundant and dropped.
//!
//! Termination detection (§5.4) falls out for free: the computation is done
//! exactly when contraction produces the root code ([`CodeSet::is_root_done`]).

use crate::code::{Code, Pair, Var};
use serde::{Deserialize, Serialize};
use std::fmt;

#[derive(Debug, Clone, Default)]
struct TrieNode {
    /// Branching variable at this node, learned from inserted codes. `None`
    /// only for terminal (done) nodes and an untouched root.
    var: Option<Var>,
    /// Completed: the entire subtree below this position is finished.
    done: bool,
    /// Children, indexed by branch bit.
    kids: [Option<Box<TrieNode>>; 2],
}

impl TrieNode {
    fn count_nodes(&self) -> usize {
        1 + self
            .kids
            .iter()
            .flatten()
            .map(|k| k.count_nodes())
            .sum::<usize>()
    }
}

/// Outcome of merging codes into a [`CodeSet`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Codes that added new information.
    pub inserted: usize,
    /// Codes already covered by the table (redundant gossip).
    pub already_known: usize,
    /// Number of sibling contractions triggered.
    pub contractions: usize,
}

impl MergeOutcome {
    /// Total codes processed.
    pub fn processed(&self) -> usize {
        self.inserted + self.already_known
    }

    fn absorb(&mut self, other: MergeOutcome) {
        self.inserted += other.inserted;
        self.already_known += other.already_known;
        self.contractions += other.contractions;
    }
}

/// A set of completed codes, kept contracted at all times.
#[derive(Clone, Default, Serialize, Deserialize)]
#[serde(into = "Vec<Code>", from = "Vec<Code>")]
pub struct CodeSet {
    root: TrieNode,
    /// Live trie nodes (for storage accounting).
    node_count: usize,
    /// Lifetime counters.
    total_inserts: u64,
    total_contractions: u64,
}

impl CodeSet {
    /// An empty table.
    pub fn new() -> Self {
        CodeSet {
            root: TrieNode::default(),
            node_count: 1,
            total_inserts: 0,
            total_contractions: 0,
        }
    }

    /// Is the whole tree completed? (The termination condition, §5.4.)
    pub fn is_root_done(&self) -> bool {
        self.root.done
    }

    /// Is `code`'s subtree known completed (directly or via an ancestor)?
    pub fn contains(&self, code: &Code) -> bool {
        let mut node = &self.root;
        if node.done {
            return true;
        }
        for p in code.pairs() {
            match &node.kids[p.bit as usize] {
                Some(k) => {
                    node = k;
                    if node.done {
                        return true;
                    }
                }
                None => return false,
            }
        }
        node.done
    }

    /// Insert one completed code. Returns the merge outcome for this code.
    pub fn insert(&mut self, code: &Code) -> MergeOutcome {
        let mut out = MergeOutcome::default();
        let mut created = 0usize;
        let mut freed = 0usize;
        let newly = Self::insert_rec(
            &mut self.root,
            code.pairs(),
            &mut out,
            &mut created,
            &mut freed,
        );
        let _ = newly;
        self.node_count += created;
        self.node_count -= freed;
        self.total_inserts += 1;
        self.total_contractions += out.contractions as u64;
        if out.inserted == 0 && out.already_known == 0 {
            // The code reached its slot and marked it done.
            out.inserted = 1;
        }
        out
    }

    /// Returns true if `node` *newly* became done during this insertion.
    fn insert_rec(
        node: &mut TrieNode,
        pairs: &[Pair],
        out: &mut MergeOutcome,
        created: &mut usize,
        freed: &mut usize,
    ) -> bool {
        if node.done {
            out.already_known = 1;
            return false;
        }
        match pairs.split_first() {
            None => {
                node.done = true;
                for kid in &mut node.kids {
                    if let Some(k) = kid.take() {
                        *freed += k.count_nodes();
                    }
                }
                node.var = None;
                true
            }
            Some((p, rest)) => {
                match node.var {
                    None => node.var = Some(p.var),
                    Some(v) => debug_assert_eq!(
                        v, p.var,
                        "inconsistent branching variable in code set (corrupt code?)"
                    ),
                }
                let idx = p.bit as usize;
                if node.kids[idx].is_none() {
                    node.kids[idx] = Some(Box::new(TrieNode::default()));
                    *created += 1;
                }
                let child_newly_done = Self::insert_rec(
                    node.kids[idx].as_mut().expect("just ensured"),
                    rest,
                    out,
                    created,
                    freed,
                );
                if child_newly_done {
                    let both_done = node.kids.iter().all(|k| k.as_ref().is_some_and(|n| n.done));
                    if both_done {
                        // Sibling contraction: replace the pair by the parent.
                        for kid in &mut node.kids {
                            if let Some(k) = kid.take() {
                                *freed += k.count_nodes();
                            }
                        }
                        node.done = true;
                        node.var = None;
                        out.contractions += 1;
                        return true;
                    }
                }
                false
            }
        }
    }

    /// Merge many codes (e.g. a received work report). Returns the combined
    /// outcome; `contractions` is the total contraction work performed, used
    /// by the simulator to charge list-contraction time.
    pub fn merge<'a>(&mut self, codes: impl IntoIterator<Item = &'a Code>) -> MergeOutcome {
        let mut total = MergeOutcome::default();
        for c in codes {
            total.absorb(self.insert(c));
        }
        total
    }

    /// Merge another set (by its minimal codes).
    pub fn merge_set(&mut self, other: &CodeSet) -> MergeOutcome {
        let codes = other.minimal_codes();
        self.merge(codes.iter())
    }

    /// The minimal (contracted) codes covering everything completed: done
    /// nodes are maximal by construction.
    pub fn minimal_codes(&self) -> Vec<Code> {
        let mut out = Vec::new();
        let mut path: Vec<Pair> = Vec::new();
        Self::collect_done(&self.root, &mut path, &mut out);
        out
    }

    fn collect_done(node: &TrieNode, path: &mut Vec<Pair>, out: &mut Vec<Code>) {
        if node.done {
            out.push(Code::from_pairs(path.clone()));
            return;
        }
        let Some(var) = node.var else { return };
        for bit in [false, true] {
            if let Some(kid) = &node.kids[bit as usize] {
                path.push(Pair { var, bit });
                Self::collect_done(kid, path, out);
                path.pop();
            }
        }
    }

    /// The minimal codes covering the *uncompleted* space — the complement
    /// used by failure recovery (§5.3.2). Empty iff the root is done. If the
    /// table is empty, the complement is the root code itself.
    pub fn complement(&self) -> Vec<Code> {
        if self.root.done {
            return Vec::new();
        }
        if self.root.var.is_none() {
            return vec![Code::root()];
        }
        let mut out = Vec::new();
        let mut path: Vec<Pair> = Vec::new();
        Self::collect_complement(&self.root, &mut path, &mut out);
        out
    }

    fn collect_complement(node: &TrieNode, path: &mut Vec<Pair>, out: &mut Vec<Code>) {
        debug_assert!(!node.done);
        let var = node
            .var
            .expect("non-done interior trie node always has a branching variable");
        for bit in [false, true] {
            match &node.kids[bit as usize] {
                None => {
                    // This whole branch is unknown territory.
                    path.push(Pair { var, bit });
                    out.push(Code::from_pairs(path.clone()));
                    path.pop();
                }
                Some(kid) if kid.done => {}
                Some(kid) => {
                    path.push(Pair { var, bit });
                    Self::collect_complement(kid, path, out);
                    path.pop();
                }
            }
        }
    }

    /// Number of live trie nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Approximate resident memory of the table, in bytes (the paper's
    /// storage-space metric).
    pub fn memory_bytes(&self) -> usize {
        self.node_count * std::mem::size_of::<TrieNode>()
    }

    /// Bytes needed to ship the whole table in a message (table gossip).
    pub fn wire_size(&self) -> usize {
        2 + self
            .minimal_codes()
            .iter()
            .map(|c| c.wire_size())
            .sum::<usize>()
    }

    /// Lifetime number of insert operations.
    pub fn total_inserts(&self) -> u64 {
        self.total_inserts
    }

    /// Lifetime number of contractions performed.
    pub fn total_contractions(&self) -> u64 {
        self.total_contractions
    }

    /// True when nothing has been completed yet.
    pub fn is_empty(&self) -> bool {
        !self.root.done && self.root.var.is_none()
    }
}

impl PartialEq for CodeSet {
    fn eq(&self, other: &Self) -> bool {
        self.minimal_codes() == other.minimal_codes()
    }
}
impl Eq for CodeSet {}

impl fmt::Debug for CodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.minimal_codes()).finish()
    }
}

impl From<Vec<Code>> for CodeSet {
    fn from(codes: Vec<Code>) -> Self {
        let mut s = CodeSet::new();
        s.merge(codes.iter());
        s
    }
}

impl From<CodeSet> for Vec<Code> {
    fn from(s: CodeSet) -> Vec<Code> {
        s.minimal_codes()
    }
}

/// Compress a list of completed codes into its minimal contracted form —
/// the work-report compression of §5.3.2.
pub fn compress(codes: &[Code]) -> Vec<Code> {
    let mut s = CodeSet::new();
    s.merge(codes.iter());
    s.minimal_codes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(dec: &[(Var, bool)]) -> Code {
        Code::from_decisions(dec)
    }

    #[test]
    fn empty_set() {
        let s = CodeSet::new();
        assert!(s.is_empty());
        assert!(!s.is_root_done());
        assert!(s.minimal_codes().is_empty());
        assert_eq!(s.complement(), vec![Code::root()]);
        assert!(!s.contains(&c(&[(1, false)])));
        assert_eq!(s.node_count(), 1);
    }

    #[test]
    fn single_insert() {
        let mut s = CodeSet::new();
        let code = c(&[(1, false), (2, true)]);
        let out = s.insert(&code);
        assert_eq!(out.inserted, 1);
        assert_eq!(out.contractions, 0);
        assert!(s.contains(&code));
        assert!(!s.contains(&c(&[(1, false)])));
        // Descendants of a completed code are contained.
        assert!(s.contains(&c(&[(1, false), (2, true), (7, false)])));
        assert_eq!(s.minimal_codes(), vec![code]);
    }

    #[test]
    fn sibling_contraction() {
        let mut s = CodeSet::new();
        s.insert(&c(&[(1, false), (2, false)]));
        let out = s.insert(&c(&[(1, false), (2, true)]));
        assert_eq!(out.contractions, 1);
        // The pair contracted to the parent.
        assert_eq!(s.minimal_codes(), vec![c(&[(1, false)])]);
        assert!(s.contains(&c(&[(1, false)])));
    }

    #[test]
    fn recursive_contraction_to_root() {
        // Figure 1's tree: completing all four leaves contracts to the root.
        let mut s = CodeSet::new();
        s.insert(&c(&[(1, false), (2, false)]));
        s.insert(&c(&[(1, false), (2, true)]));
        assert!(!s.is_root_done());
        s.insert(&c(&[(1, true), (3, true)]));
        let out = s.insert(&c(&[(1, true), (3, false)]));
        // Contracts x3-pair -> (x1,1), then x1-pair -> root.
        assert_eq!(out.contractions, 2);
        assert!(s.is_root_done());
        assert_eq!(s.minimal_codes(), vec![Code::root()]);
        assert!(s.complement().is_empty());
        // Everything is contained now.
        assert!(s.contains(&c(&[(9, true), (4, false)])));
        // Root-done table is a single node.
        assert_eq!(s.node_count(), 1);
    }

    #[test]
    fn ancestor_subsumes_descendant() {
        let mut s = CodeSet::new();
        s.insert(&c(&[(1, false)]));
        let out = s.insert(&c(&[(1, false), (2, true)]));
        assert_eq!(out.already_known, 1);
        assert_eq!(out.inserted, 0);
        assert_eq!(s.minimal_codes(), vec![c(&[(1, false)])]);
    }

    #[test]
    fn descendants_deleted_when_ancestor_inserted() {
        let mut s = CodeSet::new();
        s.insert(&c(&[(1, false), (2, true), (5, false)]));
        s.insert(&c(&[(1, false), (2, false)]));
        let before = s.node_count();
        // Now complete (x1,0) directly: both deep entries become redundant.
        s.insert(&c(&[(1, false)]));
        assert_eq!(s.minimal_codes(), vec![c(&[(1, false)])]);
        assert!(s.node_count() < before);
    }

    #[test]
    fn complement_of_partial_table() {
        let mut s = CodeSet::new();
        s.insert(&c(&[(1, false), (2, true)]));
        let comp = s.complement();
        // Uncovered: (x1,0)(x2,0) and (x1,1).
        assert!(comp.contains(&c(&[(1, false), (2, false)])));
        assert!(comp.contains(&c(&[(1, true)])));
        assert_eq!(comp.len(), 2);
        // Complement and table are disjoint and cover everything:
        for code in &comp {
            assert!(!s.contains(code));
        }
    }

    #[test]
    fn complement_then_complete_closes_root() {
        let mut s = CodeSet::new();
        s.insert(&c(&[(1, false), (2, true), (5, false)]));
        s.insert(&c(&[(1, true)]));
        for code in s.complement() {
            s.insert(&code);
        }
        assert!(s.is_root_done());
    }

    #[test]
    fn compress_matches_paper_example() {
        // Reports containing both children of (x1,0) plus a deep redundant
        // descendant compress to just (x1,0).
        let raw = vec![
            c(&[(1, false), (2, false)]),
            c(&[(1, false), (2, true), (5, false)]),
            c(&[(1, false), (2, true), (5, true)]),
        ];
        assert_eq!(compress(&raw), vec![c(&[(1, false)])]);
    }

    #[test]
    fn merge_outcome_counts() {
        let mut s = CodeSet::new();
        let batch = [
            c(&[(1, false), (2, false)]),
            c(&[(1, false), (2, true)]),
            c(&[(1, false)]), // redundant after contraction of the first two
        ];
        let out = s.merge(batch.iter());
        assert_eq!(out.already_known, 1);
        assert_eq!(out.inserted, 2);
        assert_eq!(out.contractions, 1);
        assert_eq!(out.processed(), 3);
    }

    #[test]
    fn serde_round_trip_preserves_semantics() {
        let mut s = CodeSet::new();
        s.insert(&c(&[(1, false), (2, true)]));
        s.insert(&c(&[(1, true), (3, false)]));
        let codes: Vec<Code> = s.clone().into();
        let rebuilt = CodeSet::from(codes);
        assert_eq!(s, rebuilt);
    }

    #[test]
    fn wire_size_shrinks_with_contraction() {
        let mut uncompressed = 0usize;
        let mut s = CodeSet::new();
        for bits in [(false, false), (false, true), (true, false), (true, true)] {
            let code = c(&[(1, bits.0), (2, bits.1)]);
            uncompressed += code.wire_size();
            s.insert(&code);
        }
        // Contracted to root: one empty code.
        assert!(s.wire_size() < uncompressed);
        assert_eq!(s.minimal_codes(), vec![Code::root()]);
    }

    #[test]
    fn double_insert_counts_known() {
        let mut s = CodeSet::new();
        let code = c(&[(4, true)]);
        s.insert(&code);
        let out = s.insert(&code);
        assert_eq!(out.already_known, 1);
        assert_eq!(out.inserted, 0);
    }
}
