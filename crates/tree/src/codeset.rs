//! Contracting sets of completed subproblem codes (§5.3.2).
//!
//! Every process keeps a *table* of the completed problems it knows about.
//! The table is a trie over decision pairs with two rewrite rules applied
//! eagerly on insertion:
//!
//! 1. **Sibling contraction** — the codes of two completed siblings are
//!    replaced by their parent's code ("the completion of a parent node
//!    implies the completion of its children"), recursively.
//! 2. **Ancestor subsumption** — a code whose ancestor is already completed
//!    is redundant and dropped.
//!
//! Termination detection (§5.4) falls out for free: the computation is done
//! exactly when contraction produces the root code ([`CodeSet::is_root_done`]).
//!
//! ## Arena layout
//!
//! The trie lives in a flat arena of node *words*, one per node, instead
//! of per-node `Box` allocations. A node's entire hot state is its word:
//! [`EMPTY`] (unexplored branch), [`DONE`] (completed subtree), or the
//! base index of its child pair — the two children are allocated
//! together as adjacent slots, the child for branch bit `b` at
//! `base + b`. Branching variables live in a parallel array (`vars[i]`,
//! valid iff word `i` holds a pair base) that only the cold walks
//! (minimal codes, complement) and debug assertions read. That buys
//! three things:
//!
//! - the descent in `contains`/`insert` is one dependent word load and
//!   one compare per level — the word *is* the next index;
//! - siblings always share a cache line, so the contraction check
//!   (both children done?) and the complement walk pay for one line;
//! - the hot data is small enough to live in cache while reports and
//!   gossip stream through it.
//!
//! The word width adapts to the table: arenas start with `u16` words
//! (a 20k-node table is ~40 KiB of hot data — L1-resident) and migrate
//! once, in place, to `u32` words if the table ever needs more than
//! 64Ki slots ([`Arena`] is generic over the width; indices are
//! preserved by the migration). A pair may have only one real child;
//! the unused slot stays [`EMPTY`] and reads as an absent branch
//! everywhere. The hot operations are pure index walks over contiguous
//! memory — `contains` on the grant path and `insert`/`merge` on the
//! report/gossip path never allocate per node. Pairs vacated by
//! contraction or subsumption go onto a free list (of pair bases) and
//! are reused by later inserts, so a long-running table recycles its
//! own storage; [`CodeSet::memory_bytes`] reports the real arena
//! footprint (capacity, not just live slots). Insertion is iterative:
//! the descent records the walked path, contraction walks it back
//! upward — no recursion, no per-insert allocation once the scratch is
//! warm — and the recorded walk persists between inserts so the next
//! code fast-forwards over the prefix it shares with the previous one
//! using plain pair compares instead of arena loads (reports arrive in
//! depth-first bursts from a finished subtree, so consecutive codes
//! typically diverge only near the leaf). Producers that run per report
//! flush have `_into` variants ([`CodeSet::minimal_codes_into`],
//! [`CodeSet::complement_into`], [`compress_into`]) that write into
//! caller-owned buffers instead of allocating fresh `Vec<Code>`s.

use crate::code::{Code, Pair, PairsKind, Var};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Node word: an unexplored branch (and the unused half of a pair
/// whose sibling carries the real child) — reads as absent everywhere.
const EMPTY: u32 = 0;
/// Node word: the entire subtree below this position is completed.
const DONE: u32 = 1;
/// The root's arena slot; never freed.
const ROOT: u32 = 0;
/// Lowest valid pair base: slot 0 is the root and slot 1 a permanent
/// pad, so no base ever collides with the [`EMPTY`]/[`DONE`] sentinels
/// and any word `>= FIRST_BASE` is a child-pair base.
const FIRST_BASE: u32 = 2;

/// A storage width for arena node words. The arena starts narrow
/// (`u16`) and widens to `u32` when it outgrows [`ArenaWord::LIMIT`].
trait ArenaWord: Copy {
    /// Maximum slot count this width can address.
    const LIMIT: usize;
    fn of(v: u32) -> Self;
    fn get(self) -> u32;
}

impl ArenaWord for u16 {
    const LIMIT: usize = u16::MAX as usize;
    #[inline]
    fn of(v: u32) -> u16 {
        debug_assert!(v <= u16::MAX as u32);
        v as u16
    }
    #[inline]
    fn get(self) -> u32 {
        self as u32
    }
}

impl ArenaWord for u32 {
    const LIMIT: usize = u32::MAX as usize;
    #[inline]
    fn of(v: u32) -> u32 {
        v
    }
    #[inline]
    fn get(self) -> u32 {
        self
    }
}

/// Outcome of merging codes into a [`CodeSet`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Codes that added new information.
    pub inserted: usize,
    /// Codes already covered by the table (redundant gossip).
    pub already_known: usize,
    /// Number of sibling contractions triggered.
    pub contractions: usize,
}

impl MergeOutcome {
    /// Total codes processed.
    pub fn processed(&self) -> usize {
        self.inserted + self.already_known
    }

    fn absorb(&mut self, other: MergeOutcome) {
        self.inserted += other.inserted;
        self.already_known += other.already_known;
        self.contractions += other.contractions;
    }
}

/// The flat trie storage at one word width; all structural operations
/// live here, generic over the width, so the narrow and wide arenas
/// share one implementation.
#[derive(Clone)]
struct Arena<W> {
    /// The arena of node words; slot [`ROOT`] is the root, slot 1 a
    /// pad, child pairs follow.
    nodes: Vec<W>,
    /// Branching variable per slot, parallel to `nodes`; `vars[i]` is
    /// valid iff word `i` holds a pair base. Read only by cold walks.
    vars: Vec<Var>,
    /// Vacated pair bases awaiting reuse.
    free: Vec<u32>,
    /// Live arena slots (for storage accounting).
    node_count: usize,
    /// The previous insert's still-valid walk: `path[i]` is the
    /// interior node at depth `i` and `prev_pairs[i]` the decision
    /// taken there. Consecutive inserts (a worker reporting a subtree
    /// it finished depth-first) share long prefixes; the next insert
    /// fast-forwards over the match with plain pair compares — no
    /// arena loads — and resumes the descent at the divergence point.
    /// Contraction pops entries it retires, so the recorded walk never
    /// names a freed node.
    path: Vec<u32>,
    prev_pairs: Vec<Pair>,
    /// Reusable stack for iterative subtree frees.
    free_stack: Vec<u32>,
}

impl<W: ArenaWord> Arena<W> {
    fn new() -> Self {
        Arena {
            nodes: vec![W::of(EMPTY); FIRST_BASE as usize],
            vars: vec![0; FIRST_BASE as usize],
            free: Vec::new(),
            node_count: 1,
            path: Vec::new(),
            prev_pairs: Vec::new(),
            free_stack: Vec::new(),
        }
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.nodes.resize(FIRST_BASE as usize, W::of(EMPTY));
        self.vars.clear();
        self.vars.resize(FIRST_BASE as usize, 0);
        self.free.clear();
        self.node_count = 1;
        // The recorded walk points into the dropped structure.
        self.path.clear();
        self.prev_pairs.clear();
    }

    #[inline]
    fn word(&self, idx: u32) -> u32 {
        debug_assert!((idx as usize) < self.nodes.len());
        // SAFETY: arena indices are only minted by `alloc_pair` (always
        // below `nodes.len()`), the arena never shrinks while indices
        // are live (`clear` drops all of them together), and every
        // caller tests for the sentinels before descending. Skipping
        // the bounds check keeps the descent — a chain of dependent
        // loads — free of per-level check uops; the debug assertion
        // keeps the invariant enforced under `cargo test`.
        unsafe { self.nodes.get_unchecked(idx as usize).get() }
    }

    #[inline]
    fn set_word(&mut self, idx: u32, w: u32) {
        debug_assert!((idx as usize) < self.nodes.len());
        // SAFETY: as in `word` above.
        unsafe { *self.nodes.get_unchecked_mut(idx as usize) = W::of(w) }
    }

    #[inline]
    fn set_var_at(&mut self, idx: u32, var: Var) {
        debug_assert!((idx as usize) < self.vars.len());
        // SAFETY: `vars` always has the same length as `nodes`.
        unsafe { *self.vars.get_unchecked_mut(idx as usize) = var }
    }

    /// Take a child pair from the free list or grow the arena by two
    /// adjacent slots; returns the pair's base index. The caller
    /// guarantees the arena stays within `W::LIMIT` (the width upgrade
    /// in [`CodeSet::insert`] runs before any walk starts).
    fn alloc_pair(&mut self) -> u32 {
        self.node_count += 2;
        match self.free.pop() {
            Some(base) => {
                self.nodes[base as usize] = W::of(EMPTY);
                self.nodes[base as usize + 1] = W::of(EMPTY);
                base
            }
            None => {
                let base = self.nodes.len() as u32;
                debug_assert!(self.nodes.len() + 2 <= W::LIMIT);
                // One growth check for both slots of the pair.
                self.nodes.extend_from_slice(&[W::of(EMPTY), W::of(EMPTY)]);
                self.vars.extend_from_slice(&[0, 0]);
                base
            }
        }
    }

    /// Return one child pair to the free list.
    #[inline]
    fn free_pair(&mut self, base: u32) {
        self.free.push(base);
        self.node_count -= 2;
    }

    /// Return the pair at `base` and every pair below it to the free list.
    fn free_subtree(&mut self, base: u32) {
        let mut stack = std::mem::take(&mut self.free_stack);
        debug_assert!(stack.is_empty());
        stack.push(base);
        while let Some(b) = stack.pop() {
            for slot in [b, b + 1] {
                let w = self.word(slot);
                if w >= FIRST_BASE {
                    stack.push(w);
                }
            }
            self.free.push(b);
            self.node_count -= 2;
        }
        self.free_stack = stack;
    }

    #[inline]
    fn contains_walk(&self, pairs: impl Iterator<Item = Pair>) -> bool {
        // One word load and one compare per level: the node word either
        // is a sentinel — answering for both "unknown branch"
        // ([`EMPTY`]) and "covered by ancestor" ([`DONE`]) — or *is*
        // the base of the next level's pair.
        let mut w = self.word(ROOT);
        for p in pairs {
            if w < FIRST_BASE {
                return w == DONE;
            }
            w = self.word(w + p.bit as u32);
        }
        w == DONE
    }

    fn insert_walk(&mut self, mut pairs: impl Iterator<Item = Pair>) -> MergeOutcome {
        let mut out = MergeOutcome::default();
        debug_assert_eq!(self.path.len(), self.prev_pairs.len());

        // Fast-forward over the prefix shared with the previous insert:
        // matching levels cost one pair compare each — no arena loads,
        // no dependent-load chain. Reports arrive in depth-first bursts
        // from a finished subtree, so consecutive codes typically agree
        // on all but the last level or two.
        let mut level = 0usize;
        let mut pending: Option<Pair> = None;
        for p in pairs.by_ref() {
            if level < self.path.len() && self.prev_pairs[level] == p {
                level += 1;
            } else {
                pending = Some(p);
                break;
            }
        }
        self.path.truncate(level);
        self.prev_pairs.truncate(level);
        // Resume at the node the recorded walk reached below the match:
        // the child of the last matched interior (the root if nothing
        // matched). Entries never name freed nodes — contraction pops
        // what it retires — so the one load here is into live structure.
        let mut idx = match level {
            0 => ROOT,
            _ => {
                let parent = self.path[level - 1];
                let base = self.word(parent);
                debug_assert!(base >= FIRST_BASE, "recorded walk entries stay interior");
                base + self.prev_pairs[level - 1].bit as u32
            }
        };

        // Descend the existing structure — one word load per level;
        // interior nodes already carry their variable, so nothing is
        // written until the walk leaves known territory. An empty slot
        // reads as an absent branch and turns into the head of the
        // fresh chain. Each level extends the recorded walk for the
        // contraction walk-back and the next insert's fast-forward.
        let mut covered = false;
        let mut leave_at = None;
        loop {
            let w = self.word(idx);
            if w < FIRST_BASE {
                // Off the hot interior loop: completed ancestor, or the
                // frontier where the fresh chain starts.
                if w == DONE {
                    covered = true;
                } else {
                    leave_at = pending.take().or_else(|| pairs.next());
                }
                break;
            }
            let Some(p) = pending.take().or_else(|| pairs.next()) else {
                // The target itself: an interior node about to be
                // completed (its subtree gets freed below).
                break;
            };
            debug_assert!(
                self.vars[idx as usize] == p.var,
                "inconsistent branching variable in code set (corrupt code?)"
            );
            self.path.push(idx);
            self.prev_pairs.push(p);
            idx = w + p.bit as u32;
        }

        if let (false, Some(first)) = (covered, leave_at) {
            // Grow a fresh chain for the remaining suffix. A fresh
            // pair's unused slot is empty (not done), so fresh levels
            // can never contract — the walk-back below sees the empty
            // sibling and stops — but they do join the recorded walk so
            // the next insert can resume deep inside the new subtree.
            let mut p = first;
            loop {
                self.path.push(idx);
                self.prev_pairs.push(p);
                let base = self.alloc_pair();
                self.set_word(idx, base);
                self.set_var_at(idx, p.var);
                idx = base + p.bit as u32;
                match pairs.next() {
                    Some(next) => p = next,
                    None => break,
                }
            }
        }

        if covered {
            // An ancestor (or the slot itself) is already done: redundant.
            out.already_known = 1;
        } else {
            // Mark the slot done, dropping any now-subsumed subtree.
            let w = self.word(idx);
            if w >= FIRST_BASE {
                self.free_subtree(w);
            }
            self.set_word(idx, DONE);
            out.inserted = 1;

            // Sibling contraction, walking the recorded path upward.
            // The pair's two slots are adjacent: one cache line checks
            // both children. Entries are popped only when actually
            // contracted, so the surviving walk stays valid for the
            // next insert's fast-forward.
            while let Some(&parent) = self.path.last() {
                let base = self.word(parent);
                debug_assert!(base >= FIRST_BASE, "path entries always have children");
                if self.word(base) != DONE || self.word(base + 1) != DONE {
                    break;
                }
                self.path.pop();
                // Done nodes have no children: freeing the pair is O(1).
                self.free_pair(base);
                self.set_word(parent, DONE);
                out.contractions += 1;
            }
            self.prev_pairs.truncate(self.path.len());
        }

        out
    }

    fn collect_done(&self, idx: u32, path: &mut Vec<Pair>, out: &mut Vec<Code>) {
        let w = self.word(idx);
        if w == DONE {
            out.push(path.iter().copied().collect());
            return;
        }
        if w == EMPTY {
            return;
        }
        let var = self.vars[idx as usize];
        for bit in [false, true] {
            let kid = w + bit as u32;
            if self.word(kid) != EMPTY {
                path.push(Pair { var, bit });
                self.collect_done(kid, path, out);
                path.pop();
            }
        }
    }

    fn collect_complement(&self, idx: u32, path: &mut Vec<Pair>, out: &mut Vec<Code>) {
        let w = self.word(idx);
        debug_assert!(
            w >= FIRST_BASE,
            "complement only recurses into interior nodes"
        );
        let var = self.vars[idx as usize];
        for bit in [false, true] {
            let kid = w + bit as u32;
            match self.word(kid) {
                EMPTY => {
                    // This whole branch is unknown territory.
                    path.push(Pair { var, bit });
                    out.push(path.iter().copied().collect());
                    path.pop();
                }
                DONE => {}
                _ => {
                    path.push(Pair { var, bit });
                    self.collect_complement(kid, path, out);
                    path.pop();
                }
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<W>()
            + self.vars.capacity() * std::mem::size_of::<Var>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }
}

/// The two arena widths a table can be in. Tables start narrow and
/// widen once, permanently, if they outgrow `u16` indexing.
#[derive(Clone)]
enum Storage {
    Narrow(Arena<u16>),
    Wide(Arena<u32>),
}

/// Dispatch a body over whichever width the arena currently has.
macro_rules! on_arena {
    ($storage:expr, $a:ident => $body:expr) => {
        match $storage {
            Storage::Narrow($a) => $body,
            Storage::Wide($a) => $body,
        }
    };
}

/// A set of completed codes, kept contracted at all times.
#[derive(Clone, Serialize, Deserialize)]
#[serde(into = "Vec<Code>", from = "Vec<Code>")]
pub struct CodeSet {
    storage: Storage,
    /// Lifetime counters.
    total_inserts: u64,
    total_contractions: u64,
}

impl Default for CodeSet {
    fn default() -> Self {
        CodeSet::new()
    }
}

impl CodeSet {
    /// An empty table.
    pub fn new() -> Self {
        CodeSet {
            storage: Storage::Narrow(Arena::new()),
            total_inserts: 0,
            total_contractions: 0,
        }
    }

    /// Reset to an empty table, retaining the arena's capacity (and
    /// width) — for reusable compression scratch sets.
    pub fn clear(&mut self) {
        on_arena!(&mut self.storage, a => a.clear());
        self.total_inserts = 0;
        self.total_contractions = 0;
    }

    /// Is the whole tree completed? (The termination condition, §5.4.)
    pub fn is_root_done(&self) -> bool {
        on_arena!(&self.storage, a => a.word(ROOT) == DONE)
    }

    /// Is `code`'s subtree known completed (directly or via an ancestor)?
    #[inline]
    pub fn contains(&self, code: &Code) -> bool {
        on_arena!(&self.storage, a => {
            // A sentinel root answers for every code without a walk:
            // the common end-game state (root done) makes the grant
            // path's containment probe a single load.
            let w = a.word(ROOT);
            if w < FIRST_BASE {
                return w == DONE;
            }
            match code.pairs_kind() {
                PairsKind::Inline(it) => a.contains_walk(it),
                PairsKind::Spill(it) => a.contains_walk(it),
            }
        })
    }

    /// Insert one completed code. Returns the merge outcome for this code.
    #[inline]
    pub fn insert(&mut self, code: &Code) -> MergeOutcome {
        self.total_inserts += 1;

        // Widen the arena up front if this insert could outgrow `u16`
        // indexing (worst case: one fresh pair per decision). Indices
        // are preserved, so the walk below is width-agnostic.
        if let Storage::Narrow(a) = &self.storage {
            if a.free.len() < code.depth()
                && a.nodes.len() + 2 * (code.depth() - a.free.len()) > <u16 as ArenaWord>::LIMIT
            {
                self.widen();
            }
        }

        let out = on_arena!(&mut self.storage, a => match code.pairs_kind() {
            PairsKind::Inline(it) => a.insert_walk(it),
            PairsKind::Spill(it) => a.insert_walk(it),
        });
        self.total_contractions += out.contractions as u64;
        out
    }

    /// Migrate the narrow arena to `u32` words, preserving indices.
    /// Runs at most once per table lifetime (`clear` keeps the width).
    fn widen(&mut self) {
        if let Storage::Narrow(a) = &mut self.storage {
            self.storage = Storage::Wide(Arena {
                nodes: a.nodes.iter().map(|w| w.get()).collect(),
                vars: std::mem::take(&mut a.vars),
                free: std::mem::take(&mut a.free),
                node_count: a.node_count,
                // Indices survive the migration, so the recorded walk
                // stays valid too.
                path: std::mem::take(&mut a.path),
                prev_pairs: std::mem::take(&mut a.prev_pairs),
                free_stack: Vec::new(),
            });
        }
    }

    /// Merge many codes (e.g. a received work report). Returns the combined
    /// outcome; `contractions` is the total contraction work performed, used
    /// by the simulator to charge list-contraction time.
    pub fn merge<'a>(&mut self, codes: impl IntoIterator<Item = &'a Code>) -> MergeOutcome {
        let mut total = MergeOutcome::default();
        for c in codes {
            total.absorb(self.insert(c));
        }
        total
    }

    /// Merge another set (by its minimal codes).
    pub fn merge_set(&mut self, other: &CodeSet) -> MergeOutcome {
        let codes = other.minimal_codes();
        self.merge(codes.iter())
    }

    /// The minimal (contracted) codes covering everything completed: done
    /// nodes are maximal by construction.
    pub fn minimal_codes(&self) -> Vec<Code> {
        let mut out = Vec::new();
        self.minimal_codes_into(&mut out);
        out
    }

    /// [`Self::minimal_codes`] into a caller-owned buffer (cleared first) —
    /// the allocation-free report/gossip producer.
    pub fn minimal_codes_into(&self, out: &mut Vec<Code>) {
        out.clear();
        let mut path: Vec<Pair> = Vec::new();
        on_arena!(&self.storage, a => a.collect_done(ROOT, &mut path, out));
    }

    /// The minimal codes covering the *uncompleted* space — the complement
    /// used by failure recovery (§5.3.2). Empty iff the root is done. If the
    /// table is empty, the complement is the root code itself.
    pub fn complement(&self) -> Vec<Code> {
        let mut out = Vec::new();
        self.complement_into(&mut out);
        out
    }

    /// [`Self::complement`] into a caller-owned buffer (cleared first).
    pub fn complement_into(&self, out: &mut Vec<Code>) {
        out.clear();
        on_arena!(&self.storage, a => match a.word(ROOT) {
            DONE => {}
            EMPTY => out.push(Code::root()),
            _ => {
                let mut path: Vec<Pair> = Vec::new();
                a.collect_complement(ROOT, &mut path, out);
            }
        });
    }

    /// Number of live arena slots.
    pub fn node_count(&self) -> usize {
        on_arena!(&self.storage, a => a.node_count)
    }

    /// Resident memory of the table, in bytes (the paper's storage-space
    /// metric): the arena's real footprint — allocated slots and the free
    /// list — not just the live nodes.
    pub fn memory_bytes(&self) -> usize {
        on_arena!(&self.storage, a => a.memory_bytes())
    }

    /// Bytes needed to ship the whole table in a message (table gossip).
    pub fn wire_size(&self) -> usize {
        2 + self
            .minimal_codes()
            .iter()
            .map(|c| c.wire_size())
            .sum::<usize>()
    }

    /// Lifetime number of insert operations.
    pub fn total_inserts(&self) -> u64 {
        self.total_inserts
    }

    /// Lifetime number of contractions performed.
    pub fn total_contractions(&self) -> u64 {
        self.total_contractions
    }

    /// True when nothing has been completed yet.
    pub fn is_empty(&self) -> bool {
        on_arena!(&self.storage, a => a.word(ROOT) == EMPTY)
    }

    /// Test-only: total arena slots currently allocated (live + vacated).
    #[cfg(test)]
    fn arena_slots(&self) -> usize {
        on_arena!(&self.storage, a => a.nodes.len())
    }

    /// Test-only: arena slot capacity.
    #[cfg(test)]
    fn arena_capacity(&self) -> usize {
        on_arena!(&self.storage, a => a.nodes.capacity())
    }

    /// Test-only: vacated pair bases awaiting reuse.
    #[cfg(test)]
    fn free_pairs(&self) -> usize {
        on_arena!(&self.storage, a => a.free.len())
    }

    /// Test-only: has the arena widened to `u32` words?
    #[cfg(test)]
    fn is_wide(&self) -> bool {
        matches!(self.storage, Storage::Wide(_))
    }
}

impl PartialEq for CodeSet {
    fn eq(&self, other: &Self) -> bool {
        self.minimal_codes() == other.minimal_codes()
    }
}
impl Eq for CodeSet {}

impl fmt::Debug for CodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.minimal_codes()).finish()
    }
}

impl From<Vec<Code>> for CodeSet {
    fn from(codes: Vec<Code>) -> Self {
        let mut s = CodeSet::new();
        s.merge(codes.iter());
        s
    }
}

impl From<CodeSet> for Vec<Code> {
    fn from(s: CodeSet) -> Vec<Code> {
        s.minimal_codes()
    }
}

/// Compress a list of completed codes into its minimal contracted form —
/// the work-report compression of §5.3.2.
pub fn compress(codes: &[Code]) -> Vec<Code> {
    let mut scratch = CodeSet::new();
    let mut out = Vec::new();
    compress_into(codes, &mut scratch, &mut out);
    out
}

/// [`compress`] with caller-owned scratch: `scratch` is cleared and rebuilt
/// (retaining its arena), the minimal codes land in `out` (cleared first).
pub fn compress_into(codes: &[Code], scratch: &mut CodeSet, out: &mut Vec<Code>) {
    scratch.clear();
    scratch.merge(codes.iter());
    scratch.minimal_codes_into(out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(dec: &[(Var, bool)]) -> Code {
        Code::from_decisions(dec)
    }

    #[test]
    fn empty_set() {
        let s = CodeSet::new();
        assert!(s.is_empty());
        assert!(!s.is_root_done());
        assert!(s.minimal_codes().is_empty());
        assert_eq!(s.complement(), vec![Code::root()]);
        assert!(!s.contains(&c(&[(1, false)])));
        assert_eq!(s.node_count(), 1);
    }

    #[test]
    fn single_insert() {
        let mut s = CodeSet::new();
        let code = c(&[(1, false), (2, true)]);
        let out = s.insert(&code);
        assert_eq!(out.inserted, 1);
        assert_eq!(out.contractions, 0);
        assert!(s.contains(&code));
        assert!(!s.contains(&c(&[(1, false)])));
        // Descendants of a completed code are contained.
        assert!(s.contains(&c(&[(1, false), (2, true), (7, false)])));
        assert_eq!(s.minimal_codes(), vec![code]);
    }

    #[test]
    fn sibling_contraction() {
        let mut s = CodeSet::new();
        s.insert(&c(&[(1, false), (2, false)]));
        let out = s.insert(&c(&[(1, false), (2, true)]));
        assert_eq!(out.contractions, 1);
        // The pair contracted to the parent.
        assert_eq!(s.minimal_codes(), vec![c(&[(1, false)])]);
        assert!(s.contains(&c(&[(1, false)])));
    }

    #[test]
    fn recursive_contraction_to_root() {
        // Figure 1's tree: completing all four leaves contracts to the root.
        let mut s = CodeSet::new();
        s.insert(&c(&[(1, false), (2, false)]));
        s.insert(&c(&[(1, false), (2, true)]));
        assert!(!s.is_root_done());
        s.insert(&c(&[(1, true), (3, true)]));
        let out = s.insert(&c(&[(1, true), (3, false)]));
        // Contracts x3-pair -> (x1,1), then x1-pair -> root.
        assert_eq!(out.contractions, 2);
        assert!(s.is_root_done());
        assert_eq!(s.minimal_codes(), vec![Code::root()]);
        assert!(s.complement().is_empty());
        // Everything is contained now.
        assert!(s.contains(&c(&[(9, true), (4, false)])));
        // Root-done table is a single node.
        assert_eq!(s.node_count(), 1);
    }

    #[test]
    fn ancestor_subsumes_descendant() {
        let mut s = CodeSet::new();
        s.insert(&c(&[(1, false)]));
        let out = s.insert(&c(&[(1, false), (2, true)]));
        assert_eq!(out.already_known, 1);
        assert_eq!(out.inserted, 0);
        assert_eq!(s.minimal_codes(), vec![c(&[(1, false)])]);
    }

    #[test]
    fn descendants_deleted_when_ancestor_inserted() {
        let mut s = CodeSet::new();
        s.insert(&c(&[(1, false), (2, true), (5, false)]));
        s.insert(&c(&[(1, false), (2, false)]));
        let before = s.node_count();
        // Now complete (x1,0) directly: both deep entries become redundant.
        s.insert(&c(&[(1, false)]));
        assert_eq!(s.minimal_codes(), vec![c(&[(1, false)])]);
        assert!(s.node_count() < before);
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut s = CodeSet::new();
        // Build a deep chain, then subsume it from near the root.
        s.insert(&c(&[(1, false), (2, false), (3, false), (4, false)]));
        let arena_high = s.arena_slots();
        s.insert(&c(&[(1, false)]));
        assert!(s.free_pairs() > 0, "contraction vacated slots");
        // New growth on the other side reuses vacated slots: the arena
        // does not grow while the free list feeds allocs.
        s.insert(&c(&[(1, true), (7, false), (8, true)]));
        assert_eq!(s.arena_slots(), arena_high);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut s = CodeSet::new();
        for i in 0..8u32 {
            s.insert(&c(&[(1, i & 1 != 0), (2, i & 2 != 0), (3, i & 4 != 0)]));
        }
        let cap = s.arena_capacity();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.node_count(), 1);
        assert_eq!(s.total_inserts(), 0);
        assert_eq!(s.arena_capacity(), cap);
        // And it is fully usable again.
        s.insert(&c(&[(3, true)]));
        assert!(s.contains(&c(&[(3, true), (9, false)])));
    }

    #[test]
    fn large_table_widens_and_stays_correct() {
        // Depth-17 codes indexed by a counter's bits, with the last
        // decision's bit pinned to `false` so no pair ever has both
        // children done — nothing contracts, the arena just grows
        // until it outgrows u16 indexing and migrates to u32 words.
        let decisions = |i: u32| -> Vec<(Var, bool)> {
            (0..17u32)
                .map(|j| (j as Var + 1, (i >> j) & 1 != 0))
                .collect()
        };
        let mut s = CodeSet::new();
        assert!(!s.is_wide());
        let mut inserted = Vec::new();
        for i in 0..1u32 << 16 {
            let code = c(&decisions(i));
            assert_eq!(s.insert(&code).inserted, 1);
            inserted.push(code);
            if s.is_wide() {
                break;
            }
        }
        assert!(s.is_wide(), "table growth widens the arena");
        // Semantics survive the migration: everything inserted before
        // and across the width boundary is still contained, minimal.
        for code in &inserted {
            assert!(s.contains(code));
        }
        assert_eq!(s.minimal_codes().len(), inserted.len());
        // Contraction works across the boundary: completing the last
        // code's sibling contracts their pair to the parent.
        let last = inserted.last().unwrap();
        let mut sibling: Vec<Pair> = last.pairs().collect();
        sibling.last_mut().unwrap().bit = true;
        let sib: Vec<(Var, bool)> = sibling.iter().map(|p| (p.var, p.bit)).collect();
        assert!(s.insert(&c(&sib)).contractions >= 1);
        // The two sibling leaves merged into one parent code.
        assert_eq!(s.minimal_codes().len(), inserted.len());
        // Widened tables keep working after clear (width is retained).
        s.clear();
        assert!(s.is_wide());
        assert!(s.is_empty());
        s.insert(&c(&[(7, true)]));
        assert!(s.contains(&c(&[(7, true), (8, false)])));
    }

    #[test]
    fn complement_of_partial_table() {
        let mut s = CodeSet::new();
        s.insert(&c(&[(1, false), (2, true)]));
        let comp = s.complement();
        // Uncovered: (x1,0)(x2,0) and (x1,1).
        assert!(comp.contains(&c(&[(1, false), (2, false)])));
        assert!(comp.contains(&c(&[(1, true)])));
        assert_eq!(comp.len(), 2);
        // Complement and table are disjoint and cover everything:
        for code in &comp {
            assert!(!s.contains(code));
        }
    }

    #[test]
    fn complement_then_complete_closes_root() {
        let mut s = CodeSet::new();
        s.insert(&c(&[(1, false), (2, true), (5, false)]));
        s.insert(&c(&[(1, true)]));
        for code in s.complement() {
            s.insert(&code);
        }
        assert!(s.is_root_done());
    }

    #[test]
    fn into_buffers_reuse_without_stale_contents() {
        let mut s = CodeSet::new();
        s.insert(&c(&[(1, false), (2, true)]));
        let mut buf = vec![Code::root(); 7]; // stale junk
        s.minimal_codes_into(&mut buf);
        assert_eq!(buf, s.minimal_codes());
        s.complement_into(&mut buf);
        assert_eq!(buf, s.complement());
    }

    #[test]
    fn compress_matches_paper_example() {
        // Reports containing both children of (x1,0) plus a deep redundant
        // descendant compress to just (x1,0).
        let raw = vec![
            c(&[(1, false), (2, false)]),
            c(&[(1, false), (2, true), (5, false)]),
            c(&[(1, false), (2, true), (5, true)]),
        ];
        assert_eq!(compress(&raw), vec![c(&[(1, false)])]);
    }

    #[test]
    fn merge_outcome_counts() {
        let mut s = CodeSet::new();
        let batch = [
            c(&[(1, false), (2, false)]),
            c(&[(1, false), (2, true)]),
            c(&[(1, false)]), // redundant after contraction of the first two
        ];
        let out = s.merge(batch.iter());
        assert_eq!(out.already_known, 1);
        assert_eq!(out.inserted, 2);
        assert_eq!(out.contractions, 1);
        assert_eq!(out.processed(), 3);
    }

    #[test]
    fn serde_round_trip_preserves_semantics() {
        let mut s = CodeSet::new();
        s.insert(&c(&[(1, false), (2, true)]));
        s.insert(&c(&[(1, true), (3, false)]));
        let codes: Vec<Code> = s.clone().into();
        let rebuilt = CodeSet::from(codes);
        assert_eq!(s, rebuilt);
    }

    #[test]
    fn wire_size_shrinks_with_contraction() {
        let mut uncompressed = 0usize;
        let mut s = CodeSet::new();
        for bits in [(false, false), (false, true), (true, false), (true, true)] {
            let code = c(&[(1, bits.0), (2, bits.1)]);
            uncompressed += code.wire_size();
            s.insert(&code);
        }
        // Contracted to root: one empty code.
        assert!(s.wire_size() < uncompressed);
        assert_eq!(s.minimal_codes(), vec![Code::root()]);
    }

    #[test]
    fn double_insert_counts_known() {
        let mut s = CodeSet::new();
        let code = c(&[(4, true)]);
        s.insert(&code);
        let out = s.insert(&code);
        assert_eq!(out.already_known, 1);
        assert_eq!(out.inserted, 0);
    }
}
