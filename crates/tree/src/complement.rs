//! Choosing which uncompleted problem to recover (§5.3.2).
//!
//! "When a member runs out of work and an attempt to get work through the
//! load-balancing mechanism fails, it chooses an uncompleted problem (by
//! complementing the code of a solved problem whose sibling is not solved)
//! and solves it."
//!
//! The paper notes the costs of uncoordinated recovery "can be reduced by
//! employing more sophisticated methods for choosing work, such as using the
//! location of the last problem completed locally" — so the picker is a
//! strategy, and one of the strategies is locality-based.

use crate::code::Code;
use crate::codeset::CodeSet;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Strategy for picking one code out of the complement frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RecoveryStrategy {
    /// Pick the shallowest uncovered code: recovers the largest missing
    /// subtree first (fast coverage, more potential redundancy).
    Shallowest,
    /// Pick the deepest uncovered code: smallest work unit first.
    Deepest,
    /// Pick uniformly at random — decorrelates concurrent recoverers, the
    /// default behaviour evaluated in the paper ("work reports are sent to
    /// randomly chosen resources, without eliminating redundant messages").
    #[default]
    Random,
    /// Pick the candidate closest (longest common prefix) to a hint code —
    /// "using the location of the last problem completed locally".
    NearHint,
}

/// Pick an uncompleted problem from `table`'s complement.
///
/// Returns `None` iff the root is completed (nothing left to recover).
/// `hint` is used by [`RecoveryStrategy::NearHint`]; other strategies ignore
/// it.
pub fn pick_recovery(
    table: &CodeSet,
    strategy: RecoveryStrategy,
    hint: Option<&Code>,
    rng: &mut SmallRng,
) -> Option<Code> {
    let mut candidates = table.complement();
    if candidates.is_empty() {
        return None;
    }
    match strategy {
        RecoveryStrategy::Shallowest => candidates.iter().min_by_key(|c| c.depth()).cloned(),
        RecoveryStrategy::Deepest => candidates.iter().max_by_key(|c| c.depth()).cloned(),
        RecoveryStrategy::Random => candidates.choose(rng).cloned(),
        RecoveryStrategy::NearHint => match hint {
            Some(h) => candidates
                .iter()
                .max_by_key(|c| (common_prefix_len(c, h), std::cmp::Reverse(c.depth())))
                .cloned(),
            None => {
                candidates.shuffle(rng);
                candidates.into_iter().next()
            }
        },
    }
}

/// Length of the longest common prefix of two codes, in pairs.
pub fn common_prefix_len(a: &Code, b: &Code) -> usize {
    a.pairs().zip(b.pairs()).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::Var;
    use rand::SeedableRng;

    fn c(dec: &[(Var, bool)]) -> Code {
        Code::from_decisions(dec)
    }

    fn table() -> CodeSet {
        let mut s = CodeSet::new();
        // Completed: (x1,0)(x2,1)(x5,0) and (x1,1)(x3,0).
        s.insert(&c(&[(1, false), (2, true), (5, false)]));
        s.insert(&c(&[(1, true), (3, false)]));
        s
    }

    #[test]
    fn none_when_root_done() {
        let mut s = CodeSet::new();
        s.insert(&Code::root());
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(
            pick_recovery(&s, RecoveryStrategy::Random, None, &mut rng),
            None
        );
    }

    #[test]
    fn empty_table_recovers_root() {
        let s = CodeSet::new();
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(
            pick_recovery(&s, RecoveryStrategy::Shallowest, None, &mut rng),
            Some(Code::root())
        );
    }

    #[test]
    fn shallowest_picks_minimum_depth() {
        let s = table();
        let mut rng = SmallRng::seed_from_u64(0);
        let got = pick_recovery(&s, RecoveryStrategy::Shallowest, None, &mut rng).unwrap();
        // Complement: (x1,0)(x2,0), (x1,0)(x2,1)(x5,1), (x1,1)(x3,1).
        assert_eq!(got.depth(), 2);
    }

    #[test]
    fn deepest_picks_maximum_depth() {
        let s = table();
        let mut rng = SmallRng::seed_from_u64(0);
        let got = pick_recovery(&s, RecoveryStrategy::Deepest, None, &mut rng).unwrap();
        assert_eq!(got, c(&[(1, false), (2, true), (5, true)]));
    }

    #[test]
    fn random_pick_is_a_candidate() {
        let s = table();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..20 {
            let got = pick_recovery(&s, RecoveryStrategy::Random, None, &mut rng).unwrap();
            assert!(!s.contains(&got), "picked an already-completed code");
        }
    }

    #[test]
    fn near_hint_prefers_local_subtree() {
        let s = table();
        let mut rng = SmallRng::seed_from_u64(0);
        let hint = c(&[(1, false), (2, true), (5, false)]);
        let got = pick_recovery(&s, RecoveryStrategy::NearHint, Some(&hint), &mut rng).unwrap();
        // The sibling (x1,0)(x2,1)(x5,1) shares the longest prefix with the hint.
        assert_eq!(got, c(&[(1, false), (2, true), (5, true)]));
    }

    #[test]
    fn common_prefix() {
        let a = c(&[(1, false), (2, true), (5, false)]);
        let b = c(&[(1, false), (2, true), (5, true)]);
        assert_eq!(common_prefix_len(&a, &b), 2);
        assert_eq!(common_prefix_len(&a, &a), 3);
        assert_eq!(common_prefix_len(&a, &Code::root()), 0);
    }

    #[test]
    fn recovery_loop_terminates() {
        // Repeatedly recovering and completing must reach root-done.
        let mut s = table();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut steps = 0;
        while let Some(code) = pick_recovery(&s, RecoveryStrategy::Random, None, &mut rng) {
            s.insert(&code);
            steps += 1;
            assert!(steps < 100, "recovery loop did not converge");
        }
        assert!(s.is_root_done());
    }
}
