//! Compact binary serialization of basic trees and codes.
//!
//! Basic trees for the large experiments are ~100k nodes; the binary format
//! keeps them at ~30 bytes/node so generated workloads can be cached on
//! disk and shared between bench runs. (serde `derive` is also available on
//! all types for structured formats.)

use crate::basic_tree::{BasicNode, BasicTree, NodeId};
use crate::code::{Code, Pair, Var};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fs;
use std::io;
use std::path::Path;

const MAGIC: u32 = 0x4654_4242; // "FTBB"
const VERSION: u16 = 1;
const NO_CHILD: u32 = u32::MAX;

/// Errors from the binary codec.
#[derive(Debug)]
pub enum CodecError {
    /// File/stream I/O failure.
    Io(io::Error),
    /// Structural problem in the encoded data.
    Malformed(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "io error: {e}"),
            CodecError::Malformed(m) => write!(f, "malformed data: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<io::Error> for CodecError {
    fn from(e: io::Error) -> Self {
        CodecError::Io(e)
    }
}

/// Encode a basic tree to bytes.
pub fn encode_tree(tree: &BasicTree) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + tree.len() * 32);
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(tree.len() as u32);
    for n in tree.nodes() {
        buf.put_u16_le(n.var);
        buf.put_f64_le(n.bound);
        buf.put_f64_le(n.cost);
        match n.solution {
            Some(s) => {
                buf.put_u8(1);
                buf.put_f64_le(s);
            }
            None => buf.put_u8(0),
        }
        match n.children {
            Some((l, r)) => {
                buf.put_u32_le(l);
                buf.put_u32_le(r);
            }
            None => {
                buf.put_u32_le(NO_CHILD);
                buf.put_u32_le(NO_CHILD);
            }
        }
    }
    buf.freeze()
}

fn need(data: &[u8], n: usize, what: &str) -> Result<(), CodecError> {
    if data.len() < n {
        Err(CodecError::Malformed(format!("truncated at {what}")))
    } else {
        Ok(())
    }
}

/// Decode a basic tree from bytes. Parent pointers are reconstructed from
/// the child table and the result is re-validated.
pub fn decode_tree(mut data: &[u8]) -> Result<BasicTree, CodecError> {
    need(data, 10, "header")?;
    if data.get_u32_le() != MAGIC {
        return Err(CodecError::Malformed("bad magic".into()));
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(CodecError::Malformed(format!(
            "unsupported version {version}"
        )));
    }
    let count = data.get_u32_le() as usize;
    let mut nodes: Vec<BasicNode> = Vec::with_capacity(count);
    let mut child_table: Vec<Option<(u32, u32)>> = Vec::with_capacity(count);
    for i in 0..count {
        need(data, 2 + 8 + 8 + 1, &format!("node {i}"))?;
        let var = data.get_u16_le();
        let bound = data.get_f64_le();
        let cost = data.get_f64_le();
        let has_sol = data.get_u8();
        let solution = if has_sol == 1 {
            need(data, 8, "solution")?;
            Some(data.get_f64_le())
        } else if has_sol == 0 {
            None
        } else {
            return Err(CodecError::Malformed("bad solution flag".into()));
        };
        need(data, 8, "children")?;
        let l = data.get_u32_le();
        let r = data.get_u32_le();
        let children = if l == NO_CHILD && r == NO_CHILD {
            None
        } else {
            Some((l, r))
        };
        child_table.push(children);
        nodes.push(BasicNode {
            parent: None,
            var,
            bound,
            cost,
            solution,
            children,
        });
    }
    // Rebuild parent back-pointers.
    for (i, kids) in child_table.iter().enumerate() {
        if let Some((l, r)) = kids {
            for (kid, bit) in [(l, false), (r, true)] {
                let slot = nodes
                    .get_mut(*kid as usize)
                    .ok_or_else(|| CodecError::Malformed(format!("child {kid} out of range")))?;
                slot.parent = Some((i as NodeId, bit));
            }
        }
    }
    BasicTree::try_new(nodes).map_err(CodecError::Malformed)
}

/// Write a basic tree to a file.
pub fn write_tree_file(tree: &BasicTree, path: &Path) -> Result<(), CodecError> {
    fs::write(path, encode_tree(tree))?;
    Ok(())
}

/// Read a basic tree from a file.
pub fn read_tree_file(path: &Path) -> Result<BasicTree, CodecError> {
    let data = fs::read(path)?;
    decode_tree(&data)
}

/// Encode a code list (e.g. for a work-report payload snapshot).
pub fn encode_codes(codes: &[Code]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(codes.len() as u32);
    for c in codes {
        buf.put_u16_le(c.depth() as u16);
        for p in c.pairs() {
            // Pack 15-bit var + branch bit, as counted by `Code::wire_size`.
            let word = (p.var << 1) | (p.bit as u16);
            buf.put_u16_le(word);
        }
    }
    buf.freeze()
}

/// Decode a code list.
pub fn decode_codes(mut data: &[u8]) -> Result<Vec<Code>, CodecError> {
    if data.remaining() < 4 {
        return Err(CodecError::Malformed("truncated code list".into()));
    }
    let count = data.get_u32_le() as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        if data.remaining() < 2 {
            return Err(CodecError::Malformed("truncated code header".into()));
        }
        let depth = data.get_u16_le() as usize;
        if data.remaining() < 2 * depth {
            return Err(CodecError::Malformed("truncated code body".into()));
        }
        let mut pairs = Vec::with_capacity(depth);
        for _ in 0..depth {
            let word = data.get_u16_le();
            pairs.push(Pair {
                var: (word >> 1) as Var,
                bit: word & 1 == 1,
            });
        }
        out.push(Code::from_pairs(pairs));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic_tree::fig1_example;
    use crate::generator::{random_basic_tree, TreeConfig};

    #[test]
    fn tree_round_trip() {
        let t = fig1_example();
        let bytes = encode_tree(&t);
        let back = decode_tree(&bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn random_tree_round_trip() {
        let t = random_basic_tree(&TreeConfig {
            target_nodes: 501,
            ..Default::default()
        });
        let back = decode_tree(&encode_tree(&t)).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn file_round_trip() {
        let t = fig1_example();
        let dir = std::env::temp_dir().join("ftbb-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.ftbb");
        write_tree_file(&t, &path).unwrap();
        let back = read_tree_file(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode_tree(&fig1_example()).to_vec();
        bytes[0] ^= 0xFF;
        assert!(matches!(decode_tree(&bytes), Err(CodecError::Malformed(_))));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = encode_tree(&fig1_example());
        for cut in [0, 4, 9, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_tree(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn codes_round_trip() {
        let t = fig1_example();
        let codes: Vec<Code> = (0..t.len() as u32).map(|i| t.code_of(i)).collect();
        let back = decode_codes(&encode_codes(&codes)).unwrap();
        assert_eq!(codes, back);
    }

    #[test]
    fn encoded_code_size_matches_wire_size() {
        let t = fig1_example();
        let codes: Vec<Code> = (0..t.len() as u32).map(|i| t.code_of(i)).collect();
        let total: usize = codes.iter().map(|c| c.wire_size()).sum();
        assert_eq!(encode_codes(&codes).len(), 4 + total);
    }
}
