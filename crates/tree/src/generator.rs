//! Random basic-tree generation (§6.2).
//!
//! "For testing reliability, and later scalability, the number of nodes is
//! the only important feature of the test tree. Therefore, we enriched our
//! set of test trees with randomly created trees of various sizes."
//!
//! The generator produces *full* binary trees (every internal node has two
//! children — branching factor 2, §5.3.1) with: per-node lower bounds that
//! grow monotonically toward the leaves, feasible solutions at a fraction of
//! the leaves, and per-node costs drawn from a lognormal distribution around
//! a configured mean. The knobs control how much of the tree a perfectly
//! informed B&B would prune, so that pruning dynamics (which depend on
//! incumbent propagation) are exercised without being the whole story.

use crate::basic_tree::{BasicNode, BasicTree, NodeId};
use crate::code::Var;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for [`random_basic_tree`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Target total node count. Rounded up to the nearest odd number (full
    /// binary trees have an odd number of nodes).
    pub target_nodes: usize,
    /// Mean per-node cost, in seconds (the paper's granularity).
    pub mean_cost: f64,
    /// Coefficient of variation of per-node cost (0 = deterministic costs).
    pub cost_cv: f64,
    /// Balance of subtree splits: 0.5 = perfectly balanced, lower values
    /// allow skewed (deeper) trees. Must be in `(0, 0.5]`.
    pub balance: f64,
    /// Fraction of leaves that carry a feasible solution.
    pub solution_density: f64,
    /// Mean bound increase per level, as a fraction of the root-to-optimum
    /// gap. Larger values make more of the tree prunable.
    pub bound_growth: f64,
    /// Offset added to a leaf's bound to form its feasible solution value.
    /// Large margins weaken pruning (few nodes have bounds above the
    /// optimum); small margins make the search tree collapse to the best
    /// path. Tuned per workload so the *expanded* node count matches the
    /// paper's.
    pub solution_margin: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            target_nodes: 1001,
            mean_cost: 0.01,
            cost_cv: 0.5,
            balance: 0.35,
            solution_density: 0.3,
            bound_growth: 0.08,
            solution_margin: 0.5,
            seed: 1,
        }
    }
}

/// Lognormal cost sampler with a given mean and coefficient of variation.
fn sample_cost(mean: f64, cv: f64, rng: &mut SmallRng) -> f64 {
    if cv <= 0.0 {
        return mean;
    }
    let sigma2 = (1.0 + cv * cv).ln();
    let sigma = sigma2.sqrt();
    // Box–Muller.
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean * (sigma * z - sigma2 / 2.0).exp()
}

/// Generate a random basic tree. Deterministic for a given config.
pub fn random_basic_tree(cfg: &TreeConfig) -> BasicTree {
    assert!(cfg.target_nodes >= 1);
    assert!(
        cfg.balance > 0.0 && cfg.balance <= 0.5,
        "balance must be in (0, 0.5]"
    );
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let total = if cfg.target_nodes.is_multiple_of(2) {
        cfg.target_nodes + 1
    } else {
        cfg.target_nodes
    };

    let mut nodes: Vec<BasicNode> = Vec::with_capacity(total);
    nodes.push(BasicNode {
        parent: None,
        var: 0,
        bound: 0.0,
        cost: sample_cost(cfg.mean_cost, cfg.cost_cv, &mut rng),
        solution: None,
        children: None,
    });

    // Work list: (node index, subtree node budget, depth).
    let mut stack: Vec<(NodeId, usize, u16)> = vec![(0, total, 0)];
    while let Some((idx, budget, depth)) = stack.pop() {
        if budget <= 1 {
            continue; // stays a leaf
        }
        // Split budget-1 remaining nodes between two subtrees, both odd.
        let remaining = budget - 1;
        let max_pairs = remaining / 2; // each side gets (2k+1) nodes
        debug_assert!(max_pairs >= 1);
        let lo = ((cfg.balance * max_pairs as f64) as usize).min(max_pairs - 1);
        let left_pairs = rng.gen_range(lo..max_pairs);
        let left_budget = 2 * left_pairs + 1;
        let right_budget = remaining - left_budget;
        debug_assert!(right_budget % 2 == 1);

        // Branching variable: the depth, offset into a large space and
        // jittered so that sibling subtrees branch on *different* variables
        // at equal depths (paper §5.3.1: "the order in which condition
        // variables are considered may vary over the tree").
        let var: Var = (depth as u32 * 7 + rng.gen_range(0..7u32)).min(u16::MAX as u32) as Var;
        nodes[idx as usize].var = var;

        let parent_bound = nodes[idx as usize].bound;
        let mut mk_child = |rng: &mut SmallRng, bit: bool| {
            let growth = cfg.bound_growth * (0.25 + 1.5 * rng.gen::<f64>());
            let bound = parent_bound + growth;
            let id = nodes.len() as NodeId;
            nodes.push(BasicNode {
                parent: Some((idx, bit)),
                var: 0,
                bound,
                cost: sample_cost(cfg.mean_cost, cfg.cost_cv, rng),
                solution: None,
                children: None,
            });
            id
        };
        let l = mk_child(&mut rng, false);
        let r = mk_child(&mut rng, true);
        nodes[idx as usize].children = Some((l, r));
        stack.push((l, left_budget, depth + 1));
        stack.push((r, right_budget, depth + 1));
    }

    // Feasible solutions at a fraction of the leaves. Solution values sit
    // just above the leaf's bound, so deeper (higher-bound) leaves are worse
    // and an early good incumbent prunes high-bound regions.
    let leaf_ids: Vec<NodeId> = (0..nodes.len() as NodeId)
        .filter(|&i| nodes[i as usize].children.is_none())
        .collect();
    let mut any = false;
    for &leaf in &leaf_ids {
        if rng.gen::<f64>() < cfg.solution_density {
            let b = nodes[leaf as usize].bound;
            let margin = cfg.solution_margin * (0.5 + rng.gen::<f64>());
            nodes[leaf as usize].solution = Some(b + margin);
            any = true;
        }
    }
    if !any {
        // Guarantee at least one feasible solution (otherwise the "optimum"
        // is undefined and the search degenerates to exhaustive traversal).
        let leaf = leaf_ids[rng.gen_range(0..leaf_ids.len())];
        let b = nodes[leaf as usize].bound;
        nodes[leaf as usize].solution = Some(b + cfg.solution_margin);
    }

    BasicTree::new_unchecked(nodes)
}

/// Variable-depth jitter can in principle repeat a var on a path; repair by
/// remapping to fresh variables where needed. Exposed for tests.
pub fn repair_path_vars(tree: &BasicTree) -> BasicTree {
    let mut nodes = tree.nodes().to_vec();
    for i in 0..nodes.len() {
        if nodes[i].children.is_none() {
            continue;
        }
        let mut seen = Vec::new();
        let mut cur = nodes[i].parent;
        while let Some((p, _)) = cur {
            if nodes[p as usize].children.is_some() {
                seen.push(nodes[p as usize].var);
            }
            cur = nodes[p as usize].parent;
        }
        if seen.contains(&nodes[i].var) {
            // Deterministic fresh var derived from the node index.
            let mut v = (nodes[i].var as u32 + 7919 + i as u32) as Var;
            while seen.contains(&v) {
                v = v.wrapping_add(1);
            }
            nodes[i].var = v;
        }
    }
    BasicTree::new(nodes)
}

/// The calibrated workloads used by the paper's experiments.
pub mod calibrated {
    use super::*;

    /// A very small tree for the Figure 5/6 timeline experiments
    /// (~60 nodes, 0.05 s mean cost: a few seconds of uniprocessor work).
    pub fn tiny() -> BasicTree {
        repair_path_vars(&random_basic_tree(&TreeConfig {
            target_nodes: 61,
            mean_cost: 0.05,
            cost_cv: 0.3,
            balance: 0.4,
            solution_density: 0.35,
            bound_growth: 0.05,
            solution_margin: 0.6,
            seed: 42,
        }))
    }

    /// The Figure 3 problem: ~3,500 expanded nodes at 0.01 s average cost
    /// (≈35 s of uniprocessor B&B work).
    pub fn small_3500() -> BasicTree {
        repair_path_vars(&random_basic_tree(&TreeConfig {
            target_nodes: 4201,
            mean_cost: 0.01,
            cost_cv: 0.6,
            balance: 0.35,
            solution_density: 0.25,
            bound_growth: 0.025,
            solution_margin: 0.35,
            seed: 3500,
        }))
    }

    /// The Table 1 / Figure 4 problem: ~79,600 expanded nodes at 3.47 s
    /// average cost (≈75 hours of uniprocessor B&B work).
    pub fn large_79600() -> BasicTree {
        repair_path_vars(&random_basic_tree(&TreeConfig {
            target_nodes: 85_801,
            mean_cost: 3.47,
            cost_cv: 0.6,
            balance: 0.35,
            solution_density: 0.25,
            bound_growth: 0.018,
            solution_margin: 0.5,
            seed: 79_600,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size() {
        let t = random_basic_tree(&TreeConfig {
            target_nodes: 999,
            ..Default::default()
        });
        assert_eq!(t.len(), 999);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn even_target_rounds_up() {
        let t = random_basic_tree(&TreeConfig {
            target_nodes: 10,
            ..Default::default()
        });
        assert_eq!(t.len(), 11);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = TreeConfig::default();
        let a = random_basic_tree(&cfg);
        let b = random_basic_tree(&cfg);
        assert_eq!(a, b);
        let c = random_basic_tree(&TreeConfig {
            seed: 2,
            ..cfg.clone()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn full_binary_tree() {
        let t = random_basic_tree(&TreeConfig::default());
        for n in t.nodes() {
            assert!(n.children.is_some() || n.is_leaf());
        }
        let s = t.stats();
        // Full binary tree: leaves = internal + 1.
        assert_eq!(s.leaves, t.len().div_ceil(2));
    }

    #[test]
    fn always_has_a_solution() {
        let t = random_basic_tree(&TreeConfig {
            solution_density: 0.0,
            ..Default::default()
        });
        assert!(t.optimal().is_some());
    }

    #[test]
    fn mean_cost_is_calibrated() {
        let t = random_basic_tree(&TreeConfig {
            target_nodes: 20_001,
            mean_cost: 0.01,
            cost_cv: 0.6,
            ..Default::default()
        });
        let mean = t.stats().mean_cost;
        assert!(
            (mean - 0.01).abs() / 0.01 < 0.10,
            "mean cost {mean} not within 10% of 0.01"
        );
    }

    #[test]
    fn tiny_calibrated_tree() {
        let t = calibrated::tiny();
        assert!(t.len() >= 31 && t.len() <= 101);
        assert!(t.validate().is_ok());
        assert!(t.optimal().is_some());
    }

    #[test]
    fn small_calibrated_tree() {
        let t = calibrated::small_3500();
        // Basic tree somewhat above the 3,500 expanded target (pruning will
        // shave it); mean cost near 0.01 s.
        assert!(t.len() >= 3_500 && t.len() <= 5_000, "len {}", t.len());
        let mean = t.stats().mean_cost;
        assert!((mean - 0.01).abs() / 0.01 < 0.15, "mean {mean}");
    }

    #[test]
    #[ignore = "large tree: run with --ignored"]
    fn large_calibrated_tree() {
        let t = calibrated::large_79600();
        assert!(t.len() >= 79_600, "len {}", t.len());
        assert!(t.validate().is_ok());
        let mean = t.stats().mean_cost;
        assert!((mean - 3.47).abs() / 3.47 < 0.15, "mean {mean}");
    }

    #[test]
    fn bounds_monotone_down_the_tree() {
        let t = random_basic_tree(&TreeConfig::default());
        for n in t.nodes() {
            if let Some((l, r)) = n.children {
                assert!(t.node(l).bound >= n.bound);
                assert!(t.node(r).bound >= n.bound);
            }
        }
    }

    #[test]
    fn repair_path_vars_is_idempotent_on_valid_tree() {
        let t = repair_path_vars(&random_basic_tree(&TreeConfig::default()));
        let t2 = repair_path_vars(&t);
        assert_eq!(t, t2);
    }
}
