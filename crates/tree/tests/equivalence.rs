//! Equivalence tests for the flattened hot-path representations.
//!
//! The inline-array `Code` and the arena-backed `CodeSet` are required to
//! be *observably identical* to the representations they replaced: a
//! `Vec<Pair>` with derived traits, and a boxed-pointer trie. Both models
//! are reimplemented here, independently of the library, and driven with
//! the same random inputs.

use ftbb_tree::{random_basic_tree, Code, CodeSet, NodeId, Pair, TreeConfig, Var};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

// ---------------------------------------------------------------------------
// Part 1: inline `Code` vs the old `Vec<Pair>` representation.
//
// The old `Code` was `struct Code { pairs: Vec<Pair> }` with derived
// `PartialEq/Eq/Ord/Hash` and the shim-derived serde impl (which encodes a
// struct as its fields, i.e. exactly the `Vec<Pair>` encoding). So the
// reference for every trait is the bare `Vec<Pair>`.
// ---------------------------------------------------------------------------

/// Decision sequences crossing the inline/spill boundary in both
/// directions: lengths 0..=`INLINE_CAP + 8`.
fn pairs_strategy() -> impl Strategy<Value = Vec<Pair>> {
    proptest::collection::vec(
        (any::<Var>(), any::<bool>()).prop_map(|(var, bit)| Pair { var, bit }),
        0..Code::INLINE_CAP + 9,
    )
}

fn code_of(pairs: &[Pair]) -> Code {
    pairs.iter().copied().collect()
}

fn hash_of<T: Hash>(value: &T) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `Code` iterates back exactly the pairs it was built from, and its
    /// clone is an independent equal copy — across the spill boundary.
    #[test]
    fn code_round_trips_pairs(model in pairs_strategy()) {
        let code = code_of(&model);
        prop_assert_eq!(code.depth(), model.len());
        let back: Vec<Pair> = code.pairs().collect();
        prop_assert_eq!(&back, &model);
        let cloned = code.clone();
        prop_assert_eq!(&cloned, &code);
        let back2: Vec<Pair> = cloned.pairs().collect();
        prop_assert_eq!(back2, model);
    }

    /// Total order matches the derived `Vec<Pair>` lexicographic order.
    #[test]
    fn code_ord_matches_vec_model(a in pairs_strategy(), b in pairs_strategy()) {
        let (ca, cb) = (code_of(&a), code_of(&b));
        prop_assert_eq!(ca.cmp(&cb), a.cmp(&b));
        prop_assert_eq!(ca == cb, a == b);
        prop_assert_eq!(ca.partial_cmp(&cb), a.partial_cmp(&b));
    }

    /// Hash matches the derived `Vec<Pair>` hash bit-for-bit (so any map
    /// keyed by codes before the change hashes identically after it).
    #[test]
    fn code_hash_matches_vec_model(model in pairs_strategy()) {
        prop_assert_eq!(hash_of(&code_of(&model)), hash_of(&model));
    }

    /// Wire encoding is byte-identical to the old `Vec<Pair>`-backed
    /// struct (u32 length + per-pair u16 var, u8 bit), and decodes back.
    #[test]
    fn code_serde_matches_vec_model(model in pairs_strategy()) {
        let code = code_of(&model);
        let mut code_bytes = Vec::new();
        code.ser(&mut code_bytes);
        let mut model_bytes = Vec::new();
        model.ser(&mut model_bytes);
        prop_assert_eq!(&code_bytes, &model_bytes);
        prop_assert_eq!(code_bytes.len(), 4 + 3 * model.len());

        let mut r = &code_bytes[..];
        let back = Code::de(&mut r).expect("own bytes decode");
        prop_assert!(r.is_empty());
        prop_assert_eq!(back, code);
    }

    /// The io-module codec (the actual gossip payload path) round-trips
    /// codes of every depth, including exactly at the spill boundary.
    /// (The codec packs ⟨var,bit⟩ into one u16, so vars are 15-bit there.)
    #[test]
    fn code_io_round_trips_across_boundary(model in pairs_strategy()) {
        let model: Vec<Pair> = model
            .into_iter()
            .map(|p| Pair { var: p.var & 0x7FFF, bit: p.bit })
            .collect();
        let codes: Vec<Code> = (0..=model.len())
            .map(|d| code_of(&model[..d]))
            .collect();
        let bytes = ftbb_tree::io::encode_codes(&codes);
        let back = ftbb_tree::io::decode_codes(&bytes).unwrap();
        prop_assert_eq!(back, codes);
    }

    /// Lineage algebra (child/parent/sibling) agrees with the model.
    #[test]
    fn code_lineage_matches_vec_model(model in pairs_strategy(), var in any::<Var>(), bit in any::<bool>()) {
        let code = code_of(&model);
        // child = push
        let mut child_model = model.clone();
        child_model.push(Pair { var, bit });
        let child = code.child(var, bit);
        prop_assert_eq!(&child, &code_of(&child_model));
        // parent = pop
        prop_assert_eq!(child.parent(), Some(code.clone()));
        prop_assert_eq!(code_of(&[]).parent(), None);
        // sibling = flip last bit
        let sib = child.sibling().expect("non-root has a sibling");
        let mut sib_model = child_model.clone();
        sib_model.last_mut().unwrap().bit = !bit;
        prop_assert_eq!(&sib, &code_of(&sib_model));
        prop_assert!(sib.is_sibling_of(&child));
        prop_assert!(!sib.is_sibling_of(&sib));
    }
}

// ---------------------------------------------------------------------------
// Part 2: arena `CodeSet` vs a boxed-pointer trie model.
//
// The model is the pre-arena design: one heap node per trie position,
// recursive insert with eager sibling contraction and ancestor
// subsumption. Both structures consume identical insert sequences; all
// observable outputs must agree, including per-insert outcome counts.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct BoxNode {
    var: Option<Var>,
    done: bool,
    kids: [Option<Box<BoxNode>>; 2],
}

impl BoxNode {
    /// Returns (inserted, already_known, contractions), mirroring
    /// `MergeOutcome` for a single code.
    fn insert(&mut self, pairs: &[Pair]) -> (usize, usize, usize) {
        if self.done {
            return (0, 1, 0);
        }
        match pairs.split_first() {
            None => {
                self.done = true;
                self.var = None;
                self.kids = [None, None];
                (1, 0, 0)
            }
            Some((p, rest)) => {
                self.var = Some(p.var);
                let kid = self.kids[p.bit as usize].get_or_insert_with(Default::default);
                let (ins, known, mut contr) = kid.insert(rest);
                if ins == 1 && self.kids.iter().all(|k| k.as_ref().is_some_and(|k| k.done)) {
                    self.done = true;
                    self.var = None;
                    self.kids = [None, None];
                    contr += 1;
                }
                (ins, known, contr)
            }
        }
    }

    fn contains(&self, pairs: &[Pair]) -> bool {
        if self.done {
            return true;
        }
        match pairs.split_first() {
            None => false,
            Some((p, rest)) => match &self.kids[p.bit as usize] {
                Some(k) => k.contains(rest),
                None => false,
            },
        }
    }

    fn minimal_codes(&self, path: &mut Vec<Pair>, out: &mut Vec<Code>) {
        if self.done {
            out.push(path.iter().copied().collect());
            return;
        }
        let Some(var) = self.var else { return };
        for bit in [false, true] {
            if let Some(kid) = &self.kids[bit as usize] {
                path.push(Pair { var, bit });
                kid.minimal_codes(path, out);
                path.pop();
            }
        }
    }

    fn complement(&self, path: &mut Vec<Pair>, out: &mut Vec<Code>) {
        debug_assert!(!self.done);
        let var = self.var.expect("non-done interior node has a var");
        for bit in [false, true] {
            match &self.kids[bit as usize] {
                None => {
                    path.push(Pair { var, bit });
                    out.push(path.iter().copied().collect());
                    path.pop();
                }
                Some(kid) if !kid.done => {
                    path.push(Pair { var, bit });
                    kid.complement(path, out);
                    path.pop();
                }
                Some(_) => {}
            }
        }
    }
}

/// The boxed-trie reference table.
#[derive(Default)]
struct BoxedTrie {
    root: BoxNode,
}

impl BoxedTrie {
    fn insert(&mut self, code: &Code) -> (usize, usize, usize) {
        let pairs: Vec<Pair> = code.pairs().collect();
        self.root.insert(&pairs)
    }

    fn contains(&self, code: &Code) -> bool {
        let pairs: Vec<Pair> = code.pairs().collect();
        self.root.contains(&pairs)
    }

    fn minimal_codes(&self) -> Vec<Code> {
        let mut out = Vec::new();
        self.root.minimal_codes(&mut Vec::new(), &mut out);
        out
    }

    fn complement(&self) -> Vec<Code> {
        if self.root.done {
            return Vec::new();
        }
        if self.root.var.is_none() {
            return vec![Code::root()];
        }
        let mut out = Vec::new();
        self.root.complement(&mut Vec::new(), &mut out);
        out
    }

    fn is_root_done(&self) -> bool {
        self.root.done
    }
}

/// A random tree plus a random sequence of its node codes (interior and
/// leaf, duplicates allowed) — an adversarial insert stream.
fn tree_and_insert_stream() -> impl Strategy<Value = (ftbb_tree::BasicTree, Vec<NodeId>)> {
    (2usize..60, any::<u64>()).prop_flat_map(|(pairs, seed)| {
        let tree = random_basic_tree(&TreeConfig {
            target_nodes: 2 * pairs + 1,
            mean_cost: 0.001,
            seed,
            ..Default::default()
        });
        let n = tree.len() as NodeId;
        (Just(tree), proptest::collection::vec(0..n, 0..120))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arena table and boxed-trie model agree on every observable after
    /// every insert: outcome counts, containment for every tree node,
    /// minimal codes, complement, and root-done.
    #[test]
    fn arena_matches_boxed_trie((tree, stream) in tree_and_insert_stream()) {
        let mut arena = CodeSet::new();
        let mut model = BoxedTrie::default();
        for &id in &stream {
            let code = tree.code_of(id);
            let out = arena.insert(&code);
            let (ins, known, contr) = model.insert(&code);
            prop_assert_eq!(out.inserted, ins);
            prop_assert_eq!(out.already_known, known);
            prop_assert_eq!(out.contractions, contr);
        }
        prop_assert_eq!(arena.is_root_done(), model.is_root_done());
        prop_assert_eq!(arena.minimal_codes(), model.minimal_codes());
        prop_assert_eq!(arena.complement(), model.complement());
        for id in 0..tree.len() as NodeId {
            let code = tree.code_of(id);
            prop_assert_eq!(
                arena.contains(&code),
                model.contains(&code),
                "containment diverges at node {}", id
            );
        }
    }

    /// Slot recycling never corrupts the table: interleaving subsuming
    /// inserts (which free whole subtrees back to the arena's free list)
    /// with fresh growth still matches the model, and the live node count
    /// stays exact.
    #[test]
    fn arena_reuse_matches_model((tree, stream) in tree_and_insert_stream()) {
        let mut arena = CodeSet::new();
        let mut model = BoxedTrie::default();
        for (i, &id) in stream.iter().enumerate() {
            // Every third insert, also complete the node's parent — the
            // subsumption path that frees arena slots.
            let code = tree.code_of(id);
            arena.insert(&code);
            model.insert(&code);
            if i % 3 == 2 {
                if let Some(parent) = code.parent() {
                    arena.insert(&parent);
                    model.insert(&parent);
                }
            }
            prop_assert_eq!(arena.minimal_codes(), model.minimal_codes());
        }
        // node_count is exactly the trie's live size: recount via a walk
        // of the minimal codes' union trie (rebuild from scratch).
        let rebuilt = CodeSet::from(arena.minimal_codes());
        prop_assert_eq!(arena.node_count(), rebuilt.node_count());
    }
}
