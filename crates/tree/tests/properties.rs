//! Property-based tests of the code algebra — the invariants the paper's
//! fault-tolerance argument rests on.

use ftbb_tree::{
    compress, pick_recovery, random_basic_tree, Code, CodeSet, NodeId, RecoveryStrategy, TreeConfig,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A small random full binary tree and a subset of its leaves.
fn tree_and_leaf_subset() -> impl Strategy<Value = (ftbb_tree::BasicTree, Vec<bool>)> {
    (2usize..60, any::<u64>()).prop_flat_map(|(pairs, seed)| {
        let tree = random_basic_tree(&TreeConfig {
            target_nodes: 2 * pairs + 1,
            mean_cost: 0.001,
            seed,
            ..Default::default()
        });
        let leaves = tree.nodes().iter().filter(|n| n.is_leaf()).count();
        (Just(tree), proptest::collection::vec(any::<bool>(), leaves))
    })
}

fn leaf_ids(tree: &ftbb_tree::BasicTree) -> Vec<NodeId> {
    (0..tree.len() as NodeId)
        .filter(|&i| tree.node(i).is_leaf())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Inserting leaf completions in any order yields the same table.
    #[test]
    fn insertion_order_is_irrelevant((tree, picks) in tree_and_leaf_subset(), shuffle_seed in any::<u64>()) {
        let leaves = leaf_ids(&tree);
        let chosen: Vec<Code> = leaves
            .iter()
            .zip(&picks)
            .filter(|(_, &p)| p)
            .map(|(&id, _)| tree.code_of(id))
            .collect();

        let mut forward = CodeSet::new();
        forward.merge(chosen.iter());

        let mut shuffled = chosen.clone();
        use rand::seq::SliceRandom;
        shuffled.shuffle(&mut SmallRng::seed_from_u64(shuffle_seed));
        let mut backward = CodeSet::new();
        backward.merge(shuffled.iter());

        prop_assert_eq!(forward, backward);
    }

    /// Merging is idempotent: re-inserting everything changes nothing.
    #[test]
    fn merge_is_idempotent((tree, picks) in tree_and_leaf_subset()) {
        let leaves = leaf_ids(&tree);
        let chosen: Vec<Code> = leaves
            .iter()
            .zip(&picks)
            .filter(|(_, &p)| p)
            .map(|(&id, _)| tree.code_of(id))
            .collect();
        let mut set = CodeSet::new();
        set.merge(chosen.iter());
        let snapshot = set.minimal_codes();
        let outcome = set.merge(chosen.iter());
        prop_assert_eq!(outcome.inserted, 0);
        prop_assert_eq!(set.minimal_codes(), snapshot);
    }

    /// `contains(leaf)` is exactly leaf membership in the inserted set —
    /// contraction neither loses nor invents completions.
    #[test]
    fn contains_tracks_leaf_membership((tree, picks) in tree_and_leaf_subset()) {
        let leaves = leaf_ids(&tree);
        let mut set = CodeSet::new();
        for (&id, &p) in leaves.iter().zip(&picks) {
            if p {
                set.insert(&tree.code_of(id));
            }
        }
        for (&id, &p) in leaves.iter().zip(&picks) {
            prop_assert_eq!(set.contains(&tree.code_of(id)), p, "leaf {}", id);
        }
    }

    /// Root contracts exactly when every leaf is complete (termination
    /// detection is sound and complete, §5.4).
    #[test]
    fn root_done_iff_all_leaves((tree, picks) in tree_and_leaf_subset()) {
        let leaves = leaf_ids(&tree);
        let mut set = CodeSet::new();
        for (&id, &p) in leaves.iter().zip(&picks) {
            if p {
                set.insert(&tree.code_of(id));
            }
        }
        let all = picks.iter().take(leaves.len()).all(|&p| p);
        prop_assert_eq!(set.is_root_done(), all);
    }

    /// The complement is disjoint from the table and, together with it,
    /// covers the whole tree: completing every complement code closes the
    /// root (recovery always suffices, §5.3.2).
    #[test]
    fn complement_is_exact((tree, picks) in tree_and_leaf_subset()) {
        let leaves = leaf_ids(&tree);
        let mut set = CodeSet::new();
        for (&id, &p) in leaves.iter().zip(&picks) {
            if p {
                set.insert(&tree.code_of(id));
            }
        }
        let complement = set.complement();
        for code in &complement {
            prop_assert!(!set.contains(code), "complement overlaps table");
        }
        for code in &complement {
            set.insert(code);
        }
        prop_assert!(set.is_root_done());
    }

    /// Splitting a batch arbitrarily and merging the compressed halves
    /// equals merging the raw batch (reports may be compressed, split, and
    /// routed arbitrarily without information loss).
    #[test]
    fn compression_distributes_over_merge((tree, picks) in tree_and_leaf_subset(), split in any::<u64>()) {
        let leaves = leaf_ids(&tree);
        let chosen: Vec<Code> = leaves
            .iter()
            .zip(&picks)
            .filter(|(_, &p)| p)
            .map(|(&id, _)| tree.code_of(id))
            .collect();

        let mut raw = CodeSet::new();
        raw.merge(chosen.iter());

        let pivot = if chosen.is_empty() { 0 } else { (split as usize) % (chosen.len() + 1) };
        let (a, b) = chosen.split_at(pivot);
        let mut via_reports = CodeSet::new();
        via_reports.merge(compress(a).iter());
        via_reports.merge(compress(b).iter());

        prop_assert_eq!(raw, via_reports);
    }

    /// Recovery picks terminate: repeatedly completing a recovery pick
    /// closes the root in finitely many steps, for every strategy.
    #[test]
    fn recovery_converges((tree, picks) in tree_and_leaf_subset(), strat in 0u8..4) {
        let strategy = match strat {
            0 => RecoveryStrategy::Shallowest,
            1 => RecoveryStrategy::Deepest,
            2 => RecoveryStrategy::Random,
            _ => RecoveryStrategy::NearHint,
        };
        let leaves = leaf_ids(&tree);
        let mut set = CodeSet::new();
        let mut hint = None;
        for (&id, &p) in leaves.iter().zip(&picks) {
            if p {
                let code = tree.code_of(id);
                set.insert(&code);
                hint = Some(code);
            }
        }
        let mut rng = SmallRng::seed_from_u64(1);
        let mut steps = 0usize;
        while let Some(code) = pick_recovery(&set, strategy, hint.as_ref(), &mut rng) {
            set.insert(&code);
            steps += 1;
            prop_assert!(steps <= tree.len(), "recovery did not converge");
        }
        prop_assert!(set.is_root_done());
    }

    /// Binary code round-trip through the io module.
    #[test]
    fn codes_roundtrip_binary((tree, _picks) in tree_and_leaf_subset()) {
        let codes: Vec<Code> = (0..tree.len() as NodeId).map(|i| tree.code_of(i)).collect();
        let bytes = ftbb_tree::io::encode_codes(&codes);
        let back = ftbb_tree::io::decode_codes(&bytes).unwrap();
        prop_assert_eq!(codes, back);
    }

    /// Basic trees round-trip through the binary codec.
    #[test]
    fn trees_roundtrip_binary(pairs in 2usize..40, seed in any::<u64>()) {
        let tree = random_basic_tree(&TreeConfig {
            target_nodes: 2 * pairs + 1,
            seed,
            ..Default::default()
        });
        let back = ftbb_tree::io::decode_tree(&ftbb_tree::io::encode_tree(&tree)).unwrap();
        prop_assert_eq!(tree, back);
    }
}
