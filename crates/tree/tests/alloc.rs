//! Proof that the hot path is allocation-free: cloning a code at or
//! below the inline cap and probing the table never touch the heap.
//!
//! This is its own integration-test binary so the counting allocator
//! observes only this test's allocations (integration tests otherwise
//! share a process and run concurrently).

use ftbb_tree::{Code, CodeSet};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// `System`, with a global allocation counter.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn clone_and_table_contains_do_not_allocate() {
    // Set up outside the measured window: a code exactly at the inline
    // cap (the worst in-cap case) and a table covering part of its
    // lineage.
    let decisions: Vec<(ftbb_tree::Var, bool)> = (0..Code::INLINE_CAP)
        .map(|i| (i as u16 + 1, i % 2 == 0))
        .collect();
    let code = Code::from_decisions(&decisions);
    let shallow = Code::from_decisions(&decisions[..4]);

    let mut table = CodeSet::new();
    table.insert(&shallow.sibling().unwrap());
    table.insert(&Code::from_decisions(&decisions[..7]));

    let before = allocations();
    let mut hits = 0u32;
    for _ in 0..1000 {
        let copy = code.clone();
        let again = copy.clone();
        if table.contains(&again) {
            hits += 1;
        }
        if table.contains(&shallow) {
            hits += 1;
        }
        std::hint::black_box(&again);
    }
    let after = allocations();

    assert_eq!(hits, 1000, "the depth-7 ancestor covers the deep code");
    assert_eq!(
        after - before,
        0,
        "clone + contains at depth <= INLINE_CAP must not allocate"
    );
}
