//! Rumor mongering (§5.1), after Demers et al. 1988.
//!
//! "When a site receives a new update (rumor), it becomes *infectious* and
//! is willing to share — it repeatedly chooses another member, to which it
//! sends the rumor." This module implements the classic synchronous-round
//! analysis model with the standard variants (blind vs. feedback losing of
//! interest, coin vs. counter), used to validate the convergence properties
//! the paper's protocols rely on and to benchmark variant trade-offs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How an infective site decides it may lose interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Feedback {
    /// Lose interest based on every send ("blind").
    Blind,
    /// Lose interest only when the recipient already knew the rumor.
    WithFeedback,
}

/// How interest is actually lost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossOfInterest {
    /// With probability `1/k` per triggering event.
    Coin {
        /// The `k` in `1/k`.
        k: u32,
    },
    /// Deterministically after `k` triggering events.
    Counter {
        /// Number of events before removal.
        k: u32,
    },
}

/// Configuration of a rumor-mongering run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RumorConfig {
    /// Gossip targets chosen per infective site per round.
    pub fanout: u32,
    /// Feedback variant.
    pub feedback: Feedback,
    /// Loss-of-interest variant.
    pub loss: LossOfInterest,
}

impl Default for RumorConfig {
    fn default() -> Self {
        RumorConfig {
            fanout: 1,
            feedback: Feedback::WithFeedback,
            loss: LossOfInterest::Counter { k: 2 },
        }
    }
}

/// Site state in the SIR epidemic model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SiteState {
    Susceptible,
    Infective { events: u32 },
    Removed,
}

/// Result of a rumor-mongering simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RumorStats {
    /// Rounds until no infective site remained.
    pub rounds: u32,
    /// Sites that never learned the rumor (the *residual*).
    pub residual: usize,
    /// Total messages sent.
    pub messages: u64,
}

/// Run the synchronous rumor-mongering epidemic on `n` sites with site 0
/// initially infective. Deterministic per seed.
pub fn simulate(n: usize, cfg: &RumorConfig, seed: u64) -> RumorStats {
    assert!(n >= 2, "need at least two sites");
    assert!(cfg.fanout >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sites = vec![SiteState::Susceptible; n];
    sites[0] = SiteState::Infective { events: 0 };
    let mut rounds = 0u32;
    let mut messages = 0u64;

    loop {
        let infectives: Vec<usize> = (0..n)
            .filter(|&i| matches!(sites[i], SiteState::Infective { .. }))
            .collect();
        if infectives.is_empty() {
            break;
        }
        rounds += 1;
        for &i in &infectives {
            for _ in 0..cfg.fanout {
                // Choose a random other member.
                let mut t = rng.gen_range(0..n - 1);
                if t >= i {
                    t += 1;
                }
                messages += 1;
                let target_knew = !matches!(sites[t], SiteState::Susceptible);
                if !target_knew {
                    sites[t] = SiteState::Infective { events: 0 };
                }
                let triggers = match cfg.feedback {
                    Feedback::Blind => true,
                    Feedback::WithFeedback => target_knew,
                };
                if triggers {
                    if let SiteState::Infective { events } = &mut sites[i] {
                        match cfg.loss {
                            LossOfInterest::Coin { k } => {
                                if rng.gen_range(0..k.max(1)) == 0 {
                                    sites[i] = SiteState::Removed;
                                    break;
                                }
                            }
                            LossOfInterest::Counter { k } => {
                                *events += 1;
                                if *events >= k {
                                    sites[i] = SiteState::Removed;
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }
        assert!(rounds < 100_000, "rumor epidemic failed to die out");
    }

    let residual = sites
        .iter()
        .filter(|s| matches!(s, SiteState::Susceptible))
        .count();
    RumorStats {
        rounds,
        residual,
        messages,
    }
}

/// One anti-entropy (push-pull) spreading experiment: each round every site
/// exchanges state with one random partner; both end up knowing the rumor if
/// either did. Returns rounds until everyone knows. Anti-entropy guarantees
/// eventual consistency — the property the paper's termination argument
/// leans on ("all processes will eventually see the same data", §5.1).
pub fn anti_entropy_rounds(n: usize, seed: u64) -> u32 {
    assert!(n >= 2);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut knows = vec![false; n];
    knows[0] = true;
    let mut rounds = 0;
    while knows.iter().any(|&k| !k) {
        rounds += 1;
        for i in 0..n {
            let mut t = rng.gen_range(0..n - 1);
            if t >= i {
                t += 1;
            }
            if knows[i] || knows[t] {
                knows[i] = true;
                knows[t] = true;
            }
        }
        assert!(rounds < 10_000, "anti-entropy failed to converge");
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epidemic_reaches_most_sites() {
        let stats = simulate(200, &RumorConfig::default(), 1);
        // Counter-2 feedback rumor mongering leaves a small residual.
        assert!(stats.residual < 20, "residual {}", stats.residual);
        assert!(stats.rounds > 0 && stats.messages > 0);
    }

    #[test]
    fn higher_k_means_lower_residual_more_messages() {
        let low = simulate(
            500,
            &RumorConfig {
                loss: LossOfInterest::Counter { k: 1 },
                ..Default::default()
            },
            7,
        );
        let high = simulate(
            500,
            &RumorConfig {
                loss: LossOfInterest::Counter { k: 5 },
                ..Default::default()
            },
            7,
        );
        assert!(high.residual <= low.residual);
        assert!(high.messages > low.messages);
    }

    #[test]
    fn blind_dies_faster_than_feedback() {
        let blind = simulate(
            300,
            &RumorConfig {
                feedback: Feedback::Blind,
                loss: LossOfInterest::Coin { k: 3 },
                fanout: 1,
            },
            11,
        );
        let feedback = simulate(
            300,
            &RumorConfig {
                feedback: Feedback::WithFeedback,
                loss: LossOfInterest::Coin { k: 3 },
                fanout: 1,
            },
            11,
        );
        // Blind loses interest on every send, so it sends fewer messages and
        // leaves a larger residual.
        assert!(blind.messages <= feedback.messages);
        assert!(blind.residual >= feedback.residual);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = simulate(100, &RumorConfig::default(), 5);
        let b = simulate(100, &RumorConfig::default(), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn anti_entropy_converges_logarithmically() {
        for seed in 0..5 {
            let rounds = anti_entropy_rounds(1024, seed);
            // log2(1024) = 10; push-pull converges in O(log n) w.h.p.
            assert!(rounds <= 30, "rounds {rounds}");
            assert!(rounds >= 4, "suspiciously fast: {rounds}");
        }
    }

    #[test]
    fn two_sites() {
        let stats = simulate(2, &RumorConfig::default(), 0);
        assert_eq!(stats.residual, 0);
        let rounds = anti_entropy_rounds(2, 0);
        assert_eq!(rounds, 1);
    }
}
