//! # ftbb-gossip — epidemic communication and group membership
//!
//! Implements §5.1 and §5.2 of Iamnitchi & Foster (ICPP 2000):
//!
//! * [`rumor`] — rumor-mongering variants (Demers et al. 1988): blind vs.
//!   feedback, coin vs. counter loss of interest, plus anti-entropy
//!   push-pull, with synchronous-round simulators used for validation and
//!   benchmarking of convergence/residual trade-offs.
//! * [`view`] / [`membership`] — the gossip-style membership protocol with
//!   heartbeat counters, last-heard bookkeeping, timeout-based failure
//!   suspicion, cleanup, and gossip servers for joining (van Renesse et al.
//!   1998).
//!
//! All protocol state machines are transport-agnostic: they return the
//! messages to send and the caller (the DES simulator or the threaded
//! runtime) delivers them.

#![warn(missing_docs)]

pub mod membership;
pub mod rumor;
pub mod view;

pub use membership::{Membership, MembershipConfig, MembershipMsg};
pub use rumor::{anti_entropy_rounds, simulate, Feedback, LossOfInterest, RumorConfig, RumorStats};
pub use view::{
    MemberId, MemberRecord, MemberStatus, MembershipView, ViewDigest, DELTA_FULL_REFRESH,
};
