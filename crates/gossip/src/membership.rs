//! The gossip-style group membership protocol (§5.2), after van Renesse,
//! Minsky & Hayden's failure-detection service (Middleware '98).
//!
//! Each member keeps a heartbeat counter; on every gossip tick it increments
//! its own counter and sends its view digest to a few randomly chosen
//! members. A member whose heartbeat has not advanced within `t_fail` is
//! suspected; after `t_cleanup` it is forgotten. New members join by sending
//! their address to a *gossip server* — an ordinary member, except that at
//! least one server is guaranteed to be up — which then propagates the
//! newcomer epidemically.
//!
//! The state machine is transport-agnostic: `tick`/`on_*` return the
//! messages to send, and the caller (DES simulator or threaded runtime)
//! delivers them.

use crate::view::{MemberId, MembershipView, ViewDigest};
use ftbb_des::SimTime;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Protocol parameters. The defaults follow the paper's "parameters … are
/// chosen to keep communication and the probability of false membership
/// information under some threshold values".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MembershipConfig {
    /// Interval between gossip ticks.
    pub gossip_interval: SimTime,
    /// How many members receive each gossip round.
    pub fanout: usize,
    /// Silence threshold for suspecting a member.
    pub t_fail: SimTime,
    /// Silence threshold for forgetting a member.
    pub t_cleanup: SimTime,
    /// Ship per-peer **delta digests** instead of the full heartbeat table
    /// on every gossip tick: entries the peer was already told are
    /// suppressed (first contact and every
    /// [`crate::DELTA_FULL_REFRESH`]-th digest stay full). Receivers need
    /// no delta awareness — a delta is a subset of the full digest and
    /// merges identically.
    pub delta: bool,
    /// Cap on entries per delta digest (0 = uncapped): bounds one gossip
    /// frame's cost regardless of group size. Unshipped news stays
    /// eligible for the next exchange; the sender's own entry always
    /// rides along.
    pub digest_max_entries: usize,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        MembershipConfig {
            gossip_interval: SimTime::from_millis(500),
            fanout: 2,
            t_fail: SimTime::from_secs(5),
            t_cleanup: SimTime::from_secs(20),
            delta: true,
            digest_max_entries: 32,
        }
    }
}

/// A membership message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MembershipMsg {
    /// Periodic heartbeat gossip.
    Gossip(ViewDigest),
    /// A newcomer announcing itself to a gossip server.
    Join {
        /// The joining member.
        member: MemberId,
    },
    /// A gossip server's bootstrap reply: the current view.
    Welcome(ViewDigest),
}

impl MembershipMsg {
    /// Bytes on the wire.
    pub fn wire_size(&self) -> usize {
        match self {
            MembershipMsg::Gossip(d) | MembershipMsg::Welcome(d) => 1 + d.wire_size(),
            MembershipMsg::Join { .. } => 1 + 4,
        }
    }
}

/// One member's protocol instance.
#[derive(Debug, Clone)]
pub struct Membership {
    me: MemberId,
    heartbeat: u64,
    view: MembershipView,
    cfg: MembershipConfig,
    /// True for gossip servers (§5.2): they answer Join with Welcome.
    is_server: bool,
}

impl Membership {
    /// Create a member. Gossip servers answer `Join` messages.
    pub fn new(me: MemberId, cfg: MembershipConfig, now: SimTime, is_server: bool) -> Self {
        let mut view = MembershipView::new(cfg.t_fail, cfg.t_cleanup);
        view.observe(me, 0, now);
        Membership {
            me,
            heartbeat: 0,
            view,
            cfg,
            is_server,
        }
    }

    /// This member's id.
    pub fn id(&self) -> MemberId {
        self.me
    }

    /// The underlying view.
    pub fn view(&self) -> &MembershipView {
        &self.view
    }

    /// Whether this member acts as a gossip server.
    pub fn is_server(&self) -> bool {
        self.is_server
    }

    /// The join message a newcomer sends to its known gossip servers.
    pub fn join_msg(&self) -> MembershipMsg {
        MembershipMsg::Join { member: self.me }
    }

    /// Seed the view with an externally-known member set (heartbeat 0,
    /// observed at `now`). Two deployments use this: statically-wired
    /// nodes running membership (the wiring is their bootstrap), and a
    /// process restored from a checkpoint rejoining with its last-known
    /// world. Members already known keep their (higher) heartbeats.
    pub fn observe_members(&mut self, members: &[MemberId], now: SimTime) {
        for &m in members {
            if m != self.me {
                self.view.observe(m, 0, now);
            }
        }
    }

    /// Gossip tick: bump own heartbeat, sweep expired entries, and pick
    /// `fanout` random alive members to gossip to. Returns `(target, msg)`
    /// pairs for the caller to transmit.
    pub fn tick(&mut self, now: SimTime, rng: &mut SmallRng) -> Vec<(MemberId, MembershipMsg)> {
        self.heartbeat += 1;
        self.view.observe(self.me, self.heartbeat, now);
        self.view.sweep(now);
        let mut targets: Vec<MemberId> = self
            .view
            .alive(now)
            .into_iter()
            .filter(|&m| m != self.me)
            .collect();
        targets.shuffle(rng);
        targets.truncate(self.cfg.fanout);
        if !self.cfg.delta {
            let digest = self.view.digest();
            return targets
                .into_iter()
                .map(|t| (t, MembershipMsg::Gossip(digest.clone())))
                .collect();
        }
        targets
            .into_iter()
            .map(|t| {
                let mut digest = self.view.digest_delta(t, self.cfg.digest_max_entries);
                // Our own heartbeat is the one fact only we originate: it
                // must ride every frame even when the cap's rotation would
                // have skipped it.
                if !digest.entries.iter().any(|&(m, _)| m == self.me) {
                    digest.entries.push((self.me, self.heartbeat));
                }
                (t, MembershipMsg::Gossip(digest))
            })
            .collect()
    }

    /// Handle an incoming membership message. Returns replies to transmit.
    pub fn on_message(
        &mut self,
        from: MemberId,
        msg: &MembershipMsg,
        now: SimTime,
    ) -> Vec<(MemberId, MembershipMsg)> {
        match msg {
            MembershipMsg::Gossip(digest) | MembershipMsg::Welcome(digest) => {
                self.view.merge_digest(digest, now);
                Vec::new()
            }
            MembershipMsg::Join { member } => {
                // Treat the join as a liveness observation, then welcome the
                // newcomer with our view (bootstrap) if we are a server.
                self.view.observe(*member, 0, now);
                let _ = from;
                if self.is_server {
                    vec![(*member, MembershipMsg::Welcome(self.view.digest()))]
                } else {
                    Vec::new()
                }
            }
        }
    }

    /// Members currently believed alive (including self).
    pub fn alive_members(&self, now: SimTime) -> Vec<MemberId> {
        let mut alive = self.view.alive(now);
        if !alive.contains(&self.me) {
            alive.push(self.me);
            alive.sort_unstable();
        }
        alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Synchronous test harness: a set of members, instant delivery.
    struct Net {
        members: Vec<Membership>,
        rng: SmallRng,
    }

    impl Net {
        fn new(n: usize, servers: usize, cfg: MembershipConfig) -> Self {
            let members = (0..n)
                .map(|i| Membership::new(i as MemberId, cfg, SimTime::ZERO, i < servers))
                .collect();
            Net {
                members,
                rng: SmallRng::seed_from_u64(42),
            }
        }

        /// One synchronous gossip round at time `now`; `down` members do not
        /// tick (crashed) but are still message sinks (dropped).
        fn round(&mut self, now: SimTime, down: &[MemberId]) {
            let mut outbox = Vec::new();
            for m in &mut self.members {
                if down.contains(&m.id()) {
                    continue;
                }
                for (to, msg) in m.tick(now, &mut self.rng) {
                    outbox.push((m.id(), to, msg));
                }
            }
            let mut replies = Vec::new();
            for (from, to, msg) in outbox {
                if down.contains(&to) {
                    continue;
                }
                let more = self.members[to as usize].on_message(from, &msg, now);
                for (rt, rm) in more {
                    replies.push((to, rt, rm));
                }
            }
            for (from, to, msg) in replies {
                if !down.contains(&to) {
                    self.members[to as usize].on_message(from, &msg, now);
                }
            }
        }
    }

    fn cfg() -> MembershipConfig {
        MembershipConfig {
            gossip_interval: SimTime::from_millis(500),
            fanout: 2,
            t_fail: SimTime::from_secs(4),
            t_cleanup: SimTime::from_secs(12),
            delta: true,
            digest_max_entries: 0,
        }
    }

    /// Legacy full-digest gossip (every frame carries the whole table).
    fn full_cfg() -> MembershipConfig {
        MembershipConfig {
            delta: false,
            ..cfg()
        }
    }

    #[test]
    fn views_converge_to_full_group() {
        let mut net = Net::new(16, 1, cfg());
        // Everyone joins via server 0.
        for i in 1..16 {
            let join = net.members[i].join_msg();
            let replies = net.members[0].on_message(i as MemberId, &join, SimTime::ZERO);
            for (to, msg) in replies {
                net.members[to as usize].on_message(0, &msg, SimTime::ZERO);
            }
        }
        for r in 0..20 {
            net.round(SimTime::from_millis(500 * (r + 1)), &[]);
        }
        let now = SimTime::from_secs(10);
        for m in &net.members {
            assert_eq!(
                m.view().known().len(),
                16,
                "member {} sees {} members",
                m.id(),
                m.view().known().len()
            );
            assert_eq!(m.alive_members(now).len(), 16);
        }
    }

    #[test]
    fn full_digests_still_converge() {
        let mut net = Net::new(16, 1, full_cfg());
        for i in 1..16 {
            let join = net.members[i].join_msg();
            let replies = net.members[0].on_message(i as MemberId, &join, SimTime::ZERO);
            for (to, msg) in replies {
                net.members[to as usize].on_message(0, &msg, SimTime::ZERO);
            }
        }
        for r in 0..20 {
            net.round(SimTime::from_millis(500 * (r + 1)), &[]);
        }
        for m in &net.members {
            assert_eq!(m.view().known().len(), 16, "member {}", m.id());
        }
    }

    #[test]
    fn capped_deltas_converge_and_suspect() {
        // Hard cap of 8 entries per gossip frame, 24 members: the rotation
        // cursor plus periodic full refreshes must still spread the whole
        // roster, and a crash must still be suspected everywhere. The cap
        // thins per-round coverage to ~fanout·(cap+1)/n of the table, so
        // `t_fail` is widened to 6 s (12 rounds) to keep the false-
        // suspicion probability negligible — the trade-off the scale
        // sweep in `ftbb-bench` quantifies.
        let mut net = Net::new(
            24,
            1,
            MembershipConfig {
                digest_max_entries: 8,
                t_fail: SimTime::from_secs(6),
                t_cleanup: SimTime::from_secs(18),
                ..cfg()
            },
        );
        for i in 1..24 {
            let join = net.members[i].join_msg();
            let replies = net.members[0].on_message(i as MemberId, &join, SimTime::ZERO);
            for (to, msg) in replies {
                net.members[to as usize].on_message(0, &msg, SimTime::ZERO);
            }
        }
        let mut now = SimTime::ZERO;
        for _ in 0..40 {
            now += SimTime::from_millis(500);
            net.round(now, &[]);
        }
        for m in &net.members {
            assert_eq!(m.view().known().len(), 24, "member {}", m.id());
            assert_eq!(m.view().suspected(now).len(), 0, "member {}", m.id());
        }
        // Member 7 crashes; t_fail = 6 s of silence suspects it everywhere.
        // The window leaves slack beyond t_fail: 7's final heartbeat keeps
        // propagating (and refreshing last-heard) for a few capped rounds
        // after the crash before every view goes silent about it.
        let crash_at = now;
        while now < crash_at + SimTime::from_secs(13) {
            net.round(now, &[7]);
            now += SimTime::from_millis(500);
        }
        for m in &net.members {
            if m.id() == 7 {
                continue;
            }
            assert!(
                !m.view().alive(now).contains(&7),
                "member {} still thinks 7 is alive",
                m.id()
            );
        }
    }

    #[test]
    fn delta_frames_shrink_after_convergence() {
        // Once views agree, a delta frame carries only fresh heartbeats —
        // never the dead weight of the full table. With fanout 2 and 32
        // members, the news a peer has not been told stays far below the
        // table size only when suppression actually works; the full-digest
        // baseline ships 32 entries every frame.
        let n = 32;
        let mut net = Net::new(n, 1, cfg());
        for i in 1..n {
            let join = net.members[i].join_msg();
            let replies = net.members[0].on_message(i as MemberId, &join, SimTime::ZERO);
            for (to, msg) in replies {
                net.members[to as usize].on_message(0, &msg, SimTime::ZERO);
            }
        }
        let mut now = SimTime::ZERO;
        for _ in 0..30 {
            now += SimTime::from_millis(500);
            net.round(now, &[]);
        }
        // Steady state: measure one round of outbound digests by hand.
        let mut sizes = Vec::new();
        for m in &mut net.members {
            for (_, msg) in m.tick(now + SimTime::from_millis(500), &mut net.rng) {
                if let MembershipMsg::Gossip(d) = msg {
                    sizes.push(d.entries.len());
                }
            }
        }
        let max = sizes.iter().copied().max().unwrap();
        assert!(
            max <= n,
            "a delta is never larger than the table ({max} > {n})"
        );
        assert!(
            sizes.iter().any(|&s| s < n),
            "suppression never shrank a single frame: {sizes:?}"
        );
    }

    #[test]
    fn crashed_member_is_suspected_then_forgotten() {
        let mut net = Net::new(8, 1, cfg());
        // Bootstrap by direct join + rounds.
        for i in 1..8 {
            let join = net.members[i].join_msg();
            let replies = net.members[0].on_message(i as MemberId, &join, SimTime::ZERO);
            for (to, msg) in replies {
                net.members[to as usize].on_message(0, &msg, SimTime::ZERO);
            }
        }
        for r in 0..10 {
            net.round(SimTime::from_millis(500 * (r + 1)), &[]);
        }
        // Member 5 crashes at t=5s; keep gossiping until t=12s.
        let mut now = SimTime::from_secs(5);
        while now < SimTime::from_secs(12) {
            net.round(now, &[5]);
            now += SimTime::from_millis(500);
        }
        // t_fail = 4s: by t=12s member 5 is suspected everywhere.
        for m in &net.members {
            if m.id() == 5 {
                continue;
            }
            assert!(
                !m.view().alive(now).contains(&5),
                "member {} still thinks 5 is alive",
                m.id()
            );
        }
        // Keep going past t_cleanup (12s after last heartbeat ~5s → t=17s+).
        while now < SimTime::from_secs(20) {
            net.round(now, &[5]);
            now += SimTime::from_millis(500);
        }
        for m in &net.members {
            if m.id() == 5 {
                continue;
            }
            assert!(
                !m.view().known().contains(&5),
                "member {} did not forget 5",
                m.id()
            );
        }
    }

    #[test]
    fn live_members_not_suspected_under_gossip() {
        let mut net = Net::new(12, 1, cfg());
        for i in 1..12 {
            let join = net.members[i].join_msg();
            let replies = net.members[0].on_message(i as MemberId, &join, SimTime::ZERO);
            for (to, msg) in replies {
                net.members[to as usize].on_message(0, &msg, SimTime::ZERO);
            }
        }
        let mut now = SimTime::ZERO;
        for _ in 0..60 {
            now += SimTime::from_millis(500);
            net.round(now, &[]);
        }
        // No false suspicions with reliable delivery and regular ticks.
        for m in &net.members {
            assert_eq!(m.view().suspected(now).len(), 0, "member {}", m.id());
        }
    }

    #[test]
    fn observe_members_seeds_without_lowering_heartbeats() {
        let mut m = Membership::new(3, cfg(), SimTime::ZERO, false);
        m.on_message(
            7,
            &MembershipMsg::Gossip(ViewDigest {
                entries: vec![(7, 9)],
            }),
            SimTime::ZERO,
        );
        m.observe_members(&[3, 5, 7], SimTime::from_millis(10));
        // Self is never observed as a peer twice; 5 is new at heartbeat 0;
        // 7 keeps its higher heartbeat.
        assert_eq!(m.view().known(), vec![3, 5, 7]);
        assert_eq!(m.view().record(5).unwrap().heartbeat, 0);
        assert_eq!(m.view().record(7).unwrap().heartbeat, 9);
    }

    #[test]
    fn non_server_ignores_join() {
        let mut m = Membership::new(3, cfg(), SimTime::ZERO, false);
        let replies = m.on_message(9, &MembershipMsg::Join { member: 9 }, SimTime::ZERO);
        assert!(replies.is_empty());
        // But it still learned about the newcomer.
        assert!(m.view().known().contains(&9));
    }

    #[test]
    fn wire_sizes() {
        let m = Membership::new(0, cfg(), SimTime::ZERO, true);
        assert_eq!(m.join_msg().wire_size(), 5);
        let digest = m.view().digest();
        assert_eq!(
            MembershipMsg::Gossip(digest.clone()).wire_size(),
            1 + digest.wire_size()
        );
    }
}
