//! Membership views (§5.2).
//!
//! "Each member process maintains a view of group membership. The view
//! defines a set of processes that the member believes are part of the
//! group at any given time. In addition, it contains specific information
//! designed to log the members' activity by keeping track of when it last
//! heard of each (known) member, directly from it or through the gossip
//! system."

use ftbb_des::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Member identifier (aligned with `ftbb_des::ProcId` indices).
pub type MemberId = u32;

/// Liveness judgement for one member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemberStatus {
    /// Heard from recently.
    Alive,
    /// Silent past the failure timeout — presumed crashed.
    Suspected,
}

/// Per-member bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemberRecord {
    /// Largest heartbeat counter seen for this member.
    pub heartbeat: u64,
    /// When the heartbeat last increased (local clock).
    pub last_heard: SimTime,
}

/// A heartbeat digest shipped inside gossip messages.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ViewDigest {
    /// `(member, heartbeat)` entries.
    pub entries: Vec<(MemberId, u64)>,
}

impl ViewDigest {
    /// Wire size: 4-byte member + 8-byte heartbeat per entry + 2 header.
    pub fn wire_size(&self) -> usize {
        2 + 12 * self.entries.len()
    }
}

/// A membership view: heartbeat table plus last-heard bookkeeping.
///
/// Swept (forgotten) members leave a *tombstone* recording their last
/// heartbeat: stale digests still circulating in the group cannot resurrect
/// a ghost, but a genuinely recovered member (whose heartbeat advances past
/// the tombstone, or which reappears after the tombstone expires) is
/// re-admitted as a newcomer — van Renesse et al.'s solution to the
/// reinsertion problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MembershipView {
    records: BTreeMap<MemberId, MemberRecord>,
    /// `member -> (last heartbeat at sweep, sweep time)`.
    tombstones: BTreeMap<MemberId, (u64, SimTime)>,
    /// Failure-suspicion timeout: silent longer than this ⇒ suspected.
    pub t_fail: SimTime,
    /// Cleanup timeout: suspected longer than this ⇒ forgotten entirely
    /// (prevents unbounded table growth; must be ≫ `t_fail` so that
    /// re-propagated old heartbeats do not resurrect ghosts).
    pub t_cleanup: SimTime,
}

impl MembershipView {
    /// Empty view with the given timeouts.
    pub fn new(t_fail: SimTime, t_cleanup: SimTime) -> Self {
        assert!(
            t_cleanup >= t_fail,
            "cleanup must not precede failure timeout"
        );
        MembershipView {
            records: BTreeMap::new(),
            tombstones: BTreeMap::new(),
            t_fail,
            t_cleanup,
        }
    }

    /// Record a heartbeat observation; updates `last_heard` only if the
    /// heartbeat increased (stale gossip must not refresh liveness), and
    /// ignores tombstoned entries unless the heartbeat proves recovery.
    pub fn observe(&mut self, member: MemberId, heartbeat: u64, now: SimTime) -> bool {
        if let Some(&(tomb_hb, tomb_at)) = self.tombstones.get(&member) {
            let expired = now.saturating_sub(tomb_at) >= self.t_cleanup;
            if heartbeat <= tomb_hb && !expired {
                return false; // stale gossip about a forgotten member
            }
            self.tombstones.remove(&member);
        }
        match self.records.get_mut(&member) {
            Some(rec) => {
                if heartbeat > rec.heartbeat {
                    rec.heartbeat = heartbeat;
                    rec.last_heard = now;
                    true
                } else {
                    false
                }
            }
            None => {
                self.records.insert(
                    member,
                    MemberRecord {
                        heartbeat,
                        last_heard: now,
                    },
                );
                true
            }
        }
    }

    /// Merge a digest; returns how many entries carried news.
    pub fn merge_digest(&mut self, digest: &ViewDigest, now: SimTime) -> usize {
        digest
            .entries
            .iter()
            .filter(|&&(m, hb)| self.observe(m, hb, now))
            .count()
    }

    /// Build the digest of everything this view knows.
    pub fn digest(&self) -> ViewDigest {
        ViewDigest {
            entries: self
                .records
                .iter()
                .map(|(&m, r)| (m, r.heartbeat))
                .collect(),
        }
    }

    /// Status of one member at local time `now`.
    pub fn status(&self, member: MemberId, now: SimTime) -> Option<MemberStatus> {
        self.records.get(&member).map(|r| {
            if now.saturating_sub(r.last_heard) >= self.t_fail {
                MemberStatus::Suspected
            } else {
                MemberStatus::Alive
            }
        })
    }

    /// Members currently believed alive.
    pub fn alive(&self, now: SimTime) -> Vec<MemberId> {
        self.records
            .iter()
            .filter(|(_, r)| now.saturating_sub(r.last_heard) < self.t_fail)
            .map(|(&m, _)| m)
            .collect()
    }

    /// Members currently suspected.
    pub fn suspected(&self, now: SimTime) -> Vec<MemberId> {
        self.records
            .iter()
            .filter(|(_, r)| now.saturating_sub(r.last_heard) >= self.t_fail)
            .map(|(&m, _)| m)
            .collect()
    }

    /// Forget members silent past `t_cleanup`, leaving tombstones so stale
    /// gossip cannot resurrect them. Returns those forgotten.
    pub fn sweep(&mut self, now: SimTime) -> Vec<MemberId> {
        let dead: Vec<MemberId> = self
            .records
            .iter()
            .filter(|(_, r)| now.saturating_sub(r.last_heard) >= self.t_cleanup)
            .map(|(&m, _)| m)
            .collect();
        for m in &dead {
            if let Some(rec) = self.records.remove(m) {
                self.tombstones.insert(*m, (rec.heartbeat, now));
            }
        }
        dead
    }

    /// All known members (alive or suspected).
    pub fn known(&self) -> Vec<MemberId> {
        self.records.keys().copied().collect()
    }

    /// Record for one member.
    pub fn record(&self, member: MemberId) -> Option<&MemberRecord> {
        self.records.get(&member)
    }

    /// Number of known members.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn view() -> MembershipView {
        MembershipView::new(t(10), t(30))
    }

    #[test]
    fn observe_new_member() {
        let mut v = view();
        assert!(v.observe(1, 1, t(0)));
        assert_eq!(v.status(1, t(5)), Some(MemberStatus::Alive));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn stale_heartbeat_does_not_refresh() {
        let mut v = view();
        v.observe(1, 5, t(0));
        // Same heartbeat later: no refresh.
        assert!(!v.observe(1, 5, t(8)));
        assert_eq!(v.status(1, t(12)), Some(MemberStatus::Suspected));
        // Larger heartbeat refreshes.
        assert!(v.observe(1, 6, t(12)));
        assert_eq!(v.status(1, t(13)), Some(MemberStatus::Alive));
    }

    #[test]
    fn suspicion_after_t_fail() {
        let mut v = view();
        v.observe(2, 1, t(0));
        assert_eq!(v.status(2, t(9)), Some(MemberStatus::Alive));
        assert_eq!(v.status(2, t(10)), Some(MemberStatus::Suspected));
        assert_eq!(v.alive(t(11)), Vec::<MemberId>::new());
        assert_eq!(v.suspected(t(11)), vec![2]);
    }

    #[test]
    fn sweep_forgets_after_cleanup() {
        let mut v = view();
        v.observe(3, 1, t(0));
        assert!(v.sweep(t(29)).is_empty());
        assert_eq!(v.sweep(t(30)), vec![3]);
        assert!(v.is_empty());
        assert_eq!(v.status(3, t(31)), None);
    }

    #[test]
    fn tombstone_blocks_stale_resurrection() {
        let mut v = view();
        v.observe(3, 7, t(0));
        v.sweep(t(30));
        // Stale gossip with the old heartbeat: rejected.
        assert!(!v.observe(3, 7, t(31)));
        assert!(!v.observe(3, 5, t(31)));
        assert!(v.is_empty());
        // A higher heartbeat proves the member is actually alive: readmitted.
        assert!(v.observe(3, 8, t(32)));
        assert_eq!(v.status(3, t(33)), Some(MemberStatus::Alive));
    }

    #[test]
    fn tombstone_expires_allowing_true_rejoin() {
        let mut v = view();
        v.observe(3, 7, t(0));
        v.sweep(t(30));
        // After another t_cleanup the tombstone expires; a fresh incarnation
        // with a low heartbeat may rejoin.
        assert!(!v.observe(3, 0, t(40)));
        assert!(v.observe(3, 0, t(60)));
        assert_eq!(v.status(3, t(61)), Some(MemberStatus::Alive));
    }

    #[test]
    fn digest_merge_round_trip() {
        let mut a = view();
        a.observe(1, 4, t(0));
        a.observe(2, 7, t(0));
        let mut b = view();
        b.observe(2, 3, t(1)); // stale entry for 2
        let news = b.merge_digest(&a.digest(), t(2));
        assert_eq!(news, 2); // member 1 is new, member 2's heartbeat advanced
        assert_eq!(b.record(2).unwrap().heartbeat, 7);
        // Re-merging the same digest brings nothing.
        assert_eq!(b.merge_digest(&a.digest(), t(3)), 0);
    }

    #[test]
    fn digest_wire_size() {
        let mut v = view();
        v.observe(1, 1, t(0));
        v.observe(2, 1, t(0));
        assert_eq!(v.digest().wire_size(), 2 + 24);
    }

    #[test]
    #[should_panic(expected = "cleanup must not precede")]
    fn bad_timeouts_rejected() {
        MembershipView::new(t(10), t(5));
    }
}
