//! Membership views (§5.2).
//!
//! "Each member process maintains a view of group membership. The view
//! defines a set of processes that the member believes are part of the
//! group at any given time. In addition, it contains specific information
//! designed to log the members' activity by keeping track of when it last
//! heard of each (known) member, directly from it or through the gossip
//! system."

use ftbb_des::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Member identifier (aligned with `ftbb_des::ProcId` indices).
pub type MemberId = u32;

/// Liveness judgement for one member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemberStatus {
    /// Heard from recently.
    Alive,
    /// Silent past the failure timeout — presumed crashed.
    Suspected,
}

/// Per-member bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemberRecord {
    /// Largest heartbeat counter seen for this member.
    pub heartbeat: u64,
    /// When the heartbeat last increased (local clock).
    pub last_heard: SimTime,
}

/// A heartbeat digest shipped inside gossip messages.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ViewDigest {
    /// `(member, heartbeat)` entries.
    pub entries: Vec<(MemberId, u64)>,
}

impl ViewDigest {
    /// Wire size: 4-byte member + 8-byte heartbeat per entry + 2 header.
    pub fn wire_size(&self) -> usize {
        2 + 12 * self.entries.len()
    }
}

/// After this many consecutive delta digests to the same peer, the next
/// digest is a full refresh: news lost with a dropped frame (or left
/// behind by a capped delta) reaches the peer within a bounded number of
/// exchanges regardless.
pub const DELTA_FULL_REFRESH: u32 = 16;

/// A membership view: heartbeat table plus last-heard bookkeeping.
///
/// Swept (forgotten) members leave a *tombstone* recording their last
/// heartbeat: stale digests still circulating in the group cannot resurrect
/// a ghost, but a genuinely recovered member (whose heartbeat advances past
/// the tombstone, or which reappears after the tombstone expires) is
/// re-admitted as a newcomer — van Renesse et al.'s solution to the
/// reinsertion problem.
///
/// Besides the table itself the view keeps *delta bookkeeping*: a monotone
/// edit counter, the counter value at each record's latest news, and a
/// per-peer watermark of the last counter value shipped. [`Self::digest_delta`]
/// uses these to gossip only what a peer has not been told yet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MembershipView {
    records: BTreeMap<MemberId, MemberRecord>,
    /// `member -> (last heartbeat at sweep, sweep time)`.
    tombstones: BTreeMap<MemberId, (u64, SimTime)>,
    /// Failure-suspicion timeout: silent longer than this ⇒ suspected.
    pub t_fail: SimTime,
    /// Cleanup timeout: suspected longer than this ⇒ forgotten entirely
    /// (prevents unbounded table growth; must be ≫ `t_fail` so that
    /// re-propagated old heartbeats do not resurrect ghosts).
    pub t_cleanup: SimTime,
    /// Monotone edit counter: bumped once per news-bearing observation.
    version: u64,
    /// `member -> version` at which its record last carried news.
    record_versions: BTreeMap<MemberId, u64>,
    /// `peer -> (version last shipped, deltas since the last full digest)`.
    watermarks: BTreeMap<MemberId, (u64, u32)>,
    /// Rotation cursor for capped deltas (member-id space): successive
    /// truncated digests cover different slices of the table.
    delta_cursor: MemberId,
}

impl PartialEq for MembershipView {
    /// Views are compared by their observable membership state only. The
    /// delta bookkeeping (versions, watermarks, cursor) depends on *gossip
    /// history* — which peers were told what, in which order — not on the
    /// heartbeat lattice value, so two views that merged the same digests
    /// in different orders still compare equal.
    fn eq(&self, other: &Self) -> bool {
        self.records == other.records
            && self.tombstones == other.tombstones
            && self.t_fail == other.t_fail
            && self.t_cleanup == other.t_cleanup
    }
}

impl MembershipView {
    /// Empty view with the given timeouts.
    pub fn new(t_fail: SimTime, t_cleanup: SimTime) -> Self {
        assert!(
            t_cleanup >= t_fail,
            "cleanup must not precede failure timeout"
        );
        MembershipView {
            records: BTreeMap::new(),
            tombstones: BTreeMap::new(),
            t_fail,
            t_cleanup,
            version: 0,
            record_versions: BTreeMap::new(),
            watermarks: BTreeMap::new(),
            delta_cursor: 0,
        }
    }

    /// Record a heartbeat observation; updates `last_heard` only if the
    /// heartbeat increased (stale gossip must not refresh liveness), and
    /// ignores tombstoned entries unless the heartbeat proves recovery.
    pub fn observe(&mut self, member: MemberId, heartbeat: u64, now: SimTime) -> bool {
        if let Some(&(tomb_hb, tomb_at)) = self.tombstones.get(&member) {
            let expired = now.saturating_sub(tomb_at) >= self.t_cleanup;
            if heartbeat <= tomb_hb && !expired {
                return false; // stale gossip about a forgotten member
            }
            self.tombstones.remove(&member);
        }
        let news = match self.records.get_mut(&member) {
            Some(rec) => {
                if heartbeat > rec.heartbeat {
                    rec.heartbeat = heartbeat;
                    rec.last_heard = now;
                    true
                } else {
                    false
                }
            }
            None => {
                self.records.insert(
                    member,
                    MemberRecord {
                        heartbeat,
                        last_heard: now,
                    },
                );
                true
            }
        };
        if news {
            self.version += 1;
            self.record_versions.insert(member, self.version);
        }
        news
    }

    /// Merge a digest; returns how many entries carried news.
    pub fn merge_digest(&mut self, digest: &ViewDigest, now: SimTime) -> usize {
        digest
            .entries
            .iter()
            .filter(|&&(m, hb)| self.observe(m, hb, now))
            .count()
    }

    /// Build the digest of everything this view knows.
    pub fn digest(&self) -> ViewDigest {
        ViewDigest {
            entries: self
                .records
                .iter()
                .map(|(&m, r)| (m, r.heartbeat))
                .collect(),
        }
    }

    /// Build the digest of news this view has **not yet shipped to `peer`**.
    ///
    /// First contact — and every [`DELTA_FULL_REFRESH`]-th digest to the
    /// same peer — makes the whole table eligible again, so a peer that
    /// missed frames (drops, restarts) is healed within a bounded number
    /// of exchanges. Otherwise only records whose heartbeat advanced
    /// since the peer was last told are eligible. Either way the digest
    /// is capped at `cap` entries (0 = uncapped): one frame's cost stays
    /// bounded no matter the group size, including refresh frames — at
    /// scale a frame must never ship a thousand-entry table. A capped
    /// digest starts at a rotating cursor and does **not** advance the
    /// watermark (a capped refresh stays *due*): the unshipped news
    /// remains eligible for the next exchange, and successive slices
    /// cover the whole table.
    ///
    /// Merging stays idempotent and associative — a delta is just a subset
    /// of the full digest — so receivers need no delta awareness at all.
    pub fn digest_delta(&mut self, peer: MemberId, cap: usize) -> ViewDigest {
        let fresh = match self.watermarks.get(&peer) {
            Some(&(w, c)) if c < DELTA_FULL_REFRESH => Some((w, c)),
            _ => None,
        };
        let eligible: Vec<(MemberId, u64)> = match fresh {
            Some((since, _)) => self
                .records
                .iter()
                .filter(|(m, _)| self.record_versions.get(m).copied().unwrap_or(u64::MAX) > since)
                .map(|(&m, r)| (m, r.heartbeat))
                .collect(),
            // First contact or refresh due: everything is eligible.
            None => self
                .records
                .iter()
                .map(|(&m, r)| (m, r.heartbeat))
                .collect(),
        };
        if cap == 0 || eligible.len() <= cap {
            // Complete shipment: the peer is square with the table as of
            // `version`. A completed refresh restarts the delta cycle.
            let counter = match fresh {
                Some((_, c)) => c + 1,
                None => 0,
            };
            self.watermarks.insert(peer, (self.version, counter));
            return ViewDigest { entries: eligible };
        }
        // Truncated: take `cap` entries starting at the cursor (wrapping),
        // then park the cursor after the last one shipped. The watermark
        // stays put so everything unshipped remains news next time; a
        // truncated refresh leaves the refresh due, so rotation continues
        // until the peer has been shown the whole table.
        let start = eligible.partition_point(|&(m, _)| m < self.delta_cursor);
        let mut entries = Vec::with_capacity(cap);
        for i in 0..cap {
            entries.push(eligible[(start + i) % eligible.len()]);
        }
        self.delta_cursor = entries.last().expect("cap > 0").0.wrapping_add(1);
        if let Some((since, count)) = fresh {
            self.watermarks.insert(peer, (since, count + 1));
        }
        ViewDigest { entries }
    }

    /// Delta bookkeeping for `peer`: `(version last shipped, deltas since
    /// the last full digest)`. Exposed for tests and benches.
    pub fn watermark(&self, peer: MemberId) -> Option<(u64, u32)> {
        self.watermarks.get(&peer).copied()
    }

    /// Status of one member at local time `now`.
    pub fn status(&self, member: MemberId, now: SimTime) -> Option<MemberStatus> {
        self.records.get(&member).map(|r| {
            if now.saturating_sub(r.last_heard) >= self.t_fail {
                MemberStatus::Suspected
            } else {
                MemberStatus::Alive
            }
        })
    }

    /// Members currently believed alive.
    pub fn alive(&self, now: SimTime) -> Vec<MemberId> {
        self.records
            .iter()
            .filter(|(_, r)| now.saturating_sub(r.last_heard) < self.t_fail)
            .map(|(&m, _)| m)
            .collect()
    }

    /// Members currently suspected.
    pub fn suspected(&self, now: SimTime) -> Vec<MemberId> {
        self.records
            .iter()
            .filter(|(_, r)| now.saturating_sub(r.last_heard) >= self.t_fail)
            .map(|(&m, _)| m)
            .collect()
    }

    /// Forget members silent past `t_cleanup`, leaving tombstones so stale
    /// gossip cannot resurrect them. Returns those forgotten.
    pub fn sweep(&mut self, now: SimTime) -> Vec<MemberId> {
        let dead: Vec<MemberId> = self
            .records
            .iter()
            .filter(|(_, r)| now.saturating_sub(r.last_heard) >= self.t_cleanup)
            .map(|(&m, _)| m)
            .collect();
        for m in &dead {
            if let Some(rec) = self.records.remove(m) {
                self.tombstones.insert(*m, (rec.heartbeat, now));
            }
            self.record_versions.remove(m);
            // Forgotten peers lose their watermark too: if the member ever
            // rejoins it is first contact again and gets a full digest.
            self.watermarks.remove(m);
        }
        dead
    }

    /// All known members (alive or suspected).
    pub fn known(&self) -> Vec<MemberId> {
        self.records.keys().copied().collect()
    }

    /// Record for one member.
    pub fn record(&self, member: MemberId) -> Option<&MemberRecord> {
        self.records.get(&member)
    }

    /// Number of known members.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn view() -> MembershipView {
        MembershipView::new(t(10), t(30))
    }

    #[test]
    fn observe_new_member() {
        let mut v = view();
        assert!(v.observe(1, 1, t(0)));
        assert_eq!(v.status(1, t(5)), Some(MemberStatus::Alive));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn stale_heartbeat_does_not_refresh() {
        let mut v = view();
        v.observe(1, 5, t(0));
        // Same heartbeat later: no refresh.
        assert!(!v.observe(1, 5, t(8)));
        assert_eq!(v.status(1, t(12)), Some(MemberStatus::Suspected));
        // Larger heartbeat refreshes.
        assert!(v.observe(1, 6, t(12)));
        assert_eq!(v.status(1, t(13)), Some(MemberStatus::Alive));
    }

    #[test]
    fn suspicion_after_t_fail() {
        let mut v = view();
        v.observe(2, 1, t(0));
        assert_eq!(v.status(2, t(9)), Some(MemberStatus::Alive));
        assert_eq!(v.status(2, t(10)), Some(MemberStatus::Suspected));
        assert_eq!(v.alive(t(11)), Vec::<MemberId>::new());
        assert_eq!(v.suspected(t(11)), vec![2]);
    }

    #[test]
    fn sweep_forgets_after_cleanup() {
        let mut v = view();
        v.observe(3, 1, t(0));
        assert!(v.sweep(t(29)).is_empty());
        assert_eq!(v.sweep(t(30)), vec![3]);
        assert!(v.is_empty());
        assert_eq!(v.status(3, t(31)), None);
    }

    #[test]
    fn tombstone_blocks_stale_resurrection() {
        let mut v = view();
        v.observe(3, 7, t(0));
        v.sweep(t(30));
        // Stale gossip with the old heartbeat: rejected.
        assert!(!v.observe(3, 7, t(31)));
        assert!(!v.observe(3, 5, t(31)));
        assert!(v.is_empty());
        // A higher heartbeat proves the member is actually alive: readmitted.
        assert!(v.observe(3, 8, t(32)));
        assert_eq!(v.status(3, t(33)), Some(MemberStatus::Alive));
    }

    #[test]
    fn tombstone_expires_allowing_true_rejoin() {
        let mut v = view();
        v.observe(3, 7, t(0));
        v.sweep(t(30));
        // After another t_cleanup the tombstone expires; a fresh incarnation
        // with a low heartbeat may rejoin.
        assert!(!v.observe(3, 0, t(40)));
        assert!(v.observe(3, 0, t(60)));
        assert_eq!(v.status(3, t(61)), Some(MemberStatus::Alive));
    }

    #[test]
    fn digest_merge_round_trip() {
        let mut a = view();
        a.observe(1, 4, t(0));
        a.observe(2, 7, t(0));
        let mut b = view();
        b.observe(2, 3, t(1)); // stale entry for 2
        let news = b.merge_digest(&a.digest(), t(2));
        assert_eq!(news, 2); // member 1 is new, member 2's heartbeat advanced
        assert_eq!(b.record(2).unwrap().heartbeat, 7);
        // Re-merging the same digest brings nothing.
        assert_eq!(b.merge_digest(&a.digest(), t(3)), 0);
    }

    #[test]
    fn digest_wire_size() {
        let mut v = view();
        v.observe(1, 1, t(0));
        v.observe(2, 1, t(0));
        assert_eq!(v.digest().wire_size(), 2 + 24);
    }

    #[test]
    #[should_panic(expected = "cleanup must not precede")]
    fn bad_timeouts_rejected() {
        MembershipView::new(t(10), t(5));
    }

    #[test]
    fn first_delta_is_full_then_only_news() {
        let mut v = view();
        v.observe(1, 4, t(0));
        v.observe(2, 7, t(0));
        // First contact: full digest, watermark planted.
        let d = v.digest_delta(9, 0);
        assert_eq!(d, v.digest());
        assert_eq!(v.watermark(9), Some((2, 0)));
        // Nothing happened since: empty delta.
        assert!(v.digest_delta(9, 0).entries.is_empty());
        // Member 1 advances; only it is news.
        v.observe(1, 5, t(1));
        assert_eq!(v.digest_delta(9, 0).entries, vec![(1, 5)]);
        // Told once, told twice brings nothing new.
        assert!(v.digest_delta(9, 0).entries.is_empty());
    }

    #[test]
    fn deltas_are_per_peer() {
        let mut v = view();
        v.observe(1, 4, t(0));
        v.digest_delta(8, 0); // peer 8 is up to date
        v.observe(2, 9, t(1));
        // Peer 8 only needs the new member; peer 9 needs everything.
        assert_eq!(v.digest_delta(8, 0).entries, vec![(2, 9)]);
        assert_eq!(v.digest_delta(9, 0).entries, vec![(1, 4), (2, 9)]);
    }

    #[test]
    fn watermark_expiry_forces_full_refresh() {
        let mut v = view();
        v.observe(1, 1, t(0));
        v.observe(7, 1, t(0));
        v.digest_delta(9, 0);
        for i in 0..=DELTA_FULL_REFRESH {
            v.observe(1, 2 + u64::from(i), t(1));
            let d = v.digest_delta(9, 0);
            if i == DELTA_FULL_REFRESH {
                // The refresh slot: full digest (member 7 reappears even
                // though only member 1 carried news) and counter reset.
                assert_eq!(d, v.digest());
                assert_eq!(d.entries.len(), 2);
                assert_eq!(v.watermark(9).unwrap().1, 0);
            } else {
                assert_eq!(d.entries.len(), 1, "delta {i}");
            }
        }
    }

    #[test]
    fn capped_delta_rotates_without_advancing_watermark() {
        let mut v = view();
        v.digest_delta(9, 0); // plant the watermark (empty view)
        for m in 0..6 {
            v.observe(m, 10, t(1));
        }
        // Cap 2: three truncated digests cover all six members.
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..3 {
            let d = v.digest_delta(9, 2);
            assert_eq!(d.entries.len(), 2);
            seen.extend(d.entries.iter().map(|&(m, _)| m));
        }
        assert_eq!(seen.len(), 6, "rotation must cover the whole table");
        // Once told (via an uncapped delta), nothing remains.
        let rest = v.digest_delta(9, 0);
        assert_eq!(
            rest.entries.len(),
            6,
            "watermark must not advance while capped"
        );
        assert!(v.digest_delta(9, 0).entries.is_empty());
    }

    #[test]
    fn refresh_frames_are_capped_too() {
        let mut v = view();
        for m in 0..6 {
            v.observe(m, 10, t(0));
        }
        // First contact with a cap: even the "full" bootstrap digest is
        // truncated — no frame ever exceeds the cap, whatever the table
        // size — and the refresh stays due (no watermark planted), so
        // successive slices rotate over the whole table.
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..3 {
            let d = v.digest_delta(9, 2);
            assert_eq!(d.entries.len(), 2);
            seen.extend(d.entries.iter().map(|&(m, _)| m));
            assert!(v.watermark(9).is_none(), "capped refresh stays due");
        }
        assert_eq!(seen.len(), 6, "rotation must cover the whole table");
        // A cap wide enough for the table completes the refresh: the
        // watermark is planted and the delta cycle restarts.
        let d = v.digest_delta(9, 6);
        assert_eq!(d.entries.len(), 6);
        assert_eq!(v.watermark(9).unwrap().1, 0);
        assert!(v.digest_delta(9, 6).entries.is_empty());
    }

    #[test]
    fn sweep_drops_delta_bookkeeping() {
        let mut v = view();
        v.observe(3, 1, t(0));
        v.digest_delta(3, 0);
        assert!(v.watermark(3).is_some());
        v.sweep(t(30));
        // The forgotten peer's watermark is gone: a rejoin gets a full digest.
        assert!(v.watermark(3).is_none());
        v.observe(5, 2, t(31));
        assert_eq!(v.digest_delta(3, 0), v.digest());
    }

    #[test]
    fn view_equality_ignores_gossip_history() {
        let mut a = view();
        let mut b = view();
        // Same observations, merged in different orders and with different
        // peers told: the lattice value is equal, the bookkeeping is not.
        a.observe(1, 3, t(0));
        a.observe(1, 7, t(1));
        b.observe(1, 7, t(1));
        a.digest_delta(9, 0);
        assert_eq!(a, b);
    }
}
