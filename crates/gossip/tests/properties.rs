//! Property-based tests of the membership view: merge semantics must be
//! order-insensitive and monotone, or gossip would diverge.

use ftbb_des::SimTime;
use ftbb_gossip::{MembershipView, ViewDigest};
use proptest::prelude::*;

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

fn view() -> MembershipView {
    MembershipView::new(SimTime::from_secs(5), SimTime::from_secs(20))
}

/// Random digest over a small member universe.
fn digest_strategy() -> impl Strategy<Value = ViewDigest> {
    proptest::collection::vec((0u32..8, 1u64..100), 0..12)
        .prop_map(|entries| ViewDigest { entries })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Heartbeats only ever increase: merging any digest never lowers a
    /// member's recorded heartbeat.
    #[test]
    fn merge_is_monotone(d1 in digest_strategy(), d2 in digest_strategy()) {
        let mut v = view();
        v.merge_digest(&d1, t(1));
        let before: Vec<(u32, u64)> = v.digest().entries;
        v.merge_digest(&d2, t(2));
        let after = v.digest();
        for (m, hb) in before {
            let now = after
                .entries
                .iter()
                .find(|&&(m2, _)| m2 == m)
                .map(|&(_, h)| h)
                .expect("members are never dropped by merging");
            prop_assert!(now >= hb);
        }
    }

    /// Merging digests in either order yields the same heartbeat table.
    #[test]
    fn merge_commutes(d1 in digest_strategy(), d2 in digest_strategy()) {
        let mut a = view();
        a.merge_digest(&d1, t(1));
        a.merge_digest(&d2, t(1));
        let mut b = view();
        b.merge_digest(&d2, t(1));
        b.merge_digest(&d1, t(1));
        prop_assert_eq!(a.digest(), b.digest());
    }

    /// Merging is associative: however the three digests are grouped —
    /// all into one view, or two pre-merged into an intermediate view
    /// whose digest then merges into the third — the resulting heartbeat
    /// table is identical. This is what lets views ride the wire: a
    /// digest of a merged view carries exactly the information of its
    /// inputs, so multi-hop gossip cannot depend on the relay path.
    #[test]
    fn merge_is_associative(
        d1 in digest_strategy(),
        d2 in digest_strategy(),
        d3 in digest_strategy(),
    ) {
        // (d1 ∪ d2) ∪ d3, with the left pair pre-merged in a relay view.
        let mut left_relay = view();
        left_relay.merge_digest(&d1, t(1));
        left_relay.merge_digest(&d2, t(1));
        let mut left = view();
        left.merge_digest(&left_relay.digest(), t(2));
        left.merge_digest(&d3, t(2));

        // d1 ∪ (d2 ∪ d3), with the right pair pre-merged in a relay view.
        let mut right_relay = view();
        right_relay.merge_digest(&d2, t(1));
        right_relay.merge_digest(&d3, t(1));
        let mut right = view();
        right.merge_digest(&d1, t(2));
        right.merge_digest(&right_relay.digest(), t(2));

        // And the flat grouping, no relay at all.
        let mut flat = view();
        flat.merge_digest(&d1, t(2));
        flat.merge_digest(&d2, t(2));
        flat.merge_digest(&d3, t(2));

        prop_assert_eq!(left.digest(), right.digest());
        prop_assert_eq!(flat.digest(), left.digest());
    }

    /// The merged heartbeat is exactly the per-member maximum over the
    /// inputs — not merely an upper bound. Monotonicity alone would allow
    /// an implementation to inflate heartbeats, which would let a relay
    /// keep a dead member looking alive.
    #[test]
    fn merged_heartbeat_is_exactly_the_max(d1 in digest_strategy(), d2 in digest_strategy()) {
        let mut v = view();
        v.merge_digest(&d1, t(1));
        v.merge_digest(&d2, t(1));
        for &(m, hb) in &v.digest().entries {
            let max_in = d1
                .entries
                .iter()
                .chain(&d2.entries)
                .filter(|&&(m2, _)| m2 == m)
                .map(|&(_, h)| h)
                .max();
            prop_assert_eq!(Some(hb), max_in, "member {}", m);
        }
    }

    /// Re-merging a digest is a no-op (idempotence).
    #[test]
    fn merge_is_idempotent(d in digest_strategy()) {
        let mut v = view();
        v.merge_digest(&d, t(1));
        let snapshot = v.digest();
        let news = v.merge_digest(&d, t(2));
        prop_assert_eq!(news, 0);
        prop_assert_eq!(v.digest(), snapshot);
    }

    /// The digest of a merged view dominates both inputs (gossip is a join
    /// in the heartbeat lattice).
    #[test]
    fn digest_is_lattice_join(d1 in digest_strategy(), d2 in digest_strategy()) {
        let mut v = view();
        v.merge_digest(&d1, t(1));
        v.merge_digest(&d2, t(1));
        let joined = v.digest();
        for source in [&d1, &d2] {
            for &(m, hb) in &source.entries {
                let now = joined
                    .entries
                    .iter()
                    .find(|&&(m2, _)| m2 == m)
                    .map(|&(_, h)| h)
                    .unwrap();
                prop_assert!(now >= hb, "member {m}: {now} < {hb}");
            }
        }
    }

    /// Delta-then-merge equals full-merge: a receiver that sees only the
    /// per-peer deltas (shipped after each batch of news) ends with
    /// exactly the view it would have had from full digests. This is the
    /// contract that lets the runtime flip to delta gossip without any
    /// receiver-side changes.
    #[test]
    fn delta_stream_reconstructs_the_full_view(
        batches in proptest::collection::vec(digest_strategy(), 1..8),
    ) {
        let mut sender = view();
        let mut receiver = view();
        for (i, batch) in batches.iter().enumerate() {
            sender.merge_digest(batch, t(i as u64 + 1));
            let delta = sender.digest_delta(99, 0);
            receiver.merge_digest(&delta, t(i as u64 + 1));
        }
        prop_assert_eq!(receiver.digest(), sender.digest());
    }

    /// Replaying a delta (a duplicated or re-ordered frame) is a no-op,
    /// and a second delta with no interleaving news is empty.
    #[test]
    fn delta_replay_is_idempotent(
        d1 in digest_strategy(),
        d2 in digest_strategy(),
    ) {
        let mut sender = view();
        sender.merge_digest(&d1, t(1));
        let first = sender.digest_delta(99, 0);
        sender.merge_digest(&d2, t(2));
        let second = sender.digest_delta(99, 0);

        let mut receiver = view();
        receiver.merge_digest(&first, t(1));
        receiver.merge_digest(&second, t(2));
        let snapshot = receiver.digest();
        // Replay both deltas, out of order: nothing changes.
        prop_assert_eq!(receiver.merge_digest(&second, t(3)), 0);
        prop_assert_eq!(receiver.merge_digest(&first, t(3)), 0);
        prop_assert_eq!(receiver.digest(), snapshot);

        // And with no interleaving news the next delta carries nothing.
        prop_assert!(sender.digest_delta(99, 0).entries.is_empty());
    }

    /// Capped deltas still converge: even when every digest is truncated
    /// to `cap` entries, the rotation cursor plus the periodic full
    /// refresh deliver the whole table within a bounded number of
    /// exchanges.
    #[test]
    fn capped_deltas_eventually_deliver_everything(
        d in digest_strategy(),
        cap in 1usize..4,
    ) {
        let mut sender = view();
        // First contact happens while the sender's table is still empty:
        // the planting "full" digest carries nothing, so everything the
        // receiver ever learns must arrive through capped deltas.
        sender.digest_delta(99, cap);
        sender.merge_digest(&d, t(1));
        let mut receiver = view();
        for round in 0..=(ftbb_gossip::DELTA_FULL_REFRESH as usize + d.entries.len() / cap + 1) {
            let delta = sender.digest_delta(99, cap);
            receiver.merge_digest(&delta, t(round as u64 + 2));
        }
        prop_assert_eq!(receiver.digest(), sender.digest());
    }

    /// Sweeping and re-learning: after a sweep, stale heartbeats cannot
    /// resurrect the member, but strictly newer ones can.
    #[test]
    fn tombstones_block_only_stale(d in digest_strategy()) {
        let mut v = view();
        v.merge_digest(&d, t(0));
        // Everything goes silent; sweep at t_cleanup.
        let dead = v.sweep(t(20_000));
        for &m in &dead {
            let old_hb = d
                .entries
                .iter()
                .filter(|&&(m2, _)| m2 == m)
                .map(|&(_, h)| h)
                .max()
                .unwrap();
            // Stale: rejected.
            prop_assert!(!v.observe(m, old_hb, t(20_001)));
            // Fresh: readmitted.
            prop_assert!(v.observe(m, old_hb + 1, t(20_002)));
        }
    }
}
