//! Execution-profile tracing: the MPE/clog + Jumpshot substitute.
//!
//! Processes declare state transitions (`"bb"`, `"idle"`, `"contract"`, …);
//! the tracer records `(time, process, state)` points which are later folded
//! into per-process state *intervals*, exactly the information Jumpshot
//! renders for the paper's Figures 5 and 6.

use crate::event::ProcId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A single state-transition record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TracePoint {
    /// When the process entered the state.
    pub time: SimTime,
    /// Which process.
    pub proc: ProcId,
    /// State label (interned static string).
    pub state: &'static str,
}

/// A contiguous interval during which a process stayed in one state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateInterval {
    /// Interval start.
    pub start: SimTime,
    /// Interval end (start of the next state, or end of run).
    pub end: SimTime,
    /// State label.
    pub state: &'static str,
}

/// Collects trace points during a run.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    points: Vec<TracePoint>,
}

impl Tracer {
    /// A tracer that records nothing (zero overhead beyond a branch).
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            points: Vec::new(),
        }
    }

    /// A recording tracer.
    pub fn enabled() -> Self {
        Tracer {
            enabled: true,
            points: Vec::new(),
        }
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record that `proc` entered `state` at `time`.
    pub fn record(&mut self, time: SimTime, proc: ProcId, state: &'static str) {
        if self.enabled {
            self.points.push(TracePoint { time, proc, state });
        }
    }

    /// All recorded points, in recording order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Fold the point log into per-process interval timelines.
    ///
    /// `end` closes the final interval of each process (typically the
    /// simulation end time).
    pub fn timelines(&self, nprocs: usize, end: SimTime) -> Vec<Vec<StateInterval>> {
        let mut per_proc: Vec<Vec<&TracePoint>> = vec![Vec::new(); nprocs];
        for p in &self.points {
            if p.proc.index() < nprocs {
                per_proc[p.proc.index()].push(p);
            }
        }
        per_proc
            .into_iter()
            .map(|pts| {
                let mut intervals = Vec::with_capacity(pts.len());
                for w in pts.windows(2) {
                    intervals.push(StateInterval {
                        start: w[0].time,
                        end: w[1].time,
                        state: w[0].state,
                    });
                }
                if let Some(last) = pts.last() {
                    intervals.push(StateInterval {
                        start: last.time,
                        end: end.max(last.time),
                        state: last.state,
                    });
                }
                intervals
            })
            .collect()
    }
}

/// Sum up the time spent in each state for one timeline.
pub fn time_by_state(intervals: &[StateInterval]) -> Vec<(&'static str, SimTime)> {
    let mut acc: Vec<(&'static str, SimTime)> = Vec::new();
    for iv in intervals {
        let d = iv.end.saturating_sub(iv.start);
        match acc.iter_mut().find(|(s, _)| *s == iv.state) {
            Some((_, t)) => *t = t.saturating_add(d),
            None => acc.push((iv.state, d)),
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Tracer::disabled();
        t.record(SimTime::ZERO, ProcId(0), "bb");
        assert!(t.points().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn intervals_fold_correctly() {
        let mut t = Tracer::enabled();
        t.record(SimTime::from_secs(0), ProcId(0), "idle");
        t.record(SimTime::from_secs(2), ProcId(0), "bb");
        t.record(SimTime::from_secs(5), ProcId(0), "idle");
        t.record(SimTime::from_secs(1), ProcId(1), "bb");
        let tl = t.timelines(2, SimTime::from_secs(10));
        assert_eq!(
            tl[0],
            vec![
                StateInterval {
                    start: SimTime::from_secs(0),
                    end: SimTime::from_secs(2),
                    state: "idle"
                },
                StateInterval {
                    start: SimTime::from_secs(2),
                    end: SimTime::from_secs(5),
                    state: "bb"
                },
                StateInterval {
                    start: SimTime::from_secs(5),
                    end: SimTime::from_secs(10),
                    state: "idle"
                },
            ]
        );
        assert_eq!(tl[1].len(), 1);
        assert_eq!(tl[1][0].state, "bb");
        assert_eq!(tl[1][0].end, SimTime::from_secs(10));
    }

    #[test]
    fn time_by_state_accumulates() {
        let mut t = Tracer::enabled();
        t.record(SimTime::from_secs(0), ProcId(0), "bb");
        t.record(SimTime::from_secs(1), ProcId(0), "idle");
        t.record(SimTime::from_secs(3), ProcId(0), "bb");
        let tl = t.timelines(1, SimTime::from_secs(4));
        let sums = time_by_state(&tl[0]);
        let get = |name| {
            sums.iter()
                .find(|(s, _)| *s == name)
                .map(|(_, t)| *t)
                .unwrap()
        };
        assert_eq!(get("bb"), SimTime::from_secs(2));
        assert_eq!(get("idle"), SimTime::from_secs(2));
    }

    #[test]
    fn out_of_range_proc_ignored() {
        let mut t = Tracer::enabled();
        t.record(SimTime::ZERO, ProcId(5), "bb");
        let tl = t.timelines(2, SimTime::from_secs(1));
        assert!(tl[0].is_empty() && tl[1].is_empty());
    }
}
