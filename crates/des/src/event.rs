//! Event envelopes and process identifiers.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a simulated process (dense index into the engine's table).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// What an event delivers to its target process.
#[derive(Debug, Clone)]
pub enum EventKind<M, T> {
    /// Initial activation of a process.
    Start,
    /// A message from another (or the same) process.
    Message {
        /// Sender.
        from: ProcId,
        /// Payload.
        msg: M,
    },
    /// A self-scheduled timer.
    Timer(T),
    /// Crash the target (fail-stop, per the paper's Crash failure model).
    Kill,
}

/// A scheduled event: delivery time, target, and payload.
///
/// Ordering inside the engine queue is `(time, seq)` where `seq` is a
/// monotone counter assigned at scheduling, giving a deterministic total
/// order even for simultaneous events.
#[derive(Debug)]
pub struct Event<M, T> {
    /// Virtual delivery time.
    pub time: SimTime,
    /// Receiving process.
    pub target: ProcId,
    /// Payload.
    pub kind: EventKind<M, T>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_id_display() {
        assert_eq!(format!("{}", ProcId(3)), "P3");
        assert_eq!(format!("{:?}", ProcId(3)), "P3");
        assert_eq!(ProcId(7).index(), 7);
    }
}
