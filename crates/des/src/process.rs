//! The process (actor) abstraction and its effect context.
//!
//! A [`Process`] is a deterministic state machine driven by events. All side
//! effects go through [`Ctx`]: sending messages with an explicit delivery
//! delay, arming timers, tracing state, and halting. The engine applies the
//! effects after the handler returns, so handlers never alias engine state.

use crate::event::ProcId;
use crate::time::SimTime;
use rand::rngs::SmallRng;

/// Effects a process can request during one event handling.
#[derive(Debug)]
pub enum Effect<M, T> {
    /// Deliver `msg` to `to` after `delay` (computed by the caller, e.g. from
    /// a network model). `None` delay means the message is lost in transit —
    /// callers model loss by passing `None`.
    Send {
        /// Destination process.
        to: ProcId,
        /// Transit delay; `None` drops the message (loss).
        delay: Option<SimTime>,
        /// Payload.
        msg: M,
    },
    /// Arm a timer to fire after `delay`.
    Timer {
        /// Delay until the timer fires.
        delay: SimTime,
        /// Timer payload.
        timer: T,
    },
    /// Stop this process permanently (normal completion).
    Halt,
}

/// Per-event effect context handed to process handlers.
pub struct Ctx<'a, M, T> {
    pub(crate) now: SimTime,
    pub(crate) pid: ProcId,
    pub(crate) effects: &'a mut Vec<Effect<M, T>>,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) trace: &'a mut crate::trace::Tracer,
}

impl<'a, M, T> Ctx<'a, M, T> {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This process's id.
    #[inline]
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// Deterministic per-engine RNG (shared; draws are part of the replayable
    /// event order).
    #[inline]
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Send `msg` to `to`, arriving after `delay`.
    #[inline]
    pub fn send(&mut self, to: ProcId, delay: SimTime, msg: M) {
        self.effects.push(Effect::Send {
            to,
            delay: Some(delay),
            msg,
        });
    }

    /// Model a lost message: accounted by the engine but never delivered.
    #[inline]
    pub fn send_lost(&mut self, to: ProcId, msg: M) {
        self.effects.push(Effect::Send {
            to,
            delay: None,
            msg,
        });
    }

    /// Arm a timer that fires after `delay`.
    #[inline]
    pub fn set_timer(&mut self, delay: SimTime, timer: T) {
        self.effects.push(Effect::Timer { delay, timer });
    }

    /// Record a state transition for the execution-profile trace.
    #[inline]
    pub fn trace_state(&mut self, state: &'static str) {
        let (now, pid) = (self.now, self.pid);
        self.trace.record(now, pid, state);
    }

    /// Halt this process (no further events will be delivered).
    #[inline]
    pub fn halt(&mut self) {
        self.effects.push(Effect::Halt);
    }
}

/// A simulated process. Implementations must be deterministic given the
/// event sequence and RNG draws.
pub trait Process {
    /// Message type exchanged between processes.
    type Msg;
    /// Timer payload type.
    type Timer;

    /// Called once at the process's start time.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>);

    /// Called for each delivered message.
    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        from: ProcId,
        msg: Self::Msg,
    );

    /// Called for each fired timer.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>, timer: Self::Timer);

    /// Called when the process is crashed by the failure injector. The
    /// default does nothing — crash is fail-stop.
    fn on_kill(&mut self, _ctx: &mut Ctx<'_, Self::Msg, Self::Timer>) {}
}
