//! # ftbb-des — deterministic discrete-event simulation engine
//!
//! A from-scratch substitute for Parsec, the C-based discrete-event
//! simulation language used in the paper's experimental studies (§6.2):
//! processes are modeled by objects, interactions by timestamped message
//! exchanges, and a virtual clock advances from event to event.
//!
//! Design points:
//!
//! * **Deterministic**: events at equal times dispatch in scheduling order,
//!   and all randomness flows from one seeded RNG, so runs replay exactly.
//! * **Fail-stop crashes** ([`Engine::schedule_crash`]) implement the Crash
//!   failure model of the paper (§4): a crashed process silently drops all
//!   subsequent events; other processes are not notified.
//! * **Explicit delays**: the engine does not know about networks. Senders
//!   attach the transit delay to each message (computed by `ftbb-net`), or
//!   mark it lost.
//! * **Tracing** ([`trace::Tracer`]) records per-process state intervals —
//!   the substitute for the paper's MPE/clog logs and Jumpshot timelines
//!   (Figures 5 and 6).
//!
//! ## Example
//!
//! ```
//! use ftbb_des::{Engine, RunLimits, Process, Ctx, ProcId, SimTime};
//!
//! struct Echo { got: u32 }
//! impl Process for Echo {
//!     type Msg = u32;
//!     type Timer = ();
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, u32, ()>) {
//!         if ctx.pid() == ProcId(0) {
//!             ctx.send(ProcId(1), SimTime::from_millis(2), 42);
//!         }
//!     }
//!     fn on_message(&mut self, ctx: &mut Ctx<'_, u32, ()>, _from: ProcId, m: u32) {
//!         self.got = m;
//!         ctx.halt();
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32, ()>, _t: ()) {}
//! }
//!
//! let mut eng = Engine::new(1);
//! eng.add_process(Echo { got: 0 }, SimTime::ZERO);
//! let receiver = eng.add_process(Echo { got: 0 }, SimTime::ZERO);
//! let stats = eng.run(RunLimits::none());
//! assert_eq!(eng.process(receiver).got, 42);
//! assert_eq!(stats.end_time, SimTime::from_millis(2));
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod process;
pub mod queue;
pub mod time;
pub mod trace;

pub use engine::{Engine, RunLimits, RunStats};
pub use event::{Event, EventKind, ProcId};
pub use process::{Ctx, Effect, Process};
pub use queue::EventQueue;
pub use time::SimTime;
pub use trace::{StateInterval, TracePoint, Tracer};
