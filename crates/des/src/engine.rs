//! The sequential discrete-event engine.
//!
//! Semantics follow Parsec's deterministic sequential mode: a global virtual
//! clock, a pending-event set ordered by `(time, schedule order)`, and
//! processes that exchange timestamped messages. Crashed processes silently
//! drop all subsequent events (fail-stop Crash model, paper §4).

use crate::event::{Event, EventKind, ProcId};
use crate::process::{Ctx, Effect, Process};
use crate::queue::EventQueue;
use crate::time::SimTime;
use crate::trace::Tracer;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Statistics for a completed run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Virtual time at which the last event was processed.
    pub end_time: SimTime,
    /// Number of events dispatched to live processes.
    pub events_dispatched: u64,
    /// Events dropped because their target had crashed or halted.
    pub events_dropped: u64,
    /// Messages lost in transit (explicit `send_lost`).
    pub messages_lost: u64,
    /// True if the run stopped because the event limit was hit.
    pub hit_event_limit: bool,
    /// True if the run stopped because the time horizon was hit.
    pub hit_time_limit: bool,
}

enum SlotState {
    Live,
    Crashed,
    Halted,
}

struct Slot<P> {
    proc: Option<P>,
    state: SlotState,
}

/// The discrete-event engine, generic over the process type.
pub struct Engine<P: Process> {
    slots: Vec<Slot<P>>,
    queue: EventQueue<P::Msg, P::Timer>,
    now: SimTime,
    rng: SmallRng,
    trace: Tracer,
    stats: RunStats,
    effects_buf: Vec<Effect<P::Msg, P::Timer>>,
}

impl<P: Process> Engine<P> {
    /// Create an engine with the given RNG seed. Identical seeds and process
    /// sets replay identically.
    pub fn new(seed: u64) -> Self {
        Engine {
            slots: Vec::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: SmallRng::seed_from_u64(seed),
            trace: Tracer::disabled(),
            stats: RunStats::default(),
            effects_buf: Vec::new(),
        }
    }

    /// Enable execution-profile tracing (state intervals).
    pub fn enable_trace(&mut self) {
        self.trace = Tracer::enabled();
    }

    /// Add a process; returns its id. Its `on_start` runs at `start_at`.
    pub fn add_process(&mut self, proc: P, start_at: SimTime) -> ProcId {
        let pid = ProcId(self.slots.len() as u32);
        self.slots.push(Slot {
            proc: Some(proc),
            state: SlotState::Live,
        });
        self.queue.push(Event {
            time: start_at,
            target: pid,
            kind: EventKind::Start,
        });
        pid
    }

    /// Schedule a fail-stop crash of `pid` at `at`.
    pub fn schedule_crash(&mut self, pid: ProcId, at: SimTime) {
        self.queue.push(Event {
            time: at,
            target: pid,
            kind: EventKind::Kill,
        });
    }

    /// Inject a message from outside the process set (e.g. a test driver).
    pub fn inject_message(&mut self, from: ProcId, to: ProcId, at: SimTime, msg: P::Msg) {
        self.queue.push(Event {
            time: at,
            target: to,
            kind: EventKind::Message { from, msg },
        });
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of registered processes.
    pub fn num_processes(&self) -> usize {
        self.slots.len()
    }

    /// Is the process still live (not crashed, not halted)?
    pub fn is_live(&self, pid: ProcId) -> bool {
        matches!(self.slots[pid.index()].state, SlotState::Live)
    }

    /// Immutable access to a process's state (post-run inspection).
    pub fn process(&self, pid: ProcId) -> &P {
        self.slots[pid.index()]
            .proc
            .as_ref()
            .expect("process is being dispatched")
    }

    /// The tracer (read after run to build timelines).
    pub fn tracer(&self) -> &Tracer {
        &self.trace
    }

    /// Run until the event queue is empty or `limits` stop the run.
    pub fn run(&mut self, limits: RunLimits) -> RunStats {
        while let Some(next_time) = self.queue.peek_time() {
            if let Some(horizon) = limits.time_horizon {
                if next_time > horizon {
                    self.stats.hit_time_limit = true;
                    break;
                }
            }
            if let Some(max_events) = limits.max_events {
                if self.stats.events_dispatched >= max_events {
                    self.stats.hit_event_limit = true;
                    break;
                }
            }
            let event = self.queue.pop().expect("peeked");
            debug_assert!(event.time >= self.now, "time must be monotone");
            self.now = event.time;
            self.dispatch(event);
        }
        self.stats.end_time = self.now;
        self.stats.clone()
    }

    fn dispatch(&mut self, event: Event<P::Msg, P::Timer>) {
        let idx = event.target.index();
        assert!(idx < self.slots.len(), "event for unknown process {idx}");

        match event.kind {
            EventKind::Kill => {
                if matches!(self.slots[idx].state, SlotState::Live) {
                    // Run the crash hook, then drop all future events.
                    self.with_proc(event.target, |proc, ctx| proc.on_kill(ctx));
                    self.slots[idx].state = SlotState::Crashed;
                    self.trace.record(self.now, event.target, "crashed");
                }
                return;
            }
            _ => {
                if !matches!(self.slots[idx].state, SlotState::Live) {
                    self.stats.events_dropped += 1;
                    return;
                }
            }
        }

        self.stats.events_dispatched += 1;
        let target = event.target;
        let halted = match event.kind {
            EventKind::Start => self.with_proc(target, |proc, ctx| proc.on_start(ctx)),
            EventKind::Message { from, msg } => {
                self.with_proc(target, |proc, ctx| proc.on_message(ctx, from, msg))
            }
            EventKind::Timer(t) => self.with_proc(target, |proc, ctx| proc.on_timer(ctx, t)),
            EventKind::Kill => unreachable!("handled above"),
        };
        if halted {
            self.slots[target.index()].state = SlotState::Halted;
        }
    }

    /// Temporarily take the process out of its slot, run `f` with a fresh
    /// effect context, then apply the effects. Returns true if the process
    /// requested halt.
    fn with_proc<F>(&mut self, pid: ProcId, f: F) -> bool
    where
        F: FnOnce(&mut P, &mut Ctx<'_, P::Msg, P::Timer>),
    {
        let mut proc = self.slots[pid.index()]
            .proc
            .take()
            .expect("re-entrant dispatch");
        debug_assert!(self.effects_buf.is_empty());
        let mut effects = std::mem::take(&mut self.effects_buf);
        {
            let mut ctx = Ctx {
                now: self.now,
                pid,
                effects: &mut effects,
                rng: &mut self.rng,
                trace: &mut self.trace,
            };
            f(&mut proc, &mut ctx);
        }
        self.slots[pid.index()].proc = Some(proc);

        let mut halted = false;
        for effect in effects.drain(..) {
            match effect {
                Effect::Send { to, delay, msg } => match delay {
                    Some(d) => self.queue.push(Event {
                        time: self.now.saturating_add(d),
                        target: to,
                        kind: EventKind::Message { from: pid, msg },
                    }),
                    None => self.stats.messages_lost += 1,
                },
                Effect::Timer { delay, timer } => self.queue.push(Event {
                    time: self.now.saturating_add(delay),
                    target: pid,
                    kind: EventKind::Timer(timer),
                }),
                Effect::Halt => halted = true,
            }
        }
        self.effects_buf = effects;
        halted
    }
}

/// Stop conditions for [`Engine::run`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RunLimits {
    /// Do not process events scheduled after this time.
    pub time_horizon: Option<SimTime>,
    /// Dispatch at most this many events.
    pub max_events: Option<u64>,
}

impl RunLimits {
    /// No limits: run to quiescence.
    pub fn none() -> Self {
        RunLimits::default()
    }

    /// Limit by virtual-time horizon.
    pub fn until(t: SimTime) -> Self {
        RunLimits {
            time_horizon: Some(t),
            max_events: None,
        }
    }

    /// Limit by event count (runaway-protocol guard in tests).
    pub fn max_events(n: u64) -> Self {
        RunLimits {
            time_horizon: None,
            max_events: Some(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ping-pong process: replies to every message until `limit` exchanges.
    struct PingPong {
        peer: Option<ProcId>,
        count: u32,
        limit: u32,
        log: Vec<(SimTime, u32)>,
    }

    impl Process for PingPong {
        type Msg = u32;
        type Timer = ();

        fn on_start(&mut self, ctx: &mut Ctx<'_, u32, ()>) {
            if let Some(peer) = self.peer {
                ctx.send(peer, SimTime::from_millis(1), 0);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, u32, ()>, from: ProcId, msg: u32) {
            self.log.push((ctx.now(), msg));
            self.count += 1;
            if msg + 1 < self.limit {
                ctx.send(from, SimTime::from_millis(1), msg + 1);
            } else {
                ctx.halt();
            }
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32, ()>, _t: ()) {}
    }

    fn pingpong_pair(limit: u32) -> (Engine<PingPong>, ProcId, ProcId) {
        let mut eng = Engine::new(7);
        let a = eng.add_process(
            PingPong {
                peer: Some(ProcId(1)),
                count: 0,
                limit,
                log: vec![],
            },
            SimTime::ZERO,
        );
        let b = eng.add_process(
            PingPong {
                peer: None,
                count: 0,
                limit,
                log: vec![],
            },
            SimTime::ZERO,
        );
        (eng, a, b)
    }

    #[test]
    fn ping_pong_runs_to_completion() {
        let (mut eng, a, b) = pingpong_pair(10);
        let stats = eng.run(RunLimits::none());
        assert_eq!(eng.process(a).count + eng.process(b).count, 10);
        // 10 messages, 1ms apart.
        assert_eq!(stats.end_time, SimTime::from_millis(10));
        assert!(!stats.hit_event_limit && !stats.hit_time_limit);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let (mut eng, a, _) = pingpong_pair(50);
            eng.run(RunLimits::none());
            eng.process(a).log.clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crash_drops_future_events() {
        let (mut eng, a, b) = pingpong_pair(1000);
        eng.schedule_crash(b, SimTime::from_millis(5));
        let stats = eng.run(RunLimits::none());
        assert!(!eng.is_live(b));
        assert!(eng.is_live(a));
        assert!(stats.events_dropped > 0);
        // B received messages only up to t=5ms.
        assert!(eng.process(b).count <= 5);
    }

    #[test]
    fn event_limit_stops_run() {
        let (mut eng, _, _) = pingpong_pair(1_000_000);
        let stats = eng.run(RunLimits::max_events(100));
        assert!(stats.hit_event_limit);
        assert!(stats.events_dispatched <= 100);
    }

    #[test]
    fn time_horizon_stops_run() {
        let (mut eng, _, _) = pingpong_pair(1_000_000);
        let stats = eng.run(RunLimits::until(SimTime::from_millis(20)));
        assert!(stats.hit_time_limit);
        assert!(stats.end_time <= SimTime::from_millis(20));
    }

    #[test]
    fn lost_messages_counted() {
        struct Loser;
        impl Process for Loser {
            type Msg = ();
            type Timer = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, (), ()>) {
                ctx.send_lost(ctx.pid(), ());
                ctx.halt();
            }
            fn on_message(&mut self, _: &mut Ctx<'_, (), ()>, _: ProcId, _: ()) {
                panic!("lost message must not arrive");
            }
            fn on_timer(&mut self, _: &mut Ctx<'_, (), ()>, _: ()) {}
        }
        let mut eng = Engine::new(0);
        eng.add_process(Loser, SimTime::ZERO);
        let stats = eng.run(RunLimits::none());
        assert_eq!(stats.messages_lost, 1);
    }

    #[test]
    fn halted_process_receives_nothing() {
        // With limit=2, process `a` halts after receiving msg 1.
        let (mut eng, a, b) = pingpong_pair(2);
        eng.inject_message(b, a, SimTime::from_secs(1), 99);
        let stats = eng.run(RunLimits::none());
        assert!(!eng.is_live(a));
        assert_eq!(stats.events_dropped, 1);
        assert!(eng.process(a).log.iter().all(|&(_, m)| m != 99));
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerProc {
            fired: Vec<u8>,
        }
        impl Process for TimerProc {
            type Msg = ();
            type Timer = u8;
            fn on_start(&mut self, ctx: &mut Ctx<'_, (), u8>) {
                ctx.set_timer(SimTime::from_millis(30), 3);
                ctx.set_timer(SimTime::from_millis(10), 1);
                ctx.set_timer(SimTime::from_millis(20), 2);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, (), u8>, _: ProcId, _: ()) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, (), u8>, t: u8) {
                self.fired.push(t);
            }
        }
        let mut eng = Engine::new(0);
        let p = eng.add_process(TimerProc { fired: vec![] }, SimTime::ZERO);
        eng.run(RunLimits::none());
        assert_eq!(eng.process(p).fired, vec![1, 2, 3]);
    }
}
