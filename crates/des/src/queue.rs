//! The pending-event set: a binary heap with a deterministic total order.
//!
//! Events with equal timestamps pop in insertion order (FIFO), which makes
//! every simulation replayable bit-for-bit from its seed. This mirrors the
//! deterministic sequential execution mode of Parsec.

use crate::event::Event;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<M, T> {
    time: SimTime,
    seq: u64,
    event: Event<M, T>,
}

impl<M, T> PartialEq for Entry<M, T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M, T> Eq for Entry<M, T> {}

impl<M, T> PartialOrd for Entry<M, T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M, T> Ord for Entry<M, T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest (time, seq).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of future events ordered by `(time, insertion sequence)`.
pub struct EventQueue<M, T> {
    heap: BinaryHeap<Entry<M, T>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<M, T> Default for EventQueue<M, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M, T> EventQueue<M, T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedule an event. Its position in the total order is fixed now.
    pub fn push(&mut self, event: Event<M, T>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry {
            time: event.time,
            seq,
            event,
        });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event<M, T>> {
        self.heap.pop().map(|e| e.event)
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for run statistics).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, ProcId};

    fn ev(t: u64, tag: u32) -> Event<u32, ()> {
        Event {
            time: SimTime::from_nanos(t),
            target: ProcId(0),
            kind: EventKind::Message {
                from: ProcId(0),
                msg: tag,
            },
        }
    }

    fn tag(e: &Event<u32, ()>) -> u32 {
        match e.kind {
            EventKind::Message { msg, .. } => msg,
            _ => unreachable!(),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(ev(30, 0));
        q.push(ev(10, 1));
        q.push(ev(20, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.time.as_nanos())).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(ev(42, i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| tag(&e))).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_times_and_ties() {
        let mut q = EventQueue::new();
        q.push(ev(5, 0));
        q.push(ev(1, 1));
        q.push(ev(5, 2));
        q.push(ev(1, 3));
        let order: Vec<(u64, u32)> =
            std::iter::from_fn(|| q.pop().map(|e| (e.time.as_nanos(), tag(&e)))).collect();
        assert_eq!(order, vec![(1, 1), (1, 3), (5, 0), (5, 2)]);
    }

    #[test]
    fn peek_and_counters() {
        let mut q: EventQueue<u32, ()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(ev(7, 0));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 1);
    }
}
