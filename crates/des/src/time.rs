//! Virtual time for the discrete-event engine.
//!
//! [`SimTime`] is a nanosecond-resolution virtual clock value. It doubles as
//! an instant and a duration (like a bare `u64` of nanoseconds), which keeps
//! event arithmetic trivial and exactly reproducible: all scheduling is
//! integer arithmetic, so two runs with the same seed produce bit-identical
//! event orders.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A virtual instant or duration, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant (simulation start).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    /// Negative or non-finite inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * 1e9).round().min(u64::MAX as f64) as u64)
    }

    /// Construct from fractional milliseconds (the unit of the paper's
    /// `1.5 + 0.005·L` ms latency model).
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms * 1e-3)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Value in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Value in fractional hours (the unit of the paper's Table 1).
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Scale a duration by a dimensionless factor (used for granularity and
    /// processor-speed scaling). Rounds to the nearest nanosecond.
    #[inline]
    pub fn scale(self, factor: f64) -> SimTime {
        SimTime::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// True if this is the zero instant.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a.saturating_add(b))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 3600.0 {
            write!(f, "{:.3}h", s / 3600.0)
        } else if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else {
            write!(f, "{:.3}ms", s * 1e3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        let t = SimTime::from_secs_f64(1.25);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
        assert!((SimTime::from_millis_f64(1.5).as_millis_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NEG_INFINITY), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_millis(500);
        assert_eq!((a + b).as_millis_f64(), 1500.0);
        assert_eq!((a - b).as_millis_f64(), 500.0);
        assert_eq!(a.saturating_sub(a + b), SimTime::ZERO);
        assert_eq!(SimTime::MAX.saturating_add(a), SimTime::MAX);
    }

    #[test]
    fn scaling() {
        let t = SimTime::from_secs(10);
        assert_eq!(t.scale(0.5), SimTime::from_secs(5));
        assert_eq!(t.scale(3.0), SimTime::from_secs(30));
        assert_eq!(t.scale(0.0), SimTime::ZERO);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn hours_display() {
        let t = SimTime::from_secs(7200);
        assert!((t.as_hours_f64() - 2.0).abs() < 1e-12);
        assert_eq!(format!("{t}"), "2.000h");
        assert_eq!(format!("{}", SimTime::from_millis(250)), "250.000ms");
    }

    #[test]
    fn sum_saturates() {
        let total: SimTime = vec![SimTime::MAX, SimTime::from_secs(1)].into_iter().sum();
        assert_eq!(total, SimTime::MAX);
    }
}
