//! Property-based tests of the event queue and engine determinism — the
//! foundation of every reproducible experiment in the workspace.

use ftbb_des::{Ctx, Engine, Event, EventKind, EventQueue, ProcId, Process, RunLimits, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Events pop in nondecreasing time order, and equal-time events pop in
    /// insertion order.
    #[test]
    fn queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..50, 1..200)) {
        let mut q: EventQueue<usize, ()> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Event {
                time: SimTime::from_nanos(t),
                target: ProcId(0),
                kind: EventKind::Message { from: ProcId(0), msg: i },
            });
        }
        let mut last_time = SimTime::ZERO;
        let mut last_seq_at_time = None::<usize>;
        while let Some(ev) = q.pop() {
            prop_assert!(ev.time >= last_time);
            let seq = match ev.kind {
                EventKind::Message { msg, .. } => msg,
                _ => unreachable!(),
            };
            if ev.time == last_time {
                if let Some(prev) = last_seq_at_time {
                    prop_assert!(seq > prev, "FIFO violated at equal times");
                }
            }
            last_time = ev.time;
            last_seq_at_time = Some(seq);
        }
    }
}

/// A process that spreads tokens pseudo-randomly and logs receipt order.
struct Spreader {
    n: u32,
    budget: u32,
    log: Vec<(u64, u32)>,
}

impl Process for Spreader {
    type Msg = u32;
    type Timer = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, u32, ()>) {
        if ctx.pid() == ProcId(0) {
            ctx.send(ProcId(1 % self.n), SimTime::from_micros(5), 0);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, u32, ()>, _from: ProcId, token: u32) {
        self.log.push((ctx.now().as_nanos(), token));
        if self.budget > 0 {
            self.budget -= 1;
            use rand::Rng;
            let target = ProcId(ctx.rng().gen_range(0..self.n));
            let delay = SimTime::from_micros(ctx.rng().gen_range(1..50));
            ctx.send(target, delay, token + 1);
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32, ()>, _t: ()) {}
}

fn spread_run(seed: u64, n: u32) -> Vec<Vec<(u64, u32)>> {
    let mut eng = Engine::new(seed);
    for _ in 0..n {
        eng.add_process(
            Spreader {
                n,
                budget: 200,
                log: Vec::new(),
            },
            SimTime::ZERO,
        );
    }
    eng.run(RunLimits::max_events(100_000));
    (0..n).map(|i| eng.process(ProcId(i)).log.clone()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Two runs with the same seed produce bit-identical histories; a
    /// different seed (almost surely) diverges.
    #[test]
    fn engine_replays_exactly(seed in any::<u64>(), n in 2u32..6) {
        let a = spread_run(seed, n);
        let b = spread_run(seed, n);
        prop_assert_eq!(&a, &b);
        let c = spread_run(seed.wrapping_add(1), n);
        // Different seeds *may* coincide in principle; only check they ran.
        prop_assert!(c.iter().map(|l| l.len()).sum::<usize>() > 0);
    }
}
