//! The DIB protocol process.
//!
//! DIB (Finkel & Manber 1987) keeps fault tolerance by *responsibility
//! tracking*: "each machine memorizes the problems for which it is
//! responsible, as well as the machines to which it sent problems … The
//! completion of a problem is reported to the machine the problem came
//! from. Hence, each machine can determine whether the work for which it is
//! responsible is still unsolved, and can redo that work in the case of
//! failure." (paper §3)
//!
//! Contrast with the paper's mechanism (§5.5): completion information flows
//! *up a fixed responsibility tree* instead of epidemically, so machine 0
//! (the root's owner) must survive for the computation to terminate — the
//! weakness the paper's decentralized mechanism removes.

use ftbb_core::{ChildPair, Expansion};
use ftbb_des::SimTime;
use ftbb_tree::{Code, CodeSet};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// DIB protocol messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DibMsg {
    /// "Send me work."
    Request {
        /// Sender's incumbent.
        incumbent: f64,
    },
    /// Donated subproblems; the sender stays responsible for them.
    Grant {
        /// `(code, bound)` pairs.
        items: Vec<(Code, f64)>,
        /// Sender's incumbent.
        incumbent: f64,
    },
    /// Nothing to spare.
    Deny {
        /// Sender's incumbent.
        incumbent: f64,
    },
    /// "The problems rooted at these codes are completed" — sent to the
    /// machine each problem came from.
    Completed {
        /// Completed transfer-unit codes.
        codes: Vec<Code>,
        /// Sender's incumbent.
        incumbent: f64,
    },
    /// Broadcast by machine 0 when the root completes.
    Done {
        /// Final incumbent.
        incumbent: f64,
    },
}

impl DibMsg {
    /// Wire size in bytes (same accounting scheme as the main protocol).
    pub fn wire_size(&self) -> usize {
        match self {
            DibMsg::Request { .. } | DibMsg::Deny { .. } | DibMsg::Done { .. } => 9,
            DibMsg::Grant { items, .. } => {
                11 + items.iter().map(|(c, _)| c.wire_size() + 8).sum::<usize>()
            }
            DibMsg::Completed { codes, .. } => {
                11 + codes.iter().map(|c| c.wire_size()).sum::<usize>()
            }
        }
    }

    /// The piggybacked incumbent.
    pub fn incumbent(&self) -> f64 {
        match self {
            DibMsg::Request { incumbent }
            | DibMsg::Grant { incumbent, .. }
            | DibMsg::Deny { incumbent }
            | DibMsg::Completed { incumbent, .. }
            | DibMsg::Done { incumbent } => *incumbent,
        }
    }
}

/// Timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DibTimer {
    /// Work-request retry pacing.
    Retry,
    /// Scan outstanding transfers for timeouts (failure recovery).
    Scan,
}

/// Events (mirrors the core protocol's harness interface).
#[derive(Debug, Clone)]
pub enum DibEvent {
    /// Process start.
    Start,
    /// Expansion finished.
    WorkDone {
        /// Echoed sequence number.
        seq: u64,
        /// The result.
        expansion: Expansion,
    },
    /// Message received.
    Recv {
        /// Sender.
        from: u32,
        /// Message.
        msg: DibMsg,
    },
    /// Timer fired.
    Timer(DibTimer),
}

/// Actions for the harness.
#[derive(Debug, Clone)]
pub enum DibAction {
    /// Transmit a message.
    Send {
        /// Destination.
        to: u32,
        /// Message.
        msg: DibMsg,
    },
    /// Expand `code`, echo `seq`.
    StartWork {
        /// Subproblem code.
        code: Code,
        /// Sequence.
        seq: u64,
    },
    /// Arm a timer.
    SetTimer {
        /// Delay in seconds.
        delay_s: f64,
        /// Payload.
        timer: DibTimer,
    },
    /// Terminated.
    Halt,
}

/// DIB tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DibConfig {
    /// Work-request retry pacing, seconds.
    pub retry_s: f64,
    /// Outstanding-transfer timeout before redoing the work, seconds.
    pub redo_timeout_s: f64,
    /// Scan period for the timeout ledger, seconds.
    pub scan_interval_s: f64,
    /// Max subproblems per grant.
    pub grant_max: usize,
    /// Donor keeps at least this many.
    pub grant_keep_min: usize,
}

impl Default for DibConfig {
    fn default() -> Self {
        DibConfig {
            retry_s: 0.05,
            redo_timeout_s: 2.0,
            scan_interval_s: 0.5,
            grant_max: 16,
            grant_keep_min: 2,
        }
    }
}

#[derive(Debug, Clone)]
struct Outstanding {
    /// Recipient of the transfer (kept for diagnostics and future
    /// re-assignment policies; recovery itself redoes the work locally).
    #[allow(dead_code)]
    to: u32,
    since: SimTime,
}

/// One DIB machine.
pub struct DibProcess {
    me: u32,
    members: Vec<u32>,
    cfg: DibConfig,
    /// LIFO pool of `(code, bound)`.
    pool: Vec<(Code, f64)>,
    current: Option<Code>,
    work_seq: u64,
    /// Local completion knowledge (contracted), covering everything this
    /// machine has verified complete (own work + reported transfers).
    done: CodeSet,
    /// Transfers awaiting completion reports: code -> (recipient, when).
    outstanding: HashMap<Code, Outstanding>,
    /// Problems received from others: code -> origin machine. Responsible
    /// for reporting their completion back.
    origin: HashMap<Code, u32>,
    incumbent: f64,
    terminated: bool,
    /// A retry timer is in flight (prevents timer-chain multiplication).
    retry_armed: bool,
    rng: SmallRng,
    /// Counters.
    pub expanded: u64,
    /// Redo recoveries performed.
    pub redos: u64,
    /// Completion reports sent.
    pub reports_sent: u64,
}

impl DibProcess {
    /// Create machine `me`; machine 0 owns the root problem.
    pub fn new(me: u32, members: Vec<u32>, cfg: DibConfig, root_bound: f64, seed: u64) -> Self {
        let mut pool = Vec::new();
        if me == 0 {
            pool.push((Code::root(), root_bound));
        }
        DibProcess {
            me,
            members: members.into_iter().filter(|&m| m != me).collect(),
            cfg,
            pool,
            current: None,
            work_seq: 0,
            done: CodeSet::new(),
            outstanding: HashMap::new(),
            origin: HashMap::new(),
            incumbent: f64::INFINITY,
            terminated: false,
            retry_armed: false,
            rng: SmallRng::seed_from_u64(seed),
            expanded: 0,
            redos: 0,
            reports_sent: 0,
        }
    }

    /// Did this machine learn of global completion?
    pub fn is_terminated(&self) -> bool {
        self.terminated
    }

    /// Final incumbent.
    pub fn incumbent(&self) -> f64 {
        self.incumbent
    }

    /// Handle one event.
    pub fn handle(&mut self, event: DibEvent, now: SimTime) -> Vec<DibAction> {
        let mut out = Vec::new();
        if self.terminated {
            return out;
        }
        match event {
            DibEvent::Start => {
                out.push(DibAction::SetTimer {
                    delay_s: self.cfg.scan_interval_s,
                    timer: DibTimer::Scan,
                });
                self.start_next(&mut out);
            }
            DibEvent::WorkDone { seq, expansion } => {
                if seq != self.work_seq || self.current.is_none() {
                    return out;
                }
                let code = self.current.take().expect("checked");
                self.expanded += 1;
                if let Some(v) = expansion.solution {
                    self.update_incumbent(v);
                }
                match expansion.children {
                    None => self.complete(code, &mut out),
                    Some(ChildPair {
                        var,
                        left_bound,
                        right_bound,
                    }) => {
                        for (bit, b) in [(false, left_bound), (true, right_bound)] {
                            let child = code.child(var, bit);
                            if b >= self.incumbent {
                                self.complete(child, &mut out);
                            } else {
                                self.pool.push((child, b));
                            }
                        }
                    }
                }
                self.start_next(&mut out);
            }
            DibEvent::Recv { from, msg } => {
                self.update_incumbent(msg.incumbent());
                match msg {
                    DibMsg::Request { .. } => self.on_request(from, &mut out),
                    DibMsg::Grant { items, .. } => {
                        for (code, bound) in items {
                            if self.done.contains(&code) {
                                // Already proven complete: report straight back.
                                self.reports_sent += 1;
                                out.push(DibAction::Send {
                                    to: from,
                                    msg: DibMsg::Completed {
                                        codes: vec![code],
                                        incumbent: self.incumbent,
                                    },
                                });
                            } else {
                                self.origin.insert(code.clone(), from);
                                self.pool.push((code, bound));
                            }
                        }
                        if self.current.is_none() {
                            self.start_next(&mut out);
                        }
                    }
                    DibMsg::Deny { .. } => {
                        // The retry chain armed by seek_work paces the next
                        // attempt; nothing to do here.
                    }
                    DibMsg::Completed { codes, .. } => {
                        for code in codes {
                            self.outstanding.remove(&code);
                            self.absorb_completion(code, &mut out);
                        }
                    }
                    DibMsg::Done { .. } => {
                        self.terminated = true;
                        out.push(DibAction::Halt);
                    }
                }
            }
            DibEvent::Timer(DibTimer::Retry) => {
                self.retry_armed = false;
                if self.current.is_none() && self.pool.is_empty() {
                    self.seek_work(&mut out);
                }
            }
            DibEvent::Timer(DibTimer::Scan) => {
                self.scan_outstanding(now, &mut out);
                out.push(DibAction::SetTimer {
                    delay_s: self.cfg.scan_interval_s,
                    timer: DibTimer::Scan,
                });
            }
        }
        out
    }

    fn on_request(&mut self, from: u32, out: &mut Vec<DibAction>) {
        let spare = self.pool.len().saturating_sub(self.cfg.grant_keep_min);
        let k = spare.min(self.cfg.grant_max).min(self.pool.len() / 2 + 1);
        if spare == 0 || k == 0 {
            out.push(DibAction::Send {
                to: from,
                msg: DibMsg::Deny {
                    incumbent: self.incumbent,
                },
            });
            return;
        }
        // Donate the oldest (shallowest) problems; stay responsible.
        let items: Vec<(Code, f64)> = self.pool.drain(..k).collect();
        let now_marker = SimTime::ZERO; // refreshed by scan on first pass
        for (code, _) in &items {
            self.outstanding.insert(
                code.clone(),
                Outstanding {
                    to: from,
                    since: now_marker,
                },
            );
        }
        out.push(DibAction::Send {
            to: from,
            msg: DibMsg::Grant {
                items,
                incumbent: self.incumbent,
            },
        });
    }

    fn seek_work(&mut self, out: &mut Vec<DibAction>) {
        if let Some(&target) = self.members.choose(&mut self.rng) {
            out.push(DibAction::Send {
                to: target,
                msg: DibMsg::Request {
                    incumbent: self.incumbent,
                },
            });
        }
        // Pace the next attempt (covers lost replies and dead donors);
        // exactly one retry chain runs at a time.
        if !self.retry_armed {
            self.retry_armed = true;
            out.push(DibAction::SetTimer {
                delay_s: self.cfg.retry_s,
                timer: DibTimer::Retry,
            });
        }
    }

    fn start_next(&mut self, out: &mut Vec<DibAction>) {
        if self.terminated || self.current.is_some() {
            return;
        }
        while let Some((code, bound)) = self.pool.pop() {
            if self.done.contains(&code) {
                continue;
            }
            if bound >= self.incumbent {
                self.complete(code, out);
                if self.terminated {
                    return;
                }
                continue;
            }
            self.work_seq += 1;
            self.current = Some(code.clone());
            out.push(DibAction::StartWork {
                code,
                seq: self.work_seq,
            });
            return;
        }
        if !self.terminated {
            self.seek_work(out);
        }
    }

    fn complete(&mut self, code: Code, out: &mut Vec<DibAction>) {
        self.absorb_completion(code, out);
    }

    /// Fold a completion into local knowledge, then propagate any
    /// transfer-unit completions to their origins.
    fn absorb_completion(&mut self, code: Code, out: &mut Vec<DibAction>) {
        self.done.insert(&code);
        // Report every received problem whose subtree is now complete.
        let finished: Vec<Code> = self
            .origin
            .keys()
            .filter(|c| self.done.contains(c))
            .cloned()
            .collect();
        let mut by_origin: HashMap<u32, Vec<Code>> = HashMap::new();
        for code in finished {
            let to = self.origin.remove(&code).expect("key exists");
            by_origin.entry(to).or_default().push(code);
        }
        for (to, codes) in by_origin {
            self.reports_sent += 1;
            out.push(DibAction::Send {
                to,
                msg: DibMsg::Completed {
                    codes,
                    incumbent: self.incumbent,
                },
            });
        }
        // Machine 0: global termination when the root is complete.
        if self.me == 0 && self.done.is_root_done() && !self.terminated {
            self.terminated = true;
            for &to in &self.members {
                out.push(DibAction::Send {
                    to,
                    msg: DibMsg::Done {
                        incumbent: self.incumbent,
                    },
                });
            }
            out.push(DibAction::Halt);
        }
    }

    fn scan_outstanding(&mut self, now: SimTime, out: &mut Vec<DibAction>) {
        let timeout = SimTime::from_secs_f64(self.cfg.redo_timeout_s);
        let mut expired = Vec::new();
        for (code, o) in self.outstanding.iter_mut() {
            if o.since.is_zero() {
                // First scan after the transfer: stamp it.
                o.since = now;
            } else if now.saturating_sub(o.since) >= timeout && !self.done.contains(code) {
                expired.push(code.clone());
            }
        }
        for code in expired {
            // Redo the work ourselves (possibly redundantly — DIB accepts
            // that, §5.5).
            self.outstanding.remove(&code);
            self.redos += 1;
            self.pool.push((code, f64::NEG_INFINITY));
        }
        if self.current.is_none() && !self.pool.is_empty() {
            self.start_next(out);
        }
    }

    fn update_incumbent(&mut self, v: f64) {
        if v < self.incumbent {
            self.incumbent = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DibConfig {
        DibConfig::default()
    }

    #[test]
    fn machine0_owns_root() {
        let mut p = DibProcess::new(0, vec![0, 1], cfg(), 0.0, 1);
        let actions = p.handle(DibEvent::Start, SimTime::ZERO);
        assert!(actions
            .iter()
            .any(|a| matches!(a, DibAction::StartWork { code, .. } if code.is_root())));
    }

    #[test]
    fn root_leaf_completion_broadcasts_done() {
        let mut p = DibProcess::new(0, vec![0, 1, 2], cfg(), 0.0, 1);
        p.handle(DibEvent::Start, SimTime::ZERO);
        let actions = p.handle(
            DibEvent::WorkDone {
                seq: 1,
                expansion: Expansion {
                    cost: 1.0,
                    bound: 0.0,
                    solution: Some(5.0),
                    children: None,
                },
            },
            SimTime::ZERO,
        );
        assert!(p.is_terminated());
        let dones = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    DibAction::Send {
                        msg: DibMsg::Done { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(dones, 2);
    }

    #[test]
    fn grant_records_responsibility_and_completion_reports_back() {
        let mut donor = DibProcess::new(0, vec![0, 1], cfg(), 0.0, 1);
        donor.pool = vec![
            (Code::from_decisions(&[(1, false)]), 0.0),
            (Code::from_decisions(&[(1, true)]), 0.0),
            (Code::from_decisions(&[(1, false), (2, false)]), 0.0),
        ];
        let actions = donor.handle(
            DibEvent::Recv {
                from: 1,
                msg: DibMsg::Request {
                    incumbent: f64::INFINITY,
                },
            },
            SimTime::ZERO,
        );
        let granted = actions.iter().find_map(|a| match a {
            DibAction::Send {
                msg: DibMsg::Grant { items, .. },
                ..
            } => Some(items.clone()),
            _ => None,
        });
        let granted = granted.expect("grant sent");
        assert!(!granted.is_empty());
        assert_eq!(donor.outstanding.len(), granted.len());

        // Recipient completes one and reports; donor absorbs it.
        let code = granted[0].0.clone();
        donor.handle(
            DibEvent::Recv {
                from: 1,
                msg: DibMsg::Completed {
                    codes: vec![code.clone()],
                    incumbent: f64::INFINITY,
                },
            },
            SimTime::ZERO,
        );
        assert!(donor.done.contains(&code));
        assert!(!donor.outstanding.contains_key(&code));
    }

    #[test]
    fn timeout_triggers_redo() {
        let mut donor = DibProcess::new(0, vec![0, 1], cfg(), 0.0, 1);
        donor.pool = vec![
            (Code::from_decisions(&[(1, false)]), 0.0),
            (Code::from_decisions(&[(1, true)]), 0.0),
            (Code::from_decisions(&[(1, false), (2, false)]), 0.0),
        ];
        donor.handle(
            DibEvent::Recv {
                from: 1,
                msg: DibMsg::Request {
                    incumbent: f64::INFINITY,
                },
            },
            SimTime::ZERO,
        );
        assert!(!donor.outstanding.is_empty());
        // First scan stamps, later scan past the timeout reclaims.
        donor.handle(DibEvent::Timer(DibTimer::Scan), SimTime::from_secs(1));
        donor.handle(DibEvent::Timer(DibTimer::Scan), SimTime::from_secs(10));
        assert!(donor.outstanding.is_empty());
        assert!(donor.redos > 0);
    }

    #[test]
    fn non_root_terminates_only_on_done() {
        let mut p = DibProcess::new(1, vec![0, 1], cfg(), 0.0, 2);
        p.handle(DibEvent::Start, SimTime::ZERO);
        assert!(!p.is_terminated());
        let actions = p.handle(
            DibEvent::Recv {
                from: 0,
                msg: DibMsg::Done { incumbent: 3.0 },
            },
            SimTime::ZERO,
        );
        assert!(p.is_terminated());
        assert!(actions.iter().any(|a| matches!(a, DibAction::Halt)));
    }
}
