//! DES harness for DIB clusters, mirroring `ftbb-sim`'s driver.

use crate::process::{DibAction, DibConfig, DibEvent, DibMsg, DibProcess, DibTimer};
use ftbb_core::{Expander, TreeExpander};
use ftbb_des::{Ctx, Engine, ProcId, Process, RunLimits, SimTime};
use ftbb_net::{Network, NetworkConfig};
use ftbb_tree::BasicTree;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Timers of the DIB actor.
#[derive(Debug, Clone)]
pub enum DibSimTimer {
    /// A protocol timer.
    Core(DibTimer),
    /// A scheduled expansion completion.
    WorkDone {
        /// Sequence.
        seq: u64,
        /// The result.
        expansion: ftbb_core::Expansion,
    },
}

struct SharedNet {
    net: Network,
}

/// One simulated DIB machine.
pub struct DibActor {
    core: DibProcess,
    expander: TreeExpander,
    shared: Rc<RefCell<SharedNet>>,
    busy_until: SimTime,
}

impl Process for DibActor {
    type Msg = DibMsg;
    type Timer = DibSimTimer;

    fn on_start(&mut self, ctx: &mut Ctx<'_, DibMsg, DibSimTimer>) {
        let actions = self.core.handle(DibEvent::Start, ctx.now());
        self.apply(ctx, actions);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, DibMsg, DibSimTimer>, from: ProcId, msg: DibMsg) {
        let actions = self
            .core
            .handle(DibEvent::Recv { from: from.0, msg }, ctx.now());
        self.apply(ctx, actions);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, DibMsg, DibSimTimer>, timer: DibSimTimer) {
        match timer {
            DibSimTimer::Core(t) => {
                let actions = self.core.handle(DibEvent::Timer(t), ctx.now());
                self.apply(ctx, actions);
            }
            DibSimTimer::WorkDone { seq, expansion } => {
                let actions = self
                    .core
                    .handle(DibEvent::WorkDone { seq, expansion }, ctx.now());
                self.apply(ctx, actions);
            }
        }
    }
}

impl DibActor {
    fn apply(&mut self, ctx: &mut Ctx<'_, DibMsg, DibSimTimer>, actions: Vec<DibAction>) {
        let now = ctx.now();
        for action in actions {
            match action {
                DibAction::Send { to, msg } => {
                    let bytes = msg.wire_size();
                    let verdict = self.shared.borrow_mut().net.transmit(
                        ctx.pid(),
                        ProcId(to),
                        bytes,
                        now,
                        ctx.rng(),
                    );
                    match verdict {
                        Ok(delay) => ctx.send(ProcId(to), delay, msg),
                        Err(_) => ctx.send_lost(ProcId(to), msg),
                    }
                }
                DibAction::StartWork { code, seq } => {
                    let expansion = self.expander.expand(&code);
                    let cost = SimTime::from_secs_f64(expansion.cost);
                    let start = self.busy_until.max(now);
                    self.busy_until = start + cost;
                    ctx.set_timer(
                        self.busy_until - now,
                        DibSimTimer::WorkDone { seq, expansion },
                    );
                }
                DibAction::SetTimer { delay_s, timer } => {
                    ctx.set_timer(SimTime::from_secs_f64(delay_s), DibSimTimer::Core(timer));
                }
                DibAction::Halt => ctx.halt(),
            }
        }
    }
}

/// Configuration of a DIB simulation.
#[derive(Debug, Clone)]
pub struct DibSimConfig {
    /// Machines.
    pub nprocs: u32,
    /// Protocol tuning.
    pub protocol: DibConfig,
    /// Network model.
    pub network: NetworkConfig,
    /// Crash schedule.
    pub failures: Vec<(u32, SimTime)>,
    /// Seed.
    pub seed: u64,
    /// Virtual-time horizon (DIB can hang when machine 0 dies — the point
    /// of the comparison — so runs need a cap).
    pub horizon: SimTime,
}

impl DibSimConfig {
    /// Defaults for `n` machines.
    pub fn new(n: u32) -> Self {
        DibSimConfig {
            nprocs: n,
            protocol: DibConfig::default(),
            network: NetworkConfig::paper(),
            failures: Vec::new(),
            seed: 1,
            horizon: SimTime::from_secs(3600),
        }
    }
}

/// Outcome of a DIB run.
#[derive(Debug, Clone)]
pub struct DibRunReport {
    /// Virtual completion time (time of the last halt), if terminated.
    pub exec_time: Option<SimTime>,
    /// Did every surviving machine learn of termination?
    pub all_live_terminated: bool,
    /// Best solution at terminated machines.
    pub best: Option<f64>,
    /// Total expansions (including redone work).
    pub total_expanded: u64,
    /// Redo recoveries across machines.
    pub total_redos: u64,
    /// Messages sent.
    pub messages_sent: u64,
}

/// Run DIB over a basic tree.
pub fn run_dib(tree: &Arc<BasicTree>, cfg: &DibSimConfig) -> DibRunReport {
    let n = cfg.nprocs as usize;
    let shared = Rc::new(RefCell::new(SharedNet {
        net: Network::new(cfg.network.clone(), n),
    }));
    let mut engine: Engine<DibActor> = Engine::new(cfg.seed);
    let members: Vec<u32> = (0..cfg.nprocs).collect();
    for pid in 0..cfg.nprocs {
        let expander = TreeExpander::new(Arc::clone(tree));
        let core = DibProcess::new(
            pid,
            members.clone(),
            cfg.protocol,
            expander.root_bound(),
            cfg.seed.wrapping_add(pid as u64),
        );
        engine.add_process(
            DibActor {
                core,
                expander,
                shared: Rc::clone(&shared),
                busy_until: SimTime::ZERO,
            },
            SimTime::ZERO,
        );
    }
    for &(pid, at) in &cfg.failures {
        engine.schedule_crash(ProcId(pid), at);
    }
    let stats = engine.run(RunLimits {
        time_horizon: Some(cfg.horizon),
        max_events: Some(100_000_000),
    });

    let messages_sent = shared.borrow().net.stats().messages_sent;
    let crashed: Vec<u32> = cfg.failures.iter().map(|&(p, _)| p).collect();
    let mut all_live_terminated = true;
    let mut best = f64::INFINITY;
    let mut total_expanded = 0;
    let mut total_redos = 0;
    for pid in 0..n {
        let actor = engine.process(ProcId(pid as u32));
        total_expanded += actor.core.expanded;
        total_redos += actor.core.redos;
        if crashed.contains(&(pid as u32)) {
            continue;
        }
        if actor.core.is_terminated() {
            best = best.min(actor.core.incumbent());
        } else {
            all_live_terminated = false;
        }
    }
    DibRunReport {
        exec_time: if all_live_terminated {
            Some(stats.end_time)
        } else {
            None
        },
        all_live_terminated,
        best: if best.is_finite() { Some(best) } else { None },
        total_expanded,
        total_redos,
        messages_sent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbb_tree::{random_basic_tree, TreeConfig};

    fn tree() -> Arc<BasicTree> {
        Arc::new(random_basic_tree(&TreeConfig {
            target_nodes: 301,
            mean_cost: 0.01,
            seed: 21,
            ..Default::default()
        }))
    }

    #[test]
    fn dib_solves_without_failures() {
        let t = tree();
        let report = run_dib(&t, &DibSimConfig::new(4));
        assert!(report.all_live_terminated);
        assert_eq!(report.best, t.optimal());
    }

    #[test]
    fn dib_survives_worker_failure() {
        let t = tree();
        let mut cfg = DibSimConfig::new(4);
        cfg.failures = vec![(2, SimTime::from_millis(200))];
        cfg.protocol.redo_timeout_s = 0.5;
        cfg.protocol.scan_interval_s = 0.2;
        let report = run_dib(&t, &cfg);
        assert!(report.all_live_terminated, "workers must recover via redo");
        assert_eq!(report.best, t.optimal());
    }

    #[test]
    fn dib_hangs_when_root_machine_dies() {
        // The comparison of §5.5: DIB's hierarchy needs a reliable root.
        let t = tree();
        let mut cfg = DibSimConfig::new(4);
        cfg.failures = vec![(0, SimTime::from_millis(100))];
        cfg.horizon = SimTime::from_secs(60);
        let report = run_dib(&t, &cfg);
        assert!(
            !report.all_live_terminated,
            "without machine 0 nobody can detect termination"
        );
        assert_eq!(report.exec_time, None);
    }

    #[test]
    fn dib_single_machine() {
        let t = tree();
        let report = run_dib(&t, &DibSimConfig::new(1));
        assert!(report.all_live_terminated);
        assert_eq!(report.best, t.optimal());
    }
}
