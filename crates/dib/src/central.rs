//! The centralized manager–worker baseline (paper §3).
//!
//! "Many investigations of parallel B&B for distributed-memory systems have
//! adopted a centralized approach in which a single manager maintains the
//! tree and hands out tasks to workers. While clearly not scalable, this
//! approach simplifies the management of information … the central manager
//! remains an obstacle to both scalability and fault tolerance."
//!
//! The manager (process 0) owns the pool, the incumbent, and the completion
//! count; workers are stateless executors. Two measurable weaknesses:
//!
//! 1. **Scalability** — every expansion costs two manager messages plus the
//!    manager's own dispatch overhead, so throughput saturates at
//!    `1 / manager_overhead` regardless of worker count.
//! 2. **Fault tolerance** — worker crashes are tolerated by reissuing
//!    leases after a timeout, but a manager crash ends the computation.

use ftbb_des::SimTime;
use ftbb_tree::Code;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Messages of the centralized protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CentralMsg {
    /// Worker → manager: "give me a task" (also returns results).
    Fetch {
        /// Completed task (code + expansion outcome), if any.
        result: Option<(Code, WorkerResult)>,
    },
    /// Manager → worker: a task lease.
    Task {
        /// Subproblem to expand.
        code: Code,
        /// Manager's incumbent.
        incumbent: f64,
    },
    /// Manager → worker: nothing available right now; retry later.
    Wait,
    /// Manager → everyone: computation finished.
    Done {
        /// Final incumbent.
        incumbent: f64,
    },
}

/// What a worker observed expanding a node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerResult {
    /// Feasible solution found at the node, if any.
    pub solution: Option<f64>,
    /// Children (bounds included), if the node branched.
    pub children: Option<(u16, f64, f64)>,
}

impl CentralMsg {
    /// Wire size (same accounting as the other protocols).
    pub fn wire_size(&self) -> usize {
        match self {
            CentralMsg::Fetch { result: None } => 2,
            CentralMsg::Fetch {
                result: Some((code, _)),
            } => 2 + code.wire_size() + 24,
            CentralMsg::Task { code, .. } => 1 + code.wire_size() + 8,
            CentralMsg::Wait => 1,
            CentralMsg::Done { .. } => 9,
        }
    }
}

/// Manager state: the global pool, lease ledger, and completion count.
#[derive(Debug)]
pub struct Manager {
    /// Pending `(code, bound)` tasks.
    pool: Vec<(Code, f64)>,
    /// Outstanding leases: code → (worker, issue time).
    leases: HashMap<Code, (u32, SimTime)>,
    /// Best solution so far.
    pub incumbent: f64,
    /// Tasks completed (for bookkeeping; termination = pool and leases empty).
    pub completed: u64,
    /// Lease timeout for worker-failure recovery.
    pub lease_timeout: SimTime,
    /// Worker ids.
    workers: Vec<u32>,
    /// Finished flag.
    pub done: bool,
}

impl Manager {
    /// Manager with the root task and the given workers.
    pub fn new(root_bound: f64, workers: Vec<u32>, lease_timeout: SimTime) -> Self {
        Manager {
            pool: vec![(Code::root(), root_bound)],
            leases: HashMap::new(),
            incumbent: f64::INFINITY,
            completed: 0,
            lease_timeout,
            workers,
            done: false,
        }
    }

    /// Process a worker's fetch (with optional result). Returns the reply
    /// and, when the computation just finished, the broadcast list.
    pub fn on_fetch(
        &mut self,
        worker: u32,
        result: Option<(Code, WorkerResult)>,
        now: SimTime,
    ) -> (CentralMsg, Vec<u32>) {
        if let Some((code, res)) = result {
            // Accept results only from current leaseholders (stale reissued
            // leases are ignored — exactly-once effect per completion).
            if self.leases.get(&code).map(|&(w, _)| w) == Some(worker) {
                self.leases.remove(&code);
                self.completed += 1;
                if let Some(v) = res.solution {
                    if v < self.incumbent {
                        self.incumbent = v;
                    }
                }
                if let Some((var, lb, rb)) = res.children {
                    for (bit, b) in [(false, lb), (true, rb)] {
                        if b < self.incumbent {
                            self.pool.push((code.child(var, bit), b));
                        } else {
                            self.completed += 1; // eliminated = completed
                        }
                    }
                }
            }
        }
        // Reissue expired leases (worker-failure recovery).
        let expired: Vec<Code> = self
            .leases
            .iter()
            .filter(|(_, &(_, at))| now.saturating_sub(at) >= self.lease_timeout)
            .map(|(c, _)| c.clone())
            .collect();
        for code in expired {
            self.leases.remove(&code);
            self.pool.push((code, f64::NEG_INFINITY));
        }

        // Prune stale pool entries eagerly.
        while let Some(&(_, bound)) = self.pool.last() {
            if bound >= self.incumbent {
                self.pool.pop();
                self.completed += 1;
            } else {
                break;
            }
        }

        if let Some((code, _)) = self.pool.pop() {
            self.leases.insert(code.clone(), (worker, now));
            (
                CentralMsg::Task {
                    code,
                    incumbent: self.incumbent,
                },
                Vec::new(),
            )
        } else if self.leases.is_empty() {
            // Nothing pending, nothing leased: finished.
            self.done = true;
            (
                CentralMsg::Done {
                    incumbent: self.incumbent,
                },
                self.workers.clone(),
            )
        } else {
            (CentralMsg::Wait, Vec::new())
        }
    }

    /// Pending + leased task count.
    pub fn open_tasks(&self) -> usize {
        self.pool.len() + self.leases.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn manager_hands_out_root_first() {
        let mut m = Manager::new(0.0, vec![1, 2], t(1000));
        let (reply, bcast) = m.on_fetch(1, None, t(0));
        assert!(matches!(reply, CentralMsg::Task { code, .. } if code.is_root()));
        assert!(bcast.is_empty());
    }

    #[test]
    fn single_leaf_completes_computation() {
        let mut m = Manager::new(0.0, vec![1, 2], t(1000));
        let (reply, _) = m.on_fetch(1, None, t(0));
        let code = match reply {
            CentralMsg::Task { code, .. } => code,
            other => panic!("expected task, got {other:?}"),
        };
        let (reply, bcast) = m.on_fetch(
            1,
            Some((
                code,
                WorkerResult {
                    solution: Some(4.0),
                    children: None,
                },
            )),
            t(10),
        );
        assert!(matches!(reply, CentralMsg::Done { incumbent } if incumbent == 4.0));
        assert_eq!(bcast, vec![1, 2]);
        assert!(m.done);
    }

    #[test]
    fn branch_results_enqueue_children() {
        let mut m = Manager::new(0.0, vec![1], t(1000));
        let (reply, _) = m.on_fetch(1, None, t(0));
        let code = match reply {
            CentralMsg::Task { code, .. } => code,
            _ => unreachable!(),
        };
        m.on_fetch(
            1,
            Some((
                code,
                WorkerResult {
                    solution: None,
                    children: Some((1, 0.5, 0.7)),
                },
            )),
            t(5),
        );
        assert_eq!(m.open_tasks(), 2); // one leased to the fetcher, one pooled
    }

    #[test]
    fn expired_lease_is_reissued() {
        let mut m = Manager::new(0.0, vec![1, 2], t(100));
        let (reply, _) = m.on_fetch(1, None, t(0));
        let leased = match reply {
            CentralMsg::Task { code, .. } => code,
            _ => unreachable!(),
        };
        // Worker 1 silently dies; worker 2 fetches after the timeout.
        let (reply, _) = m.on_fetch(2, None, t(200));
        match reply {
            CentralMsg::Task { code, .. } => assert_eq!(code, leased),
            other => panic!("expected reissued lease, got {other:?}"),
        }
    }

    #[test]
    fn stale_result_from_old_leaseholder_ignored() {
        let mut m = Manager::new(0.0, vec![1, 2], t(100));
        let (reply, _) = m.on_fetch(1, None, t(0));
        let code = match reply {
            CentralMsg::Task { code, .. } => code,
            _ => unreachable!(),
        };
        // Lease expires and is reissued to worker 2.
        let (_, _) = m.on_fetch(2, None, t(200));
        let before = m.completed;
        // Worker 1's late result must not double-complete.
        m.on_fetch(
            1,
            Some((
                code,
                WorkerResult {
                    solution: Some(1.0),
                    children: None,
                },
            )),
            t(210),
        );
        assert_eq!(m.completed, before);
        // But its incumbent... is also ignored (worker 1 no longer holds
        // the lease); worker 2's eventual result will supply it.
        assert!(m.incumbent.is_infinite());
    }

    #[test]
    fn eliminated_children_count_as_completed() {
        let mut m = Manager::new(0.0, vec![1], t(1000));
        m.incumbent = 0.6;
        let (reply, _) = m.on_fetch(1, None, t(0));
        let code = match reply {
            CentralMsg::Task { code, .. } => code,
            _ => unreachable!(),
        };
        let (reply, _) = m.on_fetch(
            1,
            Some((
                code,
                WorkerResult {
                    solution: None,
                    children: Some((1, 0.7, 0.9)), // both ≥ incumbent
                },
            )),
            t(5),
        );
        // Both children eliminated ⇒ computation done.
        assert!(matches!(reply, CentralMsg::Done { .. }));
    }
}
