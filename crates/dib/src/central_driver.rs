//! DES harness for the centralized manager–worker baseline.

use crate::central::{CentralMsg, Manager, WorkerResult};
use ftbb_core::{Expander, TreeExpander};
use ftbb_des::{Ctx, Engine, ProcId, Process, RunLimits, SimTime};
use ftbb_net::{Network, NetworkConfig};
use ftbb_tree::{BasicTree, Code};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Timers of the centralized actors.
#[derive(Debug, Clone)]
pub enum CentralTimer {
    /// A worker finished expanding; carries the result to report.
    WorkDone {
        /// The expanded code.
        code: Code,
        /// The outcome.
        result: WorkerResult,
    },
    /// Retry a fetch after a `Wait`.
    Retry,
}

struct SharedNet {
    net: Network,
}

enum Role {
    Manager(Manager),
    Worker {
        expander: TreeExpander,
        manager: ProcId,
        terminated: bool,
        expanded: u64,
    },
}

/// One actor of the centralized system (process 0 = manager).
pub struct CentralActor {
    role: Role,
    shared: Rc<RefCell<SharedNet>>,
    /// Manager dispatch overhead per fetch, modeling its serial bottleneck.
    dispatch_overhead: SimTime,
    busy_until: SimTime,
    /// Manager busy time accumulated (bottleneck measurement).
    pub manager_busy: SimTime,
}

impl CentralActor {
    fn send(&mut self, ctx: &mut Ctx<'_, CentralMsg, CentralTimer>, to: ProcId, msg: CentralMsg) {
        self.send_after(ctx, to, msg, SimTime::ZERO);
    }

    /// Send with an extra local delay (the manager's dispatch queueing).
    fn send_after(
        &mut self,
        ctx: &mut Ctx<'_, CentralMsg, CentralTimer>,
        to: ProcId,
        msg: CentralMsg,
        extra: SimTime,
    ) {
        let bytes = msg.wire_size();
        let verdict =
            self.shared
                .borrow_mut()
                .net
                .transmit(ctx.pid(), to, bytes, ctx.now(), ctx.rng());
        match verdict {
            Ok(delay) => ctx.send(to, delay + extra, msg),
            Err(_) => ctx.send_lost(to, msg),
        }
    }
}

impl Process for CentralActor {
    type Msg = CentralMsg;
    type Timer = CentralTimer;

    fn on_start(&mut self, ctx: &mut Ctx<'_, CentralMsg, CentralTimer>) {
        if let Role::Worker { manager, .. } = &self.role {
            let to = *manager;
            self.send(ctx, to, CentralMsg::Fetch { result: None });
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, CentralMsg, CentralTimer>,
        from: ProcId,
        msg: CentralMsg,
    ) {
        let now = ctx.now();
        match &mut self.role {
            Role::Manager(manager) => {
                if let CentralMsg::Fetch { result } = msg {
                    // The manager is a serial server: this fetch queues
                    // behind earlier dispatch work, and its reply leaves
                    // only when the dispatcher gets to it.
                    self.busy_until = self.busy_until.max(now) + self.dispatch_overhead;
                    self.manager_busy += self.dispatch_overhead;
                    let queue_delay = self.busy_until - now;
                    let (reply, broadcast) = manager.on_fetch(from.0, result, now);
                    let done = matches!(reply, CentralMsg::Done { .. });
                    let incumbent = manager.incumbent;
                    self.send_after(ctx, from, reply, queue_delay);
                    if done {
                        for w in broadcast {
                            if w != from.0 {
                                self.send_after(
                                    ctx,
                                    ProcId(w),
                                    CentralMsg::Done { incumbent },
                                    queue_delay,
                                );
                            }
                        }
                        ctx.halt();
                    }
                }
            }
            Role::Worker {
                expander,
                terminated,
                expanded,
                ..
            } => match msg {
                CentralMsg::Task { code, .. } => {
                    let expansion = expander.expand(&code);
                    *expanded += 1;
                    let cost = SimTime::from_secs_f64(expansion.cost);
                    self.busy_until = self.busy_until.max(now) + cost;
                    let result = WorkerResult {
                        solution: expansion.solution,
                        children: expansion
                            .children
                            .map(|c| (c.var, c.left_bound, c.right_bound)),
                    };
                    ctx.set_timer(
                        self.busy_until - now,
                        CentralTimer::WorkDone { code, result },
                    );
                }
                CentralMsg::Wait => {
                    ctx.set_timer(SimTime::from_millis(20), CentralTimer::Retry);
                }
                CentralMsg::Done { .. } => {
                    *terminated = true;
                    ctx.halt();
                }
                CentralMsg::Fetch { .. } => {}
            },
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, CentralMsg, CentralTimer>, timer: CentralTimer) {
        let manager = match &self.role {
            Role::Worker { manager, .. } => *manager,
            Role::Manager(_) => return,
        };
        match timer {
            CentralTimer::WorkDone { code, result } => {
                self.send(
                    ctx,
                    manager,
                    CentralMsg::Fetch {
                        result: Some((code, result)),
                    },
                );
            }
            CentralTimer::Retry => {
                self.send(ctx, manager, CentralMsg::Fetch { result: None });
            }
        }
    }
}

/// Configuration of a centralized run.
#[derive(Debug, Clone)]
pub struct CentralConfig {
    /// Total processes (manager + workers).
    pub nprocs: u32,
    /// Network model.
    pub network: NetworkConfig,
    /// Manager dispatch overhead per fetch, seconds.
    pub dispatch_overhead_s: f64,
    /// Lease timeout for worker-failure recovery, seconds.
    pub lease_timeout_s: f64,
    /// Crash schedule.
    pub failures: Vec<(u32, SimTime)>,
    /// Seed.
    pub seed: u64,
    /// Horizon (manager death hangs the system — the point).
    pub horizon: SimTime,
}

impl CentralConfig {
    /// Defaults for `n` processes.
    pub fn new(n: u32) -> Self {
        CentralConfig {
            nprocs: n,
            network: NetworkConfig::paper(),
            dispatch_overhead_s: 2e-3,
            lease_timeout_s: 2.0,
            failures: Vec::new(),
            seed: 1,
            horizon: SimTime::from_secs(3600),
        }
    }
}

/// Outcome of a centralized run.
#[derive(Debug, Clone)]
pub struct CentralRunReport {
    /// Completion time if the computation finished.
    pub exec_time: Option<SimTime>,
    /// Best solution (from the manager, or a worker that heard `Done`).
    pub best: Option<f64>,
    /// Did the system finish?
    pub finished: bool,
    /// Total worker expansions (incl. redone leases).
    pub total_expanded: u64,
    /// Messages sent.
    pub messages: u64,
    /// Fraction of the run the manager spent dispatching (the bottleneck).
    pub manager_busy_fraction: f64,
}

/// Run the centralized baseline over a basic tree.
pub fn run_central(tree: &Arc<BasicTree>, cfg: &CentralConfig) -> CentralRunReport {
    assert!(cfg.nprocs >= 2, "need a manager and at least one worker");
    let n = cfg.nprocs as usize;
    let shared = Rc::new(RefCell::new(SharedNet {
        net: Network::new(cfg.network.clone(), n),
    }));
    let mut engine: Engine<CentralActor> = Engine::new(cfg.seed);
    let root_bound = tree.node(tree.root()).bound;
    let workers: Vec<u32> = (1..cfg.nprocs).collect();
    engine.add_process(
        CentralActor {
            role: Role::Manager(Manager::new(
                root_bound,
                workers,
                SimTime::from_secs_f64(cfg.lease_timeout_s),
            )),
            shared: Rc::clone(&shared),
            dispatch_overhead: SimTime::from_secs_f64(cfg.dispatch_overhead_s),
            busy_until: SimTime::ZERO,
            manager_busy: SimTime::ZERO,
        },
        SimTime::ZERO,
    );
    for _ in 1..cfg.nprocs {
        engine.add_process(
            CentralActor {
                role: Role::Worker {
                    expander: TreeExpander::new(Arc::clone(tree)),
                    manager: ProcId(0),
                    terminated: false,
                    expanded: 0,
                },
                shared: Rc::clone(&shared),
                dispatch_overhead: SimTime::ZERO,
                busy_until: SimTime::ZERO,
                manager_busy: SimTime::ZERO,
            },
            SimTime::ZERO,
        );
    }
    for &(pid, at) in &cfg.failures {
        engine.schedule_crash(ProcId(pid), at);
    }
    let stats = engine.run(RunLimits {
        time_horizon: Some(cfg.horizon),
        max_events: Some(100_000_000),
    });

    let messages = shared.borrow().net.stats().messages_sent;
    let manager = engine.process(ProcId(0));
    let (finished, best, manager_busy) = match &manager.role {
        Role::Manager(m) => (
            m.done,
            if m.incumbent.is_finite() {
                Some(m.incumbent)
            } else {
                None
            },
            manager.manager_busy,
        ),
        _ => unreachable!(),
    };
    let mut total_expanded = 0;
    for pid in 1..n {
        if let Role::Worker { expanded, .. } = &engine.process(ProcId(pid as u32)).role {
            total_expanded += *expanded;
        }
    }
    CentralRunReport {
        exec_time: finished.then_some(stats.end_time),
        best,
        finished,
        total_expanded,
        messages,
        manager_busy_fraction: if stats.end_time.is_zero() {
            0.0
        } else {
            manager_busy.as_secs_f64() / stats.end_time.as_secs_f64()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbb_tree::{random_basic_tree, TreeConfig};

    fn tree() -> Arc<BasicTree> {
        Arc::new(random_basic_tree(&TreeConfig {
            target_nodes: 301,
            mean_cost: 0.01,
            seed: 77,
            ..Default::default()
        }))
    }

    #[test]
    fn central_solves_failure_free() {
        let t = tree();
        let report = run_central(&t, &CentralConfig::new(5));
        assert!(report.finished);
        assert_eq!(report.best, t.optimal());
    }

    #[test]
    fn central_tolerates_worker_crash() {
        let t = tree();
        let mut cfg = CentralConfig::new(5);
        cfg.lease_timeout_s = 0.3;
        cfg.failures = vec![(3, SimTime::from_millis(200))];
        let report = run_central(&t, &cfg);
        assert!(report.finished, "lease reissue must recover worker loss");
        assert_eq!(report.best, t.optimal());
    }

    #[test]
    fn central_dies_with_manager() {
        let t = tree();
        let mut cfg = CentralConfig::new(5);
        cfg.failures = vec![(0, SimTime::from_millis(100))];
        cfg.horizon = SimTime::from_secs(30);
        let report = run_central(&t, &cfg);
        assert!(!report.finished, "manager crash must be fatal");
        assert_eq!(report.exec_time, None);
    }

    #[test]
    fn manager_is_a_bottleneck() {
        // With tiny node costs, adding workers stops helping: the manager's
        // serial dispatch saturates.
        let t = Arc::new(random_basic_tree(&TreeConfig {
            target_nodes: 1001,
            mean_cost: 0.002, // cheap nodes: dispatch-bound
            seed: 3,
            ..Default::default()
        }));
        let small = run_central(&t, &CentralConfig::new(3)).exec_time.unwrap();
        let large = run_central(&t, &CentralConfig::new(17)).exec_time.unwrap();
        let speedup = small.as_secs_f64() / large.as_secs_f64();
        assert!(
            speedup < 4.0,
            "8× more workers must not yield near-linear speedup (got {speedup:.1}×)"
        );
    }
}
