//! # ftbb-dib — the DIB baseline
//!
//! DIB (Finkel & Manber, *DIB — A distributed implementation of
//! backtracking*, TOPLAS 1987) is "the only fully decentralized,
//! fault-tolerant B&B algorithm for distributed-memory architectures" prior
//! to the paper (§3). Its failure recovery tracks *responsibility*: donors
//! remember which machine got each subproblem, completions are reported to
//! the machine the problem came from, and unreported work is redone after a
//! timeout.
//!
//! This crate also hosts the *centralized manager–worker* baseline of §3
//! ([`central`]), whose manager is both a scalability bottleneck and a
//! single point of failure — the two problems the paper's design removes.
//!
//! The paper's comparison (§5.5) highlights DIB's structural weakness: the
//! responsibility chain is rooted at one machine, so that machine must be
//! reliable (or duplicated). This crate reproduces exactly that behaviour:
//! worker failures are survived via redo, but the failure of machine 0
//! leaves the system unable to detect termination —
//! see `driver::tests::dib_hangs_when_root_machine_dies`.

#![warn(missing_docs)]

pub mod central;
pub mod central_driver;
pub mod driver;
pub mod process;

pub use central::{CentralMsg, Manager, WorkerResult};
pub use central_driver::{run_central, CentralConfig, CentralRunReport};
pub use driver::{run_dib, DibRunReport, DibSimConfig};
pub use process::{DibConfig, DibMsg, DibProcess};
