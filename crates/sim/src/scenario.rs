//! Named experiment scenarios: one per table/figure of the paper (§6.3).
//!
//! Each scenario pins the workload tree, the network, the protocol tuning,
//! and the overhead model, so the bench binaries in `ftbb-bench` just sweep
//! the processor counts and print rows.

use crate::driver::SimConfig;
use crate::shared::OverheadModel;
use ftbb_des::SimTime;
use ftbb_tree::{calibrated, BasicTree};
use std::sync::Arc;

/// The Figure 3 workload: ~3,500-node problem, 0.01 s/node, paper network.
pub fn fig3_tree() -> Arc<BasicTree> {
    Arc::new(calibrated::small_3500())
}

/// Simulation config for Figure 3 at `nprocs` processors.
///
/// Timers are scaled to the 0.01 s node granularity: reports flush about
/// every 25 node-times, load-balancing replies time out after 5 node-times.
pub fn fig3_config(nprocs: u32) -> SimConfig {
    let mut cfg = SimConfig::new(nprocs);
    cfg.protocol.report_batch = 16;
    cfg.protocol.report_fanout = 2;
    cfg.protocol.report_interval_s = 0.25;
    cfg.protocol.table_gossip_interval_s = 2.0;
    cfg.protocol.lb_timeout_s = 0.05;
    cfg.protocol.lb_attempts = 3;
    cfg.protocol.recovery_delay_s = 0.25;
    cfg.protocol.recovery_quiet_s = 1.5;
    cfg.protocol.grant_max = 16;
    cfg.overheads = OverheadModel {
        contract_per_code_s: 150e-6,
        send_busy_factor: 1.0,
        recv_fixed_s: 30e-6,
    };
    cfg.sample_interval_s = 0.25;
    cfg.start_stagger_s = 0.005;
    cfg.seed = 301;
    cfg
}

/// The Table 1 / Figure 4 workload: ~79,600-node problem, 3.47 s/node.
pub fn table1_tree() -> Arc<BasicTree> {
    Arc::new(calibrated::large_79600())
}

/// Simulation config for Table 1 at `nprocs` processors.
///
/// Timer scaling follows the granularity: nodes cost ~3.47 s, so reports
/// flush every ~10 node-times and recovery waits ~10 node-times.
pub fn table1_config(nprocs: u32) -> SimConfig {
    let mut cfg = SimConfig::new(nprocs);
    cfg.protocol.report_batch = 24;
    cfg.protocol.report_fanout = 2;
    cfg.protocol.report_interval_s = 30.0;
    cfg.protocol.table_gossip_interval_s = 300.0;
    cfg.protocol.lb_timeout_s = 4.0;
    cfg.protocol.lb_attempts = 3;
    cfg.protocol.recovery_delay_s = 8.0;
    cfg.protocol.recovery_quiet_s = 90.0;
    cfg.protocol.grant_max = 24;
    cfg.overheads = OverheadModel {
        contract_per_code_s: 15e-3,
        send_busy_factor: 1.0,
        recv_fixed_s: 1e-3,
    };
    cfg.sample_interval_s = 60.0;
    cfg.start_stagger_s = 0.5;
    cfg.seed = 791;
    cfg
}

/// The Figure 5/6 workload: a tiny problem on 3 processors, traced.
pub fn fig56_tree() -> Arc<BasicTree> {
    Arc::new(calibrated::tiny())
}

/// Simulation config for Figures 5 and 6 (3 processors, tracing on).
pub fn fig56_config() -> SimConfig {
    let mut cfg = SimConfig::new(3);
    cfg.protocol.report_batch = 4;
    cfg.protocol.report_fanout = 2;
    cfg.protocol.report_interval_s = 0.2;
    cfg.protocol.table_gossip_interval_s = 0.5;
    cfg.protocol.lb_timeout_s = 0.1;
    cfg.protocol.recovery_delay_s = 0.2;
    cfg.protocol.recovery_quiet_s = 0.8;
    cfg.trace = true;
    cfg.sample_interval_s = 0.1;
    cfg.seed = 56;
    cfg
}

/// Figure 6: same as Figure 5 plus the 2-of-3 crash at `fraction` of the
/// failure-free execution time `ref_exec`.
pub fn fig6_config(ref_exec: SimTime, fraction: f64) -> SimConfig {
    let mut cfg = fig56_config();
    cfg.failures = crate::failure::fig6_schedule(3, ref_exec, fraction);
    cfg
}

/// Granularity-study configs (§6.3.1): the Figure 3 problem with node costs
/// multiplied by `factor`, protocol timers scaled to match.
pub fn granularity_config(nprocs: u32, factor: f64) -> SimConfig {
    let mut cfg = fig3_config(nprocs);
    cfg.granularity = factor;
    // Deliberately do NOT scale report/gossip intervals: the paper observes
    // that fixed-interval reports waste communication at coarse granularity
    // ("communication increases unnecessarily because work reports are sent
    // at fixed time intervals") — the bench reproduces that effect. Only
    // the failure-related patience scales.
    cfg.protocol.lb_timeout_s *= factor.max(1.0);
    cfg.protocol.recovery_delay_s *= factor.max(1.0);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_tree_matches_paper_scale() {
        let t = fig3_tree();
        assert!((3_000..=5_000).contains(&t.len()), "{} nodes", t.len());
        let mean = t.stats().mean_cost;
        assert!((mean - 0.01).abs() / 0.01 < 0.2, "mean {mean}");
    }

    #[test]
    fn fig56_runs_quickly() {
        let t = fig56_tree();
        assert!(t.len() < 200);
    }

    #[test]
    fn granularity_scales_patience_not_reports() {
        let base = fig3_config(4);
        let g = granularity_config(4, 10.0);
        assert_eq!(g.granularity, 10.0);
        assert_eq!(
            g.protocol.report_interval_s,
            base.protocol.report_interval_s
        );
        assert!(g.protocol.lb_timeout_s > base.protocol.lb_timeout_s);
    }
}
