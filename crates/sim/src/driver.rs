//! Building and running whole-cluster simulations.

use crate::actor::{SimProcess, TimeBreakdown};
use crate::shared::{OverheadModel, Shared};
use ftbb_core::{BnbProcess, Expander, ProcMetrics, ProtocolConfig, TreeExpander};
use ftbb_des::{Engine, ProcId, RunLimits, RunStats, SimTime, StateInterval};
use ftbb_net::{NetStats, Network, NetworkConfig};
use ftbb_tree::BasicTree;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Full configuration of one simulated run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of processes.
    pub nprocs: u32,
    /// Protocol parameters (shared by all processes).
    pub protocol: ProtocolConfig,
    /// Network model.
    pub network: NetworkConfig,
    /// Overhead model (contraction, send/receive costs).
    pub overheads: OverheadModel,
    /// Granularity multiplier on recorded node costs (§6.2).
    pub granularity: f64,
    /// Per-process relative speeds; empty = all 1.0 (homogeneous).
    pub speeds: Vec<f64>,
    /// Crash schedule: `(process, time)`.
    pub failures: Vec<(u32, SimTime)>,
    /// Non-root processes start uniformly inside `[0, start_stagger_s]`.
    pub start_stagger_s: f64,
    /// Storage sampling period, in seconds.
    pub sample_interval_s: f64,
    /// Master seed (engine + per-process protocol RNGs).
    pub seed: u64,
    /// Record state timelines (Figures 5/6).
    pub trace: bool,
    /// Safety valve on dispatched events.
    pub max_events: u64,
    /// Optional virtual-time horizon.
    pub horizon: Option<SimTime>,
}

impl SimConfig {
    /// A reasonable default configuration for `nprocs` processes on the
    /// paper's network.
    pub fn new(nprocs: u32) -> Self {
        SimConfig {
            nprocs,
            protocol: ProtocolConfig::default(),
            network: NetworkConfig::paper(),
            overheads: OverheadModel::default(),
            granularity: 1.0,
            speeds: Vec::new(),
            failures: Vec::new(),
            start_stagger_s: 0.01,
            sample_interval_s: 1.0,
            seed: 1,
            trace: false,
            max_events: 500_000_000,
            horizon: None,
        }
    }
}

/// Per-process outcome.
#[derive(Debug, Clone)]
pub struct ProcReport {
    /// Time-category totals.
    pub times: TimeBreakdown,
    /// Idle time: lifetime minus busy time.
    pub idle: SimTime,
    /// Protocol counters.
    pub metrics: ProcMetrics,
    /// When the process detected termination (halted).
    pub halted_at: Option<SimTime>,
    /// When the process crashed, if it did.
    pub crashed_at: Option<SimTime>,
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall-clock (virtual) completion: when the last live process halted.
    pub exec_time: SimTime,
    /// Earliest termination detection.
    pub first_detection: Option<SimTime>,
    /// The best solution at the terminated processes (`None` = infeasible).
    pub best: Option<f64>,
    /// Did every non-crashed process detect termination?
    pub all_live_terminated: bool,
    /// Per-process reports.
    pub procs: Vec<ProcReport>,
    /// Aggregated protocol counters.
    pub totals: ProcMetrics,
    /// Network traffic counters.
    pub net: NetStats,
    /// Unique subproblems expanded across the system.
    pub expanded_unique: u64,
    /// Redundant (repeated) expansions.
    pub redundant_expansions: u64,
    /// Peak of summed per-process storage, bytes.
    pub storage_peak_bytes: usize,
    /// Duplicated information at the peak, bytes.
    pub storage_redundant_bytes: usize,
    /// Per-process state timelines (if tracing was on).
    pub timelines: Option<Vec<Vec<StateInterval>>>,
    /// Engine statistics.
    pub engine: RunStats,
}

impl RunReport {
    /// Speedup versus a given uniprocessor reference time.
    pub fn speedup_vs(&self, uniprocessor: SimTime) -> f64 {
        if self.exec_time.is_zero() {
            return 0.0;
        }
        uniprocessor.as_secs_f64() / self.exec_time.as_secs_f64()
    }

    /// Fraction of total busy+idle time spent in a category, system-wide.
    pub fn fraction(&self, pick: impl Fn(&ProcReport) -> SimTime) -> f64 {
        let total: f64 = self
            .procs
            .iter()
            .map(|p| p.times.busy().as_secs_f64() + p.idle.as_secs_f64())
            .sum();
        if total <= 0.0 {
            return 0.0;
        }
        let part: f64 = self.procs.iter().map(|p| pick(p).as_secs_f64()).sum();
        part / total
    }

    /// Communication in MB/hour/processor (Table 1's last column).
    pub fn comm_mb_per_hour_per_proc(&self) -> f64 {
        self.net
            .mb_per_hour_per_proc(self.exec_time, self.procs.len())
    }
}

/// Run one simulation of `tree` under `cfg`.
pub fn run_sim(tree: &Arc<BasicTree>, cfg: &SimConfig) -> RunReport {
    assert!(cfg.nprocs >= 1);
    let n = cfg.nprocs as usize;
    let shared = Rc::new(RefCell::new(Shared::new(
        Network::new(cfg.network.clone(), n),
        n,
        cfg.overheads,
    )));

    let mut engine: Engine<SimProcess> = Engine::new(cfg.seed);
    if cfg.trace {
        engine.enable_trace();
    }

    let mut seeder = SmallRng::seed_from_u64(cfg.seed ^ 0x5eed_5eed);
    let members: Vec<u32> = (0..cfg.nprocs).collect();
    for pid in 0..cfg.nprocs {
        let expander = TreeExpander::with_granularity(Arc::clone(tree), cfg.granularity);
        let root_bound = expander.root_bound();
        let core = if cfg.protocol.membership.is_some() {
            BnbProcess::with_membership(
                pid,
                vec![0], // process 0 doubles as the gossip server
                pid == 0,
                cfg.protocol.clone(),
                root_bound,
                pid == 0,
                cfg.seed.wrapping_mul(0x9e37_79b9).wrapping_add(pid as u64),
                SimTime::ZERO,
            )
        } else {
            BnbProcess::new(
                pid,
                members.clone(),
                cfg.protocol.clone(),
                root_bound,
                pid == 0,
                cfg.seed.wrapping_mul(0x9e37_79b9).wrapping_add(pid as u64),
            )
        };
        let speed = cfg.speeds.get(pid as usize).copied().unwrap_or(1.0);
        let actor = SimProcess::new(
            core,
            expander,
            Rc::clone(&shared),
            speed,
            SimTime::from_secs_f64(cfg.sample_interval_s.max(1e-3)),
        );
        let start_at = if pid == 0 || cfg.start_stagger_s <= 0.0 {
            SimTime::ZERO
        } else {
            SimTime::from_secs_f64(seeder.gen_range(0.0..=cfg.start_stagger_s))
        };
        let got = engine.add_process(actor, start_at);
        debug_assert_eq!(got, ProcId(pid));
    }
    for &(pid, at) in &cfg.failures {
        assert!(pid < cfg.nprocs, "failure schedule names unknown process");
        engine.schedule_crash(ProcId(pid), at);
    }

    let limits = RunLimits {
        time_horizon: cfg.horizon,
        max_events: Some(cfg.max_events),
    };
    let stats = engine.run(limits);

    // ---- collect ----
    let sh = shared.borrow();
    let mut procs = Vec::with_capacity(n);
    let mut totals = ProcMetrics::default();
    let mut best = f64::INFINITY;
    let mut all_live_terminated = true;
    let mut exec_time = SimTime::ZERO;
    for pid in 0..n {
        let actor = engine.process(ProcId(pid as u32));
        let core = actor.core();
        let halted_at = sh.halted_at[pid];
        let crashed_at = sh.crashed_at[pid];
        let lifetime_end = halted_at.or(crashed_at).unwrap_or(stats.end_time);
        let idle = lifetime_end.saturating_sub(actor.times().busy());
        totals.absorb(core.metrics());
        if crashed_at.is_none() {
            if core.is_terminated() {
                best = best.min(core.incumbent());
                exec_time = exec_time.max(halted_at.unwrap_or(stats.end_time));
            } else {
                all_live_terminated = false;
            }
        }
        procs.push(ProcReport {
            times: *actor.times(),
            idle,
            metrics: core.metrics().clone(),
            halted_at,
            crashed_at,
        });
    }
    if !all_live_terminated {
        exec_time = stats.end_time;
    }

    let timelines = if cfg.trace {
        Some(engine.tracer().timelines(n, stats.end_time))
    } else {
        None
    };

    RunReport {
        exec_time,
        first_detection: sh.first_detection,
        best: if best.is_finite() { Some(best) } else { None },
        all_live_terminated,
        procs,
        totals,
        net: sh.net.stats().clone(),
        expanded_unique: sh.expanded_global.len() as u64,
        redundant_expansions: sh.redundant_expansions,
        storage_peak_bytes: sh.peak_storage_sum,
        storage_redundant_bytes: sh.peak_storage_redundant,
        timelines,
        engine: stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbb_tree::{random_basic_tree, TreeConfig};

    fn small_tree() -> Arc<BasicTree> {
        Arc::new(random_basic_tree(&TreeConfig {
            target_nodes: 401,
            mean_cost: 0.01,
            seed: 7,
            ..Default::default()
        }))
    }

    fn quick_cfg(n: u32, seed: u64) -> SimConfig {
        let mut cfg = SimConfig::new(n);
        cfg.seed = seed;
        cfg.protocol.report_interval_s = 0.2;
        cfg.protocol.table_gossip_interval_s = 1.0;
        cfg.protocol.lb_timeout_s = 0.1;
        cfg.protocol.recovery_delay_s = 0.3;
        cfg.sample_interval_s = 0.2;
        cfg
    }

    #[test]
    fn single_process_solves_tree() {
        let tree = small_tree();
        let report = run_sim(&tree, &quick_cfg(1, 3));
        assert!(report.all_live_terminated);
        assert_eq!(report.best, tree.optimal());
        assert_eq!(report.redundant_expansions, 0);
        assert!(report.exec_time > SimTime::ZERO);
    }

    #[test]
    fn four_processes_agree_with_sequential() {
        let tree = small_tree();
        let report = run_sim(&tree, &quick_cfg(4, 11));
        assert!(report.all_live_terminated, "not all terminated");
        assert_eq!(report.best, tree.optimal());
        // Work was actually distributed.
        let working_procs = report
            .procs
            .iter()
            .filter(|p| p.metrics.expanded > 0)
            .count();
        assert!(working_procs >= 2, "only {working_procs} procs worked");
    }

    #[test]
    fn deterministic_replay() {
        let tree = small_tree();
        let a = run_sim(&tree, &quick_cfg(4, 5));
        let b = run_sim(&tree, &quick_cfg(4, 5));
        assert_eq!(a.exec_time, b.exec_time);
        assert_eq!(a.totals.expanded, b.totals.expanded);
        assert_eq!(a.net.messages_sent, b.net.messages_sent);
    }

    #[test]
    fn crash_of_one_process_recovers() {
        let tree = small_tree();
        let mut cfg = quick_cfg(4, 13);
        // Kill process 1 early — its pool contents must be recovered.
        cfg.failures = vec![(1, SimTime::from_millis(300))];
        let report = run_sim(&tree, &cfg);
        assert!(report.all_live_terminated);
        assert_eq!(report.best, tree.optimal());
        assert!(report.procs[1].crashed_at.is_some());
        assert!(report.procs[1].halted_at.is_none());
    }

    #[test]
    fn crash_of_root_holder_recovers() {
        let tree = small_tree();
        let mut cfg = quick_cfg(4, 17);
        cfg.failures = vec![(0, SimTime::from_millis(200))];
        let report = run_sim(&tree, &cfg);
        assert!(report.all_live_terminated);
        assert_eq!(report.best, tree.optimal());
    }

    #[test]
    fn all_but_one_crash_still_solves() {
        // The paper's headline guarantee (§5.5): "the failure of all
        // processes but one still allows the problem to be correctly solved."
        let tree = small_tree();
        let mut cfg = quick_cfg(4, 19);
        cfg.failures = vec![
            (0, SimTime::from_millis(400)),
            (1, SimTime::from_millis(450)),
            (3, SimTime::from_millis(500)),
        ];
        let report = run_sim(&tree, &cfg);
        assert!(report.all_live_terminated);
        assert_eq!(report.best, tree.optimal());
        // The survivor inevitably redid some lost work.
        assert!(report.totals.recoveries > 0 || report.redundant_expansions > 0);
    }

    #[test]
    fn message_loss_does_not_break_correctness() {
        let tree = small_tree();
        let mut cfg = quick_cfg(4, 23);
        cfg.network.loss = ftbb_net::LossModel::with_probability(0.2);
        let report = run_sim(&tree, &cfg);
        assert!(report.all_live_terminated);
        assert_eq!(report.best, tree.optimal());
        assert!(report.net.messages_lost > 0);
    }

    #[test]
    fn trace_produces_timelines() {
        let tree = small_tree();
        let mut cfg = quick_cfg(2, 29);
        cfg.trace = true;
        let report = run_sim(&tree, &cfg);
        let tl = report.timelines.expect("tracing on");
        assert_eq!(tl.len(), 2);
        assert!(tl.iter().all(|t| !t.is_empty()));
    }

    #[test]
    fn breakdown_accounts_time() {
        let tree = small_tree();
        let report = run_sim(&tree, &quick_cfg(3, 31));
        for (i, p) in report.procs.iter().enumerate() {
            let lifetime = p.halted_at.unwrap().as_secs_f64();
            let accounted = (p.times.busy() + p.idle).as_secs_f64();
            // busy + idle covers the lifetime; a small tail past the halt
            // instant is possible (the final termination broadcast is
            // charged at halt time).
            assert!(
                accounted >= lifetime - 1e-9,
                "proc {i}: busy+idle {accounted} < lifetime {lifetime}"
            );
            assert!(
                accounted - lifetime < 0.05 * lifetime + 0.05,
                "proc {i}: unexplained busy tail: {accounted} vs {lifetime}"
            );
            // Expansion time lands in bb or (if every expansion raced with
            // another process) in the redundant bucket.
            assert!(p.times.bb + p.times.redundant > SimTime::ZERO || p.metrics.expanded == 0);
        }
        // Unique expansions ≤ tree size.
        assert!(report.expanded_unique <= tree.len() as u64);
    }

    #[test]
    fn faster_processor_does_more_work() {
        let tree = small_tree();
        let mut cfg = quick_cfg(2, 37);
        cfg.speeds = vec![4.0, 0.5];
        let report = run_sim(&tree, &cfg);
        assert!(report.all_live_terminated);
        assert_eq!(report.best, tree.optimal());
        assert!(
            report.procs[0].metrics.expanded > report.procs[1].metrics.expanded,
            "fast proc {} vs slow {}",
            report.procs[0].metrics.expanded,
            report.procs[1].metrics.expanded
        );
    }
}
