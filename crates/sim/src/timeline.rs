//! ASCII rendering of execution timelines — the Jumpshot substitute for the
//! paper's Figures 5 and 6.

use ftbb_des::{SimTime, StateInterval};
use std::fmt::Write as _;

/// Map a state label to its timeline glyph.
fn glyph(state: &str) -> char {
    match state {
        "bb" => '█',
        "idle" => '·',
        "done" => '─',
        "crashed" => 'X',
        _ => '?',
    }
}

/// Render per-process timelines as an ASCII Gantt chart of `width` columns.
pub fn render(timelines: &[Vec<StateInterval>], end: SimTime, width: usize) -> String {
    assert!(width >= 10);
    let mut out = String::new();
    let total = end.as_secs_f64().max(1e-9);
    for (pid, intervals) in timelines.iter().enumerate() {
        let mut row = vec![' '; width];
        for iv in intervals {
            let a = ((iv.start.as_secs_f64() / total) * width as f64).floor() as usize;
            let b = ((iv.end.as_secs_f64() / total) * width as f64).ceil() as usize;
            let g = glyph(iv.state);
            for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                *cell = g;
            }
        }
        // A crash truncates the row visually.
        if let Some(crash) = intervals.iter().find(|iv| iv.state == "crashed") {
            let a = ((crash.start.as_secs_f64() / total) * width as f64).floor() as usize;
            for (i, cell) in row.iter_mut().enumerate().skip(a.min(width)) {
                *cell = if i == a { 'X' } else { ' ' };
            }
        }
        let _ = writeln!(out, "P{pid:<3} |{}|", row.iter().collect::<String>());
    }
    let _ = writeln!(
        out,
        "     0{}{}",
        " ".repeat(width.saturating_sub(6)),
        format_args!("{:.2}s", total)
    );
    let _ = writeln!(
        out,
        "     █ = B&B work   · = idle/starving   ─ = terminated   X = crashed"
    );
    out
}

/// Export timelines as CSV (`proc,start_s,end_s,state`).
pub fn to_csv(timelines: &[Vec<StateInterval>]) -> String {
    let mut out = String::from("proc,start_s,end_s,state\n");
    for (pid, intervals) in timelines.iter().enumerate() {
        for iv in intervals {
            let _ = writeln!(
                out,
                "{pid},{:.6},{:.6},{}",
                iv.start.as_secs_f64(),
                iv.end.as_secs_f64(),
                iv.state
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: u64, b: u64, state: &'static str) -> StateInterval {
        StateInterval {
            start: SimTime::from_secs(a),
            end: SimTime::from_secs(b),
            state,
        }
    }

    #[test]
    fn renders_rows_per_process() {
        let tl = vec![
            vec![iv(0, 5, "bb"), iv(5, 10, "idle")],
            vec![iv(0, 10, "bb")],
        ];
        let s = render(&tl, SimTime::from_secs(10), 20);
        assert!(s.contains("P0"));
        assert!(s.contains("P1"));
        assert!(s.contains('█'));
        assert!(s.contains('·'));
    }

    #[test]
    fn crash_truncates_row() {
        let tl = vec![vec![iv(0, 5, "bb"), iv(5, 10, "crashed")]];
        let s = render(&tl, SimTime::from_secs(10), 20);
        assert!(s.contains('X'));
        let row = s.lines().next().unwrap();
        // After the crash marker the row is blank.
        let after_x: String = row.chars().skip_while(|&c| c != 'X').skip(1).collect();
        assert!(!after_x.contains('█'));
    }

    #[test]
    fn csv_has_all_intervals() {
        let tl = vec![vec![iv(0, 5, "bb")], vec![iv(0, 2, "idle")]];
        let csv = to_csv(&tl);
        assert_eq!(csv.lines().count(), 3); // header + 2 rows
        assert!(csv.contains("0,0.000000,5.000000,bb"));
    }
}
