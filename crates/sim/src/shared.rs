//! State shared by all simulated processes: the network, the redundancy
//! oracle, and system-wide storage accounting.
//!
//! The DES is single-threaded, so sharing is a plain `Rc<RefCell<…>>`.

use ftbb_des::SimTime;
use ftbb_net::Network;
use ftbb_tree::Code;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashSet};

/// Overhead model: how much process time the protocol machinery costs.
/// These are the knobs behind the paper's Figure 3 cost breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadModel {
    /// Seconds of list-contraction work per code processed during a merge
    /// (receiving a work report requires a contraction pass, §6.3.1).
    pub contract_per_code_s: f64,
    /// Fraction of a message's network latency charged to the sender as
    /// busy "communication time" (1.0 reproduces the paper's model, where
    /// the sender pays `1.5 + 0.005·L` ms per message).
    pub send_busy_factor: f64,
    /// Fixed receive-processing overhead per message, in seconds.
    pub recv_fixed_s: f64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            contract_per_code_s: 100e-6,
            send_busy_factor: 1.0,
            recv_fixed_s: 20e-6,
        }
    }
}

/// Mutable state shared by every simulated process.
pub struct Shared {
    /// The network model (latency, loss, partitions, traffic stats).
    pub net: Network,
    /// Every code ever expanded anywhere — the redundancy oracle.
    pub expanded_global: HashSet<Code>,
    /// Expansions of a code some process had already expanded.
    pub redundant_expansions: u64,
    /// Latest table snapshot (minimal codes) per process.
    pub table_codes: Vec<Vec<Code>>,
    /// Latest pool+fresh wire bytes per process.
    pub aux_bytes: Vec<usize>,
    /// Peak of the summed storage (wire bytes of tables + aux).
    pub peak_storage_sum: usize,
    /// Duplicated information at the peak: bytes of table codes stored at
    /// more than one site (`Σ tables − distinct codes`).
    pub peak_storage_redundant: usize,
    /// Halt (termination-detected) time per process.
    pub halted_at: Vec<Option<SimTime>>,
    /// Crash time per process.
    pub crashed_at: Vec<Option<SimTime>>,
    /// Earliest termination detection.
    pub first_detection: Option<SimTime>,
    /// The overhead model.
    pub overheads: OverheadModel,
}

impl Shared {
    /// Fresh shared state for `nprocs` processes.
    pub fn new(net: Network, nprocs: usize, overheads: OverheadModel) -> Self {
        Shared {
            net,
            expanded_global: HashSet::new(),
            redundant_expansions: 0,
            table_codes: vec![Vec::new(); nprocs],
            aux_bytes: vec![0; nprocs],
            peak_storage_sum: 0,
            peak_storage_redundant: 0,
            halted_at: vec![None; nprocs],
            crashed_at: vec![None; nprocs],
            first_detection: None,
            overheads,
        }
    }

    /// Record a storage sample for one process and update the peaks.
    /// `table_codes` is the process's contracted table; `aux` the wire
    /// bytes of its pool and pending-report codes.
    pub fn sample_storage(&mut self, pid: usize, table_codes: Vec<Code>, aux: usize) {
        self.table_codes[pid] = table_codes;
        self.aux_bytes[pid] = aux;
        let wire = |codes: &[Code]| codes.iter().map(|c| c.wire_size()).sum::<usize>();
        let tables: usize = self.table_codes.iter().map(|c| wire(c)).sum();
        let sum = tables + self.aux_bytes.iter().sum::<usize>();
        if sum > self.peak_storage_sum {
            self.peak_storage_sum = sum;
            // Bytes of codes stored at more than one site.
            let distinct: BTreeSet<&Code> = self.table_codes.iter().flatten().collect();
            let distinct_bytes: usize = distinct.iter().map(|c| c.wire_size()).sum();
            self.peak_storage_redundant = tables.saturating_sub(distinct_bytes);
        }
    }

    /// Record that `pid` expanded `code`; returns true if it was redundant.
    pub fn record_expansion(&mut self, code: &Code) -> bool {
        if self.expanded_global.insert(code.clone()) {
            false
        } else {
            self.redundant_expansions += 1;
            true
        }
    }

    /// Record a termination detection.
    pub fn record_halt(&mut self, pid: usize, at: SimTime) {
        self.halted_at[pid] = Some(at);
        if self.first_detection.is_none() {
            self.first_detection = Some(at);
        }
    }

    /// Record a crash.
    pub fn record_crash(&mut self, pid: usize, at: SimTime) {
        self.crashed_at[pid] = Some(at);
        self.table_codes[pid].clear();
        self.aux_bytes[pid] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbb_net::NetworkConfig;

    fn shared(n: usize) -> Shared {
        Shared::new(
            Network::new(NetworkConfig::paper(), n),
            n,
            OverheadModel::default(),
        )
    }

    #[test]
    fn storage_peak_tracking() {
        let mut s = shared(2);
        let code = Code::from_decisions(&[(1, true)]); // 4 wire bytes
        s.sample_storage(0, vec![code.clone()], 100);
        s.sample_storage(1, vec![code.clone()], 50);
        assert_eq!(s.peak_storage_sum, 158);
        // Both procs store the same code: its bytes count as redundant once.
        assert_eq!(s.peak_storage_redundant, 4);
        s.sample_storage(0, vec![], 0);
        assert_eq!(s.peak_storage_sum, 158); // peak retained
    }

    #[test]
    fn redundancy_oracle() {
        let mut s = shared(1);
        let c = Code::from_decisions(&[(1, true)]);
        assert!(!s.record_expansion(&c));
        assert!(s.record_expansion(&c));
        assert_eq!(s.redundant_expansions, 1);
    }

    #[test]
    fn first_detection_is_earliest() {
        let mut s = shared(3);
        s.record_halt(1, SimTime::from_secs(5));
        s.record_halt(0, SimTime::from_secs(9));
        assert_eq!(s.first_detection, Some(SimTime::from_secs(5)));
    }
}
