//! The DES actor wrapping one protocol process.
//!
//! Responsibilities: run the expander for `StartWork` actions, transmit
//! messages through the network model, and charge process time to the
//! paper's cost categories (B&B, communication, list contraction, load
//! balancing, redundant work; idle is derived).
//!
//! The actor models a single-threaded machine with the paper's polling loop
//! ("each process, after it has solved a B&B subproblem, checks to see
//! whether any messages are pending", §6.2): a `busy_until` watermark
//! serializes expansion work and message processing.

use crate::shared::Shared;
use ftbb_core::{Action, BnbProcess, Expander, Msg, PEvent, PTimer, TreeExpander};
use ftbb_des::{Ctx, ProcId, Process, SimTime};
use ftbb_tree::Code;
use std::cell::RefCell;
use std::rc::Rc;

/// Per-process time-category accounting (the Figure 3 stack).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimeBreakdown {
    /// Useful B&B expansion time.
    pub bb: SimTime,
    /// Fault-tolerance communication (work reports, table gossip,
    /// membership) — sender side.
    pub comm: SimTime,
    /// Load-balancing time (requests, grants, denials, and their handling).
    pub lb: SimTime,
    /// List-contraction time (merging received reports).
    pub contract: SimTime,
    /// Redundant expansion time (re-doing work another process already did,
    /// or work discarded after a redundancy interrupt).
    pub redundant: SimTime,
}

impl TimeBreakdown {
    /// Sum of all busy categories.
    pub fn busy(&self) -> SimTime {
        self.bb + self.comm + self.lb + self.contract + self.redundant
    }
}

/// Timers used by the actor.
#[derive(Debug, Clone)]
pub enum SimTimer {
    /// A protocol timer.
    Core(PTimer),
    /// A scheduled expansion completion.
    WorkDone {
        /// Work sequence (stale completions are interrupted work).
        seq: u64,
        /// The expanded code (for the redundancy oracle).
        code: Code,
        /// The precomputed expansion.
        expansion: ftbb_core::Expansion,
        /// Its charged virtual cost.
        cost: SimTime,
    },
    /// Periodic storage sampling.
    Sample,
}

/// One simulated machine.
pub struct SimProcess {
    core: BnbProcess,
    expander: TreeExpander,
    shared: Rc<RefCell<Shared>>,
    /// Relative speed (paper §4: heterogeneity); higher = faster.
    speed: f64,
    busy_until: SimTime,
    sample_interval: SimTime,
    times: TimeBreakdown,
    last_state: &'static str,
}

impl SimProcess {
    /// Build an actor.
    pub fn new(
        core: BnbProcess,
        expander: TreeExpander,
        shared: Rc<RefCell<Shared>>,
        speed: f64,
        sample_interval: SimTime,
    ) -> Self {
        assert!(speed > 0.0);
        SimProcess {
            core,
            expander,
            shared,
            speed,
            busy_until: SimTime::ZERO,
            sample_interval,
            times: TimeBreakdown::default(),
            last_state: "",
        }
    }

    /// The protocol process (post-run inspection).
    pub fn core(&self) -> &BnbProcess {
        &self.core
    }

    /// Time-category totals.
    pub fn times(&self) -> &TimeBreakdown {
        &self.times
    }

    fn charge(&mut self, now: SimTime, cost: SimTime, bucket: Bucket) {
        self.busy_until = self.busy_until.max(now) + cost;
        match bucket {
            Bucket::Comm => self.times.comm += cost,
            Bucket::Lb => self.times.lb += cost,
            Bucket::Contract => self.times.contract += cost,
        }
    }

    fn trace_if_changed(&mut self, ctx: &mut Ctx<'_, Msg, SimTimer>, state: &'static str) {
        if self.last_state != state {
            self.last_state = state;
            ctx.trace_state(state);
        }
    }

    fn apply_actions(&mut self, ctx: &mut Ctx<'_, Msg, SimTimer>, actions: Vec<Action>) {
        let now = ctx.now();
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    let bytes = msg.wire_size();
                    let bucket = if msg.kind().is_load_balancing() {
                        Bucket::Lb
                    } else {
                        Bucket::Comm
                    };
                    let (mean, factor) = {
                        let sh = self.shared.borrow();
                        (sh.net.mean_latency(bytes), sh.overheads.send_busy_factor)
                    };
                    self.charge(now, mean.scale(factor), bucket);
                    let verdict = self.shared.borrow_mut().net.transmit(
                        ctx.pid(),
                        ProcId(to),
                        bytes,
                        now,
                        ctx.rng(),
                    );
                    match verdict {
                        Ok(delay) => ctx.send(ProcId(to), delay, msg),
                        Err(_) => ctx.send_lost(ProcId(to), msg),
                    }
                }
                Action::StartWork { code, seq } => {
                    let expansion = self.expander.expand(&code);
                    let cost = SimTime::from_secs_f64(expansion.cost / self.speed);
                    let start = self.busy_until.max(now);
                    self.busy_until = start + cost;
                    ctx.set_timer(
                        self.busy_until - now,
                        SimTimer::WorkDone {
                            seq,
                            code,
                            expansion,
                            cost,
                        },
                    );
                    self.trace_if_changed(ctx, "bb");
                }
                Action::SetTimer { delay_s, timer } => {
                    ctx.set_timer(SimTime::from_secs_f64(delay_s), SimTimer::Core(timer));
                }
                Action::Halt => {
                    self.shared.borrow_mut().record_halt(ctx.pid().index(), now);
                    self.trace_if_changed(ctx, "done");
                    ctx.halt();
                }
            }
        }
        if !self.core.is_terminated() {
            let state = if self.core.is_working() { "bb" } else { "idle" };
            self.trace_if_changed(ctx, state);
        }
    }
}

enum Bucket {
    Comm,
    Lb,
    Contract,
}

impl Process for SimProcess {
    type Msg = Msg;
    type Timer = SimTimer;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg, SimTimer>) {
        self.trace_if_changed(ctx, "idle");
        ctx.set_timer(self.sample_interval, SimTimer::Sample);
        let actions = self.core.handle(PEvent::Start, ctx.now());
        self.apply_actions(ctx, actions);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg, SimTimer>, from: ProcId, msg: Msg) {
        let now = ctx.now();
        let kind = msg.kind();
        let merged_before = self.core.metrics().merge_codes_processed;
        let actions = self.core.handle(PEvent::Recv { from: from.0, msg }, now);
        let merged = self.core.metrics().merge_codes_processed - merged_before;
        let (recv_fixed, per_code) = {
            let sh = self.shared.borrow();
            (sh.overheads.recv_fixed_s, sh.overheads.contract_per_code_s)
        };
        let cost = SimTime::from_secs_f64(recv_fixed + per_code * merged as f64);
        let bucket = if kind.is_load_balancing() {
            Bucket::Lb
        } else {
            Bucket::Contract
        };
        self.charge(now, cost, bucket);
        self.apply_actions(ctx, actions);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg, SimTimer>, timer: SimTimer) {
        let now = ctx.now();
        match timer {
            SimTimer::Core(t) => {
                let actions = self.core.handle(PEvent::Timer(t), now);
                self.apply_actions(ctx, actions);
            }
            SimTimer::WorkDone {
                seq,
                code,
                expansion,
                cost,
            } => {
                let expanded_before = self.core.metrics().expanded;
                let actions = self.core.handle(PEvent::WorkDone { seq, expansion }, now);
                let consumed = self.core.metrics().expanded > expanded_before;
                if consumed {
                    let redundant = self.shared.borrow_mut().record_expansion(&code);
                    if redundant {
                        self.times.redundant += cost;
                    } else {
                        self.times.bb += cost;
                    }
                } else {
                    // Interrupted (stale) work: the time was spent for nothing.
                    self.times.redundant += cost;
                }
                self.apply_actions(ctx, actions);
            }
            SimTimer::Sample => {
                let (codes, aux) = self.core.storage_snapshot();
                self.shared
                    .borrow_mut()
                    .sample_storage(ctx.pid().index(), codes, aux);
                ctx.set_timer(self.sample_interval, SimTimer::Sample);
            }
        }
    }

    fn on_kill(&mut self, ctx: &mut Ctx<'_, Msg, SimTimer>) {
        self.shared
            .borrow_mut()
            .record_crash(ctx.pid().index(), ctx.now());
    }
}
