//! # ftbb-sim — the simulation framework of the paper's §6
//!
//! Wires [`ftbb_core::BnbProcess`] protocol processes into the
//! [`ftbb_des`] discrete-event engine and the [`ftbb_net`] network model,
//! reproducing the Parsec-based methodology of the paper:
//!
//! * workloads are recorded or random **basic trees**, replayed with
//!   incumbent-dependent pruning, so the explored B&B tree varies with
//!   communication timing and processor count;
//! * communication costs follow `1.5 + 0.005·L` ms;
//! * process time is charged to the Figure 3 categories (B&B,
//!   communication, list contraction, load balancing, redundant; idle is
//!   derived);
//! * storage and traffic are accounted system-wide (Table 1);
//! * crash schedules inject fail-stop failures (Figure 6, §6.3.2);
//! * state timelines reproduce the Jumpshot views (Figures 5/6).

#![warn(missing_docs)]

pub mod actor;
pub mod driver;
pub mod failure;
pub mod scenario;
pub mod shared;
pub mod timeline;

pub use actor::{SimProcess, TimeBreakdown};
pub use driver::{run_sim, ProcReport, RunReport, SimConfig};
pub use failure::{fig6_schedule, kill_all_but_one, kill_random_k};
pub use shared::{OverheadModel, Shared};
