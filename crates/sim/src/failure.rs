//! Failure-schedule builders for the reliability experiments (§6.3.2).

use ftbb_des::SimTime;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Kill `k` distinct random processes out of `n` at the given times
/// (cyclic over `times` if `k > times.len()`). Deterministic per seed.
pub fn kill_random_k(n: u32, k: u32, times: &[SimTime], seed: u64) -> Vec<(u32, SimTime)> {
    assert!(k < n, "must leave at least one process alive");
    assert!(!times.is_empty());
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pids: Vec<u32> = (0..n).collect();
    pids.shuffle(&mut rng);
    pids.truncate(k as usize);
    pids.iter()
        .enumerate()
        .map(|(i, &p)| (p, times[i % times.len()]))
        .collect()
}

/// Kill every process except `survivor` at time `at` (the paper's headline
/// scenario and Figure 6, generalized).
pub fn kill_all_but_one(n: u32, survivor: u32, at: SimTime) -> Vec<(u32, SimTime)> {
    assert!(survivor < n);
    (0..n).filter(|&p| p != survivor).map(|p| (p, at)).collect()
}

/// The Figure 6 schedule: on `n` processes, all but process 0 crash at
/// `fraction` of the reference execution time `ref_exec`.
pub fn fig6_schedule(n: u32, ref_exec: SimTime, fraction: f64) -> Vec<(u32, SimTime)> {
    assert!((0.0..=1.0).contains(&fraction));
    let at = SimTime::from_secs_f64(ref_exec.as_secs_f64() * fraction);
    kill_all_but_one(n, 0, at)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_random_k_is_deterministic_and_distinct() {
        let t = [SimTime::from_secs(1), SimTime::from_secs(2)];
        let a = kill_random_k(10, 4, &t, 9);
        let b = kill_random_k(10, 4, &t, 9);
        assert_eq!(a, b);
        let mut pids: Vec<u32> = a.iter().map(|&(p, _)| p).collect();
        pids.sort_unstable();
        pids.dedup();
        assert_eq!(pids.len(), 4);
    }

    #[test]
    fn kill_all_but_one_spares_survivor() {
        let sched = kill_all_but_one(5, 2, SimTime::from_secs(3));
        assert_eq!(sched.len(), 4);
        assert!(sched.iter().all(|&(p, _)| p != 2));
    }

    #[test]
    fn fig6_schedule_is_at_fraction() {
        let sched = fig6_schedule(3, SimTime::from_secs(100), 0.85);
        assert_eq!(sched.len(), 2);
        assert!(sched.iter().all(|&(_, t)| t == SimTime::from_secs(85)));
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn cannot_kill_everyone() {
        kill_random_k(3, 3, &[SimTime::ZERO], 0);
    }
}
