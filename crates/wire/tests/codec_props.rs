//! Property tests of the framed codec: every message variant survives
//! encode → frame → split-read → decode, and corrupt or truncated frames
//! fail loudly (errors), never quietly (panics or wrong data).

use ftbb_bnb::AnyInstance;
use ftbb_core::{GrantItem, JobId, Msg};
use ftbb_gossip::{MembershipMsg, ViewDigest};
use ftbb_runtime::Envelope;
use ftbb_tree::Code;
use ftbb_wire::{encode_announce, encode_frame, FrameDecoder, WireError, WireFrame};
use proptest::prelude::*;

/// Strategy for an arbitrary (possibly deep) tree code.
fn code_strategy() -> impl Strategy<Value = Code> {
    collection::vec((0u16..512, any::<bool>()), 0..24)
        .prop_map(|pairs| Code::from_decisions(&pairs))
}

fn grant_item_strategy() -> impl Strategy<Value = GrantItem> {
    (code_strategy(), any::<u32>()).prop_map(|(code, b)| GrantItem {
        code,
        bound: b as f64 / 16.0,
    })
}

/// Strategy covering every `Msg` variant, including `Membership` and
/// multi-item `WorkGrant`s.
fn msg_strategy() -> impl Strategy<Value = Msg> {
    (0u8..6).prop_flat_map(|variant| {
        let incumbent_of = |raw: u32| {
            if raw.is_multiple_of(7) {
                f64::INFINITY
            } else {
                raw as f64 / 3.0
            }
        };
        match variant {
            0 => (any::<u32>(), Just(()))
                .prop_map(move |(i, _)| Msg::WorkRequest {
                    incumbent: incumbent_of(i),
                })
                .boxed(),
            1 => (collection::vec(grant_item_strategy(), 0..12), any::<u32>())
                .prop_map(move |(items, i)| Msg::WorkGrant {
                    items,
                    incumbent: incumbent_of(i),
                })
                .boxed(),
            2 => (any::<u32>(), Just(()))
                .prop_map(move |(i, _)| Msg::WorkDeny {
                    incumbent: incumbent_of(i),
                })
                .boxed(),
            3 => (collection::vec(code_strategy(), 0..16), any::<u32>())
                .prop_map(move |(codes, i)| Msg::WorkReport {
                    codes,
                    incumbent: incumbent_of(i),
                })
                .boxed(),
            4 => (collection::vec(code_strategy(), 0..16), any::<u32>())
                .prop_map(move |(codes, i)| Msg::TableGossip {
                    codes,
                    incumbent: incumbent_of(i),
                })
                .boxed(),
            _ => (
                0u8..3,
                any::<u32>(),
                collection::vec((0u32..64, 0u64..1000), 0..10),
            )
                .prop_map(|(kind, member, entries)| {
                    Msg::Membership(match kind {
                        0 => MembershipMsg::Join { member },
                        1 => MembershipMsg::Gossip(ViewDigest { entries }),
                        _ => MembershipMsg::Welcome(ViewDigest { entries }),
                    })
                })
                .boxed(),
        }
    })
}

/// Strategy producing every [`AnyInstance`] variant from generator
/// parameters (all three are deterministic per seed, so shrinking stays
/// meaningful).
fn any_instance_strategy() -> impl Strategy<Value = AnyInstance> {
    (0u8..3).prop_flat_map(|variant| match variant {
        0 => (4u64..14, 10u64..60, any::<u64>())
            .prop_map(|(n, range, seed)| {
                AnyInstance::Knapsack(ftbb_bnb::KnapsackInstance::generate(
                    n as usize,
                    range.max(2),
                    ftbb_bnb::Correlation::Weak,
                    0.5,
                    seed,
                ))
            })
            .boxed(),
        1 => (2u64..12, 4u64..30, any::<u64>())
            .prop_map(|(vars, clauses, seed)| {
                AnyInstance::MaxSat(ftbb_bnb::MaxSatInstance::generate(
                    vars as u16,
                    clauses as usize,
                    seed,
                ))
            })
            .boxed(),
        _ => (3u64..120, any::<u64>())
            .prop_map(|(nodes, seed)| {
                AnyInstance::from(ftbb_tree::generator::random_basic_tree(
                    &ftbb_tree::generator::TreeConfig {
                        target_nodes: nodes as usize,
                        seed,
                        ..Default::default()
                    },
                ))
            })
            .boxed(),
    })
}

/// Strategy for a piggybacked address book (codec v4):
/// `(id, addr, incarnation)` entries.
fn book_strategy() -> impl Strategy<Value = Vec<(u32, std::net::SocketAddr, u32)>> {
    collection::vec((any::<u32>(), 1u16..65535, any::<u32>()), 0..8).prop_map(|entries| {
        entries
            .into_iter()
            .map(|(id, port, inc)| (id, std::net::SocketAddr::from(([127, 0, 0, 1], port)), inc))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Round trip through the frame codec with arbitrary read chunking —
    /// including the incarnation tags the lifecycle refactor added and
    /// the piggybacked address book codec v4 added.
    #[test]
    fn every_msg_survives_framing_and_split_reads(
        msg in msg_strategy(),
        job in any::<u64>(),
        from in any::<u32>(),
        from_incarnation in any::<u32>(),
        to_incarnation in any::<u32>(),
        book in book_strategy(),
        chunk in 1usize..64,
    ) {
        let env = Envelope { job: JobId::from(job), from, msg };
        let frame = encode_frame(&env, from_incarnation, to_incarnation, &book);
        prop_assert!(frame.encoded_len() > frame.wire_size,
            "frame header must add bytes");

        let mut dec = FrameDecoder::new();
        let mut decoded = None;
        for piece in frame.bytes.chunks(chunk) {
            dec.push(piece);
            if let Some(got) = dec.try_next().expect("valid frame decodes") {
                prop_assert!(decoded.is_none(), "only one frame was sent");
                decoded = Some(got);
            }
        }
        let got = decoded.expect("frame fully fed");
        prop_assert_eq!(got, WireFrame::Protocol { env, from_incarnation, to_incarnation, book });
    }

    /// Back-to-back frames decode independently in order.
    #[test]
    fn coalesced_streams_split_correctly(
        msgs in collection::vec(msg_strategy(), 1..8),
        from in any::<u32>(),
    ) {
        let mut stream = Vec::new();
        for msg in &msgs {
            stream.extend_from_slice(
                &encode_frame(&Envelope { job: JobId::DEFAULT, from, msg: msg.clone() }, 0, 0, &[]).bytes,
            );
        }
        let mut dec = FrameDecoder::new();
        dec.push(&stream);
        for msg in &msgs {
            let got = dec
                .try_next()
                .expect("decodes")
                .expect("present")
                .into_envelope()
                .expect("protocol frame");
            prop_assert_eq!(&got.msg, msg);
        }
        prop_assert_eq!(dec.try_next().expect("clean tail"), None);
    }

    /// Any strict prefix of a frame pends (needs more bytes) — it never
    /// errors, never panics, and never yields a message.
    #[test]
    fn truncated_frames_pend_not_panic(msg in msg_strategy(), cut_seed in any::<u64>()) {
        let frame = encode_frame(&Envelope { job: JobId::DEFAULT, from: 1, msg }, 0, 0, &[]).bytes;
        let cut = (cut_seed as usize) % frame.len();
        let mut dec = FrameDecoder::new();
        dec.push(&frame[..cut]);
        prop_assert_eq!(dec.try_next().expect("prefix is pending"), None);
    }

    /// A single flipped byte anywhere in the frame is detected: decode
    /// returns an error or keeps pending; it never returns wrong data.
    #[test]
    fn corruption_never_decodes_silently(msg in msg_strategy(), pos_seed in any::<u64>(), flip in 1u8..=255) {
        let env = Envelope { job: JobId::from(7), from: 9, msg };
        let frame = encode_frame(&env, 3, 4, &[]).bytes;
        let pos = (pos_seed as usize) % frame.len();
        let mut bad = frame.to_vec();
        bad[pos] ^= flip;
        let mut dec = FrameDecoder::new();
        dec.push(&bad);
        match dec.try_next() {
            Err(_) => {}          // detected
            Ok(None) => {}        // length grew: stream pends forever
            Ok(Some(got)) => prop_assert_eq!(
                got,
                WireFrame::Protocol { env, from_incarnation: 3, to_incarnation: 4, book: vec![] },
                "corrupt frame decoded to different data"
            ),
        }
    }

    /// Join frames survive framing and split reads.
    #[test]
    fn every_join_survives_framing(
        from in any::<u32>(),
        incarnation in any::<u32>(),
        port in 1u16..65535,
        chunk in 1usize..64,
    ) {
        let join = ftbb_wire::JoinFrame {
            from,
            incarnation,
            addr: std::net::SocketAddr::from(([127, 0, 0, 1], port)),
        };
        let frame = ftbb_wire::encode_join(&join);
        let mut dec = FrameDecoder::new();
        let mut decoded = None;
        for piece in frame.bytes.chunks(chunk) {
            dec.push(piece);
            if let Some(got) = dec.try_next().expect("valid frame decodes") {
                prop_assert!(decoded.is_none(), "only one frame was sent");
                decoded = Some(got);
            }
        }
        match decoded.expect("frame fully fed") {
            WireFrame::Join(got) => prop_assert_eq!(got, join),
            other => prop_assert!(false, "expected join, got {:?}", other),
        }
    }

    /// Every `AnyInstance` variant survives the announce frame: encode →
    /// split-read decode → identical, validated instance.
    #[test]
    fn every_instance_survives_the_announce_frame(
        instance in any_instance_strategy(),
        from in any::<u32>(),
        incarnation in any::<u32>(),
        job in any::<u64>(),
        chunk in 1usize..512,
    ) {
        let frame = encode_announce(from, incarnation, JobId::from(job), &instance);
        prop_assert!(!frame.exceeds_limit());
        let mut dec = FrameDecoder::new();
        let mut decoded = None;
        for piece in frame.bytes.chunks(chunk) {
            dec.push(piece);
            if let Some(got) = dec.try_next().expect("valid frame decodes") {
                prop_assert!(decoded.is_none(), "only one frame was sent");
                decoded = Some(got);
            }
        }
        match decoded.expect("frame fully fed") {
            WireFrame::Announce { from: got_from, incarnation: got_inc, job: got_job, instance: got } => {
                prop_assert_eq!(got_from, from);
                prop_assert_eq!(got_inc, incarnation);
                prop_assert_eq!(got_job, JobId::from(job));
                prop_assert!(got.validate().is_ok());
                prop_assert_eq!(got, instance);
            }
            other => prop_assert!(false, "expected announce, got {:?}", other),
        }
    }

    /// Backward-compatibility pin for codec v5: a frame stamped with ANY
    /// pre-v5 version (or a future one) — regardless of what its payload
    /// holds or how the bytes arrive off the socket — decodes to the
    /// typed [`WireError::UnsupportedVersion`] carrying that exact
    /// version. It never panics, and it NEVER misparses the old layout
    /// as current-version fields (no `Ok(Some(_))` is possible).
    #[test]
    fn pre_v5_frames_fail_typed_never_misparse(
        msg in msg_strategy(),
        version in any::<u16>().prop_map(|v| {
            // Every version except the current one (remap collisions).
            if v == ftbb_wire::codec::VERSION { v ^ 1 } else { v }
        }),
        chunk in 1usize..64,
    ) {
        // A perfectly well-formed frame… except for its version stamp.
        // v1..v4 frames on a real socket differ in payload layout too;
        // the version gate must reject them before any payload parsing,
        // so the payload content is irrelevant — the strategy covers
        // every message shape anyway.
        let mut bytes =
            encode_frame(&Envelope { job: JobId::DEFAULT, from: 2, msg }, 1, 1, &[]).bytes.to_vec();
        bytes[4..6].copy_from_slice(&version.to_le_bytes());
        let mut dec = FrameDecoder::new();
        let mut outcome = None;
        for piece in bytes.chunks(chunk) {
            dec.push(piece);
            match dec.try_next() {
                Ok(None) => {}
                other => { outcome = Some(other); break; }
            }
        }
        match outcome {
            Some(Err(WireError::UnsupportedVersion(v))) => prop_assert_eq!(v, version),
            other => prop_assert!(
                false,
                "pre-v5 frame must fail typed, got {:?}", other
            ),
        }
    }

    /// Rejoin frames survive framing and split reads for arbitrary ids,
    /// incarnations, ports, and summaries.
    #[test]
    fn every_rejoin_survives_framing(
        from in any::<u32>(),
        incarnation in any::<u32>(),
        port in 1u16..65535,
        table_codes in any::<u32>(),
        pool_len in any::<u32>(),
        incumbent_raw in any::<u32>(),
        chunk in 1usize..64,
    ) {
        let rejoin = ftbb_wire::RejoinFrame {
            from,
            incarnation,
            addr: std::net::SocketAddr::from(([127, 0, 0, 1], port)),
            summary: ftbb_wire::RejoinSummary {
                incumbent: incumbent_raw as f64 / 7.0,
                table_codes,
                pool_len,
            },
        };
        let frame = ftbb_wire::encode_rejoin(&rejoin);
        let mut dec = FrameDecoder::new();
        let mut decoded = None;
        for piece in frame.bytes.chunks(chunk) {
            dec.push(piece);
            if let Some(got) = dec.try_next().expect("valid frame decodes") {
                prop_assert!(decoded.is_none(), "only one frame was sent");
                decoded = Some(got);
            }
        }
        match decoded.expect("frame fully fed") {
            WireFrame::Rejoin(got) => prop_assert_eq!(got, rejoin),
            other => prop_assert!(false, "expected rejoin, got {:?}", other),
        }
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(bytes in collection::vec(any::<u8>(), 0..256), chunk in 1usize..32) {
        let mut dec = FrameDecoder::new();
        for piece in bytes.chunks(chunk) {
            dec.push(piece);
            loop {
                match dec.try_next() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(_) => return, // desync detected: reader would drop the conn
                }
            }
        }
    }
}
