//! The acceptance test for the wire subsystem: a real multi-process
//! cluster over loopback TCP, with real SIGKILLs — and checkpoint
//! restarts — mid-run.
//!
//! This is the paper's fault-tolerance theorem on genuine infrastructure:
//! killed processes flush nothing and close sockets mid-frame, yet the
//! survivors detect the missing results, recover them by complementing
//! their completion tables, and terminate with the sequential optimum.
//! The restart regression adds the paper's target environment's other
//! half — nodes *returning*: a killed node restored from its checkpoint
//! rejoins the live cluster under a new incarnation and contributes
//! expansions again, while traffic addressed to its previous life is
//! counted off as stale.

use ftbb_bnb::{solve, Correlation, SolveConfig};
use ftbb_wire::launcher::{launch, ClusterSpec, GossipTiming, JobStep, LifecycleEvent};
use ftbb_wire::{KnapsackSpec, MaxSatSpec, ProblemSpec};
use std::path::PathBuf;
use std::time::Duration;

fn noded() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_ftbb-noded"))
}

/// Baseline spec: no lifecycle events, no checkpoints. Tests override
/// what they exercise.
fn base_spec(problem: ProblemSpec, nodes: u32, seed: u64) -> ClusterSpec {
    ClusterSpec {
        noded: noded(),
        nodes,
        lifecycle: Vec::new(),
        crash_at: Vec::new(),
        problem,
        wire_peers: false,
        service: false,
        jobs: Vec::new(),
        gossip: None,
        checkpoint_dir: None,
        checkpoint_every_s: 0.05,
        trace_dir: None,
        metrics_every_s: None,
        deadline: Duration::from_secs(60),
        seed,
        workers: 1,
    }
}

/// A problem big enough that a debug-build cluster runs for a while
/// (~1 s single-node), so kills at tens of milliseconds land
/// mid-computation.
fn heavy_problem() -> ProblemSpec {
    ProblemSpec::Knapsack(KnapsackSpec {
        n: 36,
        range: 120,
        correlation: Correlation::Strong,
        frac: 0.5,
        seed: 3,
    })
}

/// The sequential optimum for a spec — the oracle every surviving node
/// must agree with.
fn reference_best(problem: &ProblemSpec) -> Option<f64> {
    let instance = problem.instance().expect("materializable spec");
    solve(&instance, &SolveConfig::default()).best
}

#[test]
fn five_processes_two_sigkills_still_reach_the_optimum() {
    let problem = heavy_problem();
    let reference = reference_best(&problem);
    assert!(reference.is_some(), "instance must be feasible");

    let mut spec = base_spec(problem, 5, 7);
    spec.lifecycle = vec![
        LifecycleEvent::kill(1, Duration::from_millis(60)),
        LifecycleEvent::kill(3, Duration::from_millis(120)),
    ];
    let report = launch(&spec).expect("cluster launches");

    assert!(
        !report.killed.is_empty(),
        "no SIGKILL landed mid-run — the cluster finished too fast for the kill plan"
    );
    assert!(
        report.all_survivors_terminated,
        "survivors failed to terminate: {:?}",
        report.outcomes
    );
    assert_eq!(
        report.best, reference,
        "survivors disagree with the sequential optimum"
    );
    // Every surviving node individually knows the optimum (the incumbent
    // circulates in every message).
    for outcome in report.outcomes.iter().flatten() {
        if outcome.terminated {
            assert_eq!(Some(outcome.incumbent), reference, "node {}", outcome.id);
        }
    }
}

/// The startup-skew regression: before connection pre-establishment, the
/// root's first work grants were silently dropped while its peers'
/// listeners were still coming up (connect backoff), so the root solved
/// most of the tree alone and the peers starved into recovery. With the
/// readiness barrier and the bounded startup retry window, a no-failure
/// cluster must lose *zero* frames to the startup window and spread the
/// expansions: no single node may account for more than ~90% of the tree.
#[test]
fn no_kill_cluster_loses_no_startup_grants_and_shares_the_work() {
    let problem = heavy_problem();
    let reference = reference_best(&problem);

    let spec = base_spec(problem, 5, 9);
    // launch() itself prints the per-node skew summary to stderr, which
    // the CI step surfaces with --nocapture.
    let report = launch(&spec).expect("cluster launches");

    assert!(
        report.all_survivors_terminated,
        "nodes failed to terminate: {:?}",
        report.outcomes
    );
    assert_eq!(report.best, reference);
    assert_eq!(report.outcomes.iter().flatten().count(), 5);

    let startup_drops: u64 = report
        .outcomes
        .iter()
        .flatten()
        .map(|o| o.transport.dropped_startup)
        .sum();
    assert_eq!(
        startup_drops, 0,
        "pre-establishment must leave nothing to the startup retry window: {:?}",
        report.outcomes
    );
    // First lives everywhere: nothing is ever stale without a restart.
    let stale: u64 = report
        .outcomes
        .iter()
        .flatten()
        .map(|o| o.transport.dropped_stale)
        .sum();
    assert_eq!(
        stale, 0,
        "no restart, no stale frames: {:?}",
        report.outcomes
    );

    let share = report.max_expansion_share();
    assert!(
        share <= 0.90,
        "work skew: one node expanded {:.1}% of {} total nodes\n{}",
        share * 100.0,
        report.total_expanded(),
        report.skew_summary()
    );
}

#[test]
fn four_processes_no_failures_reach_the_optimum() {
    let problem = ProblemSpec::Knapsack(KnapsackSpec {
        n: 18,
        range: 60,
        correlation: Correlation::Uncorrelated,
        frac: 0.5,
        seed: 5,
    });
    let reference = reference_best(&problem);

    let report = launch(&base_spec(problem, 4, 3)).expect("cluster launches");

    assert!(report.all_survivors_terminated);
    assert_eq!(report.best, reference);
    assert_eq!(report.outcomes.iter().flatten().count(), 4);
    // Nobody restarted: every outcome is a first life.
    for o in report.outcomes.iter().flatten() {
        assert_eq!(o.incarnation, 0, "node {}", o.id);
    }
    // Real sockets carried real traffic: framing overhead is visible in
    // the aggregated transport counters. (A single node may legitimately
    // send nothing — e.g. the root solving its whole subtree before any
    // work request reaches it.)
    let total_sent: u64 = report
        .outcomes
        .iter()
        .flatten()
        .map(|o| o.transport.sent)
        .sum();
    let total_wire: u64 = report
        .outcomes
        .iter()
        .flatten()
        .map(|o| o.transport.sent_wire_bytes)
        .sum();
    let total_encoded: u64 = report
        .outcomes
        .iter()
        .flatten()
        .map(|o| o.transport.sent_encoded_bytes)
        .sum();
    assert!(total_sent > 0, "the cluster exchanged no messages at all");
    assert!(
        total_encoded > total_wire,
        "frame headers must show up in encoded bytes"
    );
}

/// The saturation regression: a five-node cluster running four expansion
/// workers per node, with a SIGKILL mid-run, still agrees with the
/// sequential optimum — parallel expansion must not perturb the protocol
/// state machine — and the batched writers actually coalesce: across the
/// cluster, more frames are flushed than flushes happen (mean
/// frames-per-flush above one).
#[test]
fn four_workers_per_node_survive_a_kill_and_batch_their_frames() {
    let problem = heavy_problem();
    let reference = reference_best(&problem);
    assert!(reference.is_some(), "instance must be feasible");

    let mut spec = base_spec(problem, 5, 11);
    spec.workers = 4;
    spec.lifecycle = vec![LifecycleEvent::kill(2, Duration::from_millis(80))];
    let report = launch(&spec).expect("cluster launches");

    assert!(
        report.all_survivors_terminated,
        "survivors failed to terminate: {:?}",
        report.outcomes
    );
    assert_eq!(
        report.best, reference,
        "parallel workers disagree with the sequential optimum"
    );
    for outcome in report.outcomes.iter().flatten() {
        if outcome.terminated {
            assert_eq!(Some(outcome.incumbent), reference, "node {}", outcome.id);
        }
        assert_eq!(
            outcome.workers, 4,
            "node {} did not run the requested pool",
            outcome.id
        );
    }
    let (flushes, frames) = report
        .outcomes
        .iter()
        .flatten()
        .fold((0u64, 0u64), |(fl, fr), o| {
            (fl + o.transport.flushes, fr + o.transport.frames_flushed)
        });
    assert!(flushes > 0, "the cluster exchanged no messages at all");
    assert!(
        frames > flushes,
        "batching never coalesced: {frames} frames over {flushes} flushes"
    );
}

#[test]
fn config_driven_crash_is_survivable_too() {
    // Same shape as the SIGKILL test, but the crash comes from the
    // node's own --crash-at-s abort() — exercising the config path
    // instead of an external killer.
    let problem = heavy_problem();
    let reference = reference_best(&problem);

    let mut spec = base_spec(problem, 3, 11);
    spec.crash_at = vec![(2, 0.08)];
    let report = launch(&spec).expect("cluster launches");

    assert_eq!(report.killed, vec![2], "node 2 must abort before reporting");
    assert!(
        report.all_survivors_terminated,
        "survivors failed to terminate: {:?}",
        report.outcomes
    );
    for o in report.outcomes.iter().flatten() {
        assert_eq!(Some(o.incumbent), reference, "node {}", o.id);
    }
}

/// The MAX-SAT mirror of the SIGKILL acceptance test, with the workload
/// additionally shipped over the wire: only node 0 knows the problem
/// spec; the other four start `--problem wire` and receive the
/// materialized instance in node 0's announce frame. Two of those
/// wire-fed peers are then SIGKILLed mid-run, and the survivors (which
/// include wire-fed peers) must still reach the sequential optimum —
/// the recovery machinery is genuinely problem-agnostic.
#[test]
fn five_process_maxsat_cluster_two_sigkills_reach_the_optimum() {
    let problem = ProblemSpec::MaxSat(MaxSatSpec {
        vars: 26,
        clauses: 110,
        seed: 13,
    });
    let reference = reference_best(&problem);
    assert!(reference.is_some(), "instance must be feasible");

    let mut spec = base_spec(problem, 5, 21);
    spec.wire_peers = true;
    spec.lifecycle = vec![
        LifecycleEvent::kill(1, Duration::from_millis(60)),
        LifecycleEvent::kill(3, Duration::from_millis(120)),
    ];
    let report = launch(&spec).expect("cluster launches");

    assert!(
        !report.killed.is_empty(),
        "no SIGKILL landed mid-run — the cluster finished too fast for the kill plan"
    );
    assert!(
        report.all_survivors_terminated,
        "survivors failed to terminate: {:?}",
        report.outcomes
    );
    assert_eq!(
        report.best, reference,
        "survivors disagree with the sequential optimum"
    );
    for o in report.outcomes.iter().flatten() {
        if o.terminated {
            assert_eq!(Some(o.incumbent), reference, "node {}", o.id);
        }
    }
    // The announce handshake is visible in the transport counters: the
    // root handed one announce per peer to the wire, and every surviving
    // wire-fed peer received exactly one.
    let root = report.outcomes[0].as_ref().expect("root survives");
    assert_eq!(
        root.transport.announces_sent, 4,
        "root announces to every peer: {:?}",
        root.transport
    );
    for o in report.outcomes.iter().flatten().skip(1) {
        assert_eq!(
            o.transport.announces_recv, 1,
            "wire peer {} sees one announce: {:?}",
            o.id, o.transport
        );
    }
}

/// A recorded-tree workload from a file, solved by peers that have
/// neither the file nor the generator: node 0 loads the tree with
/// `--problem tree-file`, peers start `--problem wire` and learn the
/// whole tree from the announce frame. Survivor parity with the
/// sequential optimum proves the instance transfer was faithful.
#[test]
fn tree_file_cluster_ships_the_tree_to_wire_peers() {
    use ftbb_tree::generator::{random_basic_tree, TreeConfig};

    let tree = random_basic_tree(&TreeConfig {
        target_nodes: 4001,
        mean_cost: 0.0004,
        seed: 23,
        ..Default::default()
    });
    let dir = std::env::temp_dir().join("ftbb-wire-treefile-cluster");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("workload.ftbb");
    ftbb_tree::io::write_tree_file(&tree, &path).unwrap();

    let problem = ProblemSpec::tree_file(&path);
    let reference = reference_best(&problem);
    assert_eq!(reference, tree.optimal());

    let mut spec = base_spec(problem, 3, 5);
    spec.wire_peers = true;
    let report = launch(&spec).expect("cluster launches");
    std::fs::remove_file(&path).ok();

    assert!(
        report.all_survivors_terminated,
        "nodes failed to terminate: {:?}",
        report.outcomes
    );
    assert_eq!(report.best, reference);
    assert_eq!(report.outcomes.iter().flatten().count(), 3);
    // The wire peers did real work on an instance they never loaded.
    for o in report.outcomes.iter().flatten() {
        assert_eq!(Some(o.incumbent), reference, "node {}", o.id);
    }
}

/// The elastic-join regression — the gossip-membership acceptance test.
///
/// Three nodes start through the launcher's wiring with the membership
/// protocol on (node 0 is the gossip server). Two more nodes then join
/// mid-run knowing *only* node 0's address — they appear in no peer
/// wiring whatsoever and discover the rest of the cluster through the
/// join handshake, the membership Welcome, and the codec-v4 address
/// books piggybacked on gossip. One original (wired) node is SIGKILLed;
/// its heartbeats stop, so the survivors must *suspect* it via the
/// §5.2 timeout (asserted on the new suspicion counters), drop it from
/// load balancing, recover its unreported work, and still reach the
/// sequential optimum — with the joiners contributing expansions.
#[test]
fn joined_nodes_contribute_and_dead_node_is_suspected() {
    let problem = heavy_problem();
    let reference = reference_best(&problem);
    assert!(reference.is_some(), "instance must be feasible");

    let mut spec = base_spec(problem, 3, 29);
    spec.gossip = Some(GossipTiming {
        interval_s: 0.03,
        suspect_s: 0.35,
        forget_s: 3.0,
    });
    spec.lifecycle = vec![
        LifecycleEvent::join(3, Duration::from_millis(80)),
        LifecycleEvent::join(4, Duration::from_millis(120)),
        LifecycleEvent::kill(1, Duration::from_millis(220)),
    ];
    let report = launch(&spec).expect("cluster launches");

    assert_eq!(
        report.killed,
        vec![1],
        "node 1 must die mid-run: {report:?}"
    );
    assert!(
        report.all_survivors_terminated,
        "survivors (incl. joiners) failed to terminate: {:?}",
        report.outcomes
    );
    assert_eq!(
        report.best, reference,
        "cluster disagrees with the sequential optimum"
    );
    assert_eq!(report.outcomes.len(), 5, "3 wired nodes + 2 joiners");

    // The joiners entered through the server and did real work.
    let joiner_expanded: u64 = [3usize, 4]
        .iter()
        .filter_map(|&id| report.outcomes[id].as_ref())
        .map(|o| o.expanded)
        .sum();
    assert!(
        joiner_expanded > 0,
        "joiners must contribute expansions:\n{}",
        report.skew_summary()
    );
    for &id in &[3usize, 4] {
        let o = report.outcomes[id].as_ref().expect("joiner reports");
        assert!(o.terminated, "joiner {id} detects termination");
        assert_eq!(Some(o.incumbent), reference, "joiner {id}");
    }

    // The join handshake is visible on the server's counters…
    let server = report.outcomes[0].as_ref().expect("server survives");
    assert!(
        server.transport.joins >= 2,
        "server must see both join frames: {:?}",
        server.transport
    );
    // …and gossip discovery opened routes nobody wired: some survivor
    // learned a peer purely from a piggybacked address book.
    let discovered: u64 = report
        .outcomes
        .iter()
        .flatten()
        .map(|o| o.transport.peers_discovered)
        .sum();
    assert!(
        discovered >= 1,
        "address books must teach unwired routes: {:?}",
        report.outcomes
    );

    // The SIGKILLed node went silent; the membership protocol must have
    // suspected it somewhere (heartbeat timeout), which is what removed
    // it from load balancing and made its work recovery-eligible.
    let suspected: u64 = report.outcomes.iter().flatten().map(|o| o.suspected).sum();
    assert!(
        suspected >= 1,
        "the dead node must be suspected via heartbeat timeout: {:?}",
        report.outcomes
    );
}

/// The telemetry regression — the observability acceptance test.
///
/// Five nodes run with structured tracing (`--trace-file`) and interval
/// metrics (`--metrics-every-s`) on; one node is SIGKILLed mid-run. The
/// launcher must come back with (a) several parseable `FTBB-METRICS`
/// snapshots per survivor whose Figure-3 category times reconcile with
/// the node's elapsed wall clock, and (b) a merged cluster timeline in
/// which the kill precedes the survivors' suspicion of the dead node,
/// which precedes a recovery — the paper's §5 failure story, readable
/// off one ordered event stream.
#[test]
fn telemetry_timeline_orders_kill_suspicion_recovery() {
    let problem = heavy_problem();
    let reference = reference_best(&problem);
    assert!(reference.is_some(), "instance must be feasible");

    let dir = std::env::temp_dir().join("ftbb-wire-telemetry-regression");
    std::fs::remove_dir_all(&dir).ok();

    let mut spec = base_spec(problem, 5, 31);
    spec.gossip = Some(GossipTiming {
        interval_s: 0.03,
        suspect_s: 0.35,
        forget_s: 3.0,
    });
    spec.trace_dir = Some(dir.clone());
    spec.metrics_every_s = Some(0.12);
    spec.lifecycle = vec![LifecycleEvent::kill(2, Duration::from_millis(150))];
    let report = launch(&spec).expect("cluster launches");
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(
        report.killed,
        vec![2],
        "node 2 must die mid-run: {report:?}"
    );
    assert!(
        report.all_survivors_terminated,
        "survivors failed to terminate: {:?}",
        report.outcomes
    );
    assert_eq!(report.best, reference);

    // (a) Interval metrics: every survivor produced several parseable
    // snapshots, and each node's Figure-3 category times sum to its
    // elapsed wall clock (the phase clock attributes *every* slice of
    // the event pump to exactly one category).
    for &id in &[0usize, 1, 3, 4] {
        let series = &report.metrics[id];
        assert!(
            series.len() >= 3,
            "survivor {id} produced {} FTBB-METRICS snapshots, want >= 3\n{}",
            series.len(),
            report.cluster_report()
        );
        for pair in series.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "snapshots arrive in order");
        }
        let last = series.last().unwrap();
        let drift = (last.phase.total() - last.elapsed_s).abs();
        assert!(
            drift <= 0.1 * last.elapsed_s + 0.05,
            "node {id}: category times {:.3}s vs elapsed {:.3}s — the phase \
             clock must account for the whole event pump",
            last.phase.total(),
            last.elapsed_s
        );
        assert!(last.phase.expand_s > 0.0, "node {id} did real work");
    }

    // (b) The merged timeline tells the failure story in order: the
    // launcher's kill, then a *survivor* suspecting node 2 via the
    // heartbeat timeout, then a recovery of the dead node's work.
    let timeline = &report.timeline;
    assert!(!timeline.is_empty(), "trace_dir must yield a timeline");
    for pair in timeline.windows(2) {
        assert!(pair[0].t_us <= pair[1].t_us, "timeline is time-ordered");
    }
    // Every node's engine announced itself.
    for id in 0..5u32 {
        assert!(
            timeline
                .iter()
                .any(|e| e.node == id && e.kind == "engine_start"),
            "node {id} must appear in the merged timeline"
        );
    }
    let kill_at = timeline
        .iter()
        .position(|e| e.kind == "kill" && e.node == 2)
        .expect("launcher kill event in timeline");
    let suspect_at = timeline
        .iter()
        .position(|e| e.kind == "suspect" && e.node != 2 && e.field("peer") == Some("2"))
        .expect("a survivor must suspect the dead node");
    let recovery_at = timeline
        .iter()
        .position(|e| e.kind == "recovery")
        .expect("the dead node's work must be recovered");
    assert!(
        kill_at < suspect_at,
        "suspicion follows the kill: {}",
        report.cluster_report()
    );
    assert!(
        kill_at < recovery_at,
        "recovery follows the kill: {}",
        report.cluster_report()
    );
}

/// The service-mode regression — the multi-job pool acceptance test.
///
/// A 3-node `--service` pool (per-job checkpoints, job-scoped metrics,
/// structured tracing) receives three staggered jobs of three different
/// problem kinds — MAX-SAT, knapsack, and a recorded tree file — through
/// two different gateway nodes. Mid-stream, node 2 is SIGKILLed and then
/// restarted with `--resume`, which restores *all* its per-job
/// checkpoints and rejoins each job. All three submit clients must still
/// stream back a finished result matching that job's sequential optimum,
/// every pool node (including the restarted one) must close with its
/// `FTBB-SERVICE` summary, and the interval metrics must carry the job
/// dimension.
#[test]
fn service_pool_finishes_three_staggered_jobs_through_a_kill_and_restart() {
    use ftbb_tree::generator::{random_basic_tree, TreeConfig};

    let tmp = std::env::temp_dir().join("ftbb-wire-service-regression");
    std::fs::remove_dir_all(&tmp).ok();
    let ckpt_dir = tmp.join("ckpt");
    let trace_dir = tmp.join("trace");
    std::fs::create_dir_all(&ckpt_dir).unwrap();

    let tree = random_basic_tree(&TreeConfig {
        target_nodes: 4001,
        mean_cost: 0.0004,
        seed: 23,
        ..Default::default()
    });
    let tree_path = tmp.join("workload.ftbb");
    ftbb_tree::io::write_tree_file(&tree, &tree_path).unwrap();

    // Jobs 1 and 2 are heavy enough (~1 s single-node in a debug build)
    // that the kill at 400 ms lands while they are genuinely in flight.
    let problems = [
        ProblemSpec::MaxSat(MaxSatSpec {
            vars: 26,
            clauses: 110,
            seed: 13,
        }),
        ProblemSpec::Knapsack(KnapsackSpec {
            n: 36,
            range: 120,
            correlation: Correlation::Strong,
            frac: 0.5,
            seed: 3,
        }),
        ProblemSpec::tree_file(&tree_path),
    ];
    let references: Vec<Option<f64>> = problems.iter().map(reference_best).collect();
    for (i, r) in references.iter().enumerate() {
        assert!(r.is_some(), "job {} must be feasible", i + 1);
    }

    // Jobs 1 and 3 enter through gateway node 0, job 2 through node 1;
    // node 2 is never a gateway, so killing it severs no client stream.
    let mut spec = base_spec(ProblemSpec::default(), 3, 41);
    spec.service = true;
    // The pool is a daemon: it runs to this deadline even after all jobs
    // finish, so the deadline is also the test's wall-clock floor. Jobs
    // finish around 8 s here in a debug build; leave headroom for CI.
    spec.deadline = Duration::from_secs(15);
    spec.checkpoint_dir = Some(ckpt_dir);
    spec.checkpoint_every_s = 0.05;
    spec.trace_dir = Some(trace_dir);
    spec.metrics_every_s = Some(0.15);
    spec.jobs = vec![
        JobStep::submit(1, Duration::from_millis(0), 0, problems[0].clone()),
        JobStep::submit(2, Duration::from_millis(120), 1, problems[1].clone()),
        JobStep::submit(3, Duration::from_millis(240), 0, problems[2].clone()),
    ];
    spec.lifecycle = vec![
        LifecycleEvent::kill(2, Duration::from_millis(400)),
        LifecycleEvent::restart(2, Duration::from_millis(700)),
    ];
    let report = launch(&spec).expect("service cluster launches");
    std::fs::remove_dir_all(&tmp).ok();

    // Every submit client streamed back a finished result with
    // per-job sequential parity — the kill lost none of the stream.
    assert_eq!(report.jobs.len(), 3);
    for (step, reference) in report.jobs.iter().zip(&references) {
        let outcome = step
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("job {} failed: {e}", step.job));
        assert!(outcome.finished, "job {} must finish", step.job);
        assert_eq!(
            Some(outcome.incumbent),
            *reference,
            "job {} disagrees with its sequential optimum",
            step.job
        );
    }

    // The killed node came back and every pool node closed with its
    // FTBB-SERVICE summary.
    assert_eq!(report.killed, Vec::<u32>::new(), "node 2 must come back");
    assert!(
        report.all_survivors_terminated,
        "every service node must report: {:?}",
        report.services
    );
    let restarted = report.services[2].as_ref().expect("node 2 reports");
    assert!(
        restarted.incarnation >= 1,
        "the restarted node must report a later life: {restarted:?}"
    );

    // Each job's completion is visible on at least its gateway's stdout,
    // with the same per-job parity.
    for (job, reference) in (1u64..=3).zip(&references) {
        let line = report
            .job_lines
            .iter()
            .flatten()
            .find(|j| j.job == job && j.terminated)
            .unwrap_or_else(|| panic!("no terminated FTBB-JOB line for job {job}"));
        assert_eq!(Some(line.incumbent), *reference, "job {job}");
    }

    // Interval metrics carry the job dimension: job-scoped snapshots
    // parse and at least two distinct jobs show up.
    let job_dims: std::collections::HashSet<u64> = report
        .metrics
        .iter()
        .flatten()
        .map(|m| m.job)
        .filter(|&j| j != 0)
        .collect();
    assert!(
        job_dims.len() >= 2,
        "job-scoped FTBB-METRICS must cover several jobs, got {job_dims:?}"
    );

    // The merged timeline interleaves the job stream with the membership
    // events: every submission is stamped with its job dimension, and
    // the kill/restart pair brackets at least one of them.
    let submits: Vec<usize> = (1u64..=3)
        .map(|job| {
            report
                .timeline
                .iter()
                .position(|e| e.kind == "submit" && e.job == job)
                .unwrap_or_else(|| panic!("no submit event for job {job} in the timeline"))
        })
        .collect();
    let kill_at = report
        .timeline
        .iter()
        .position(|e| e.kind == "kill" && e.node == 2)
        .expect("kill event in timeline");
    let restart_at = report
        .timeline
        .iter()
        .position(|e| e.kind == "restart" && e.node == 2)
        .expect("restart event in timeline");
    assert!(kill_at < restart_at, "kill precedes restart");
    assert!(
        submits.iter().any(|&s| s < kill_at),
        "at least one job was submitted before the kill"
    );
}

/// The scale regression — a hundred real processes on one loopback host.
///
/// 97 wired nodes start in gossip mode with node 0 as the server; three
/// more join mid-run knowing only node 0's address; two wired nodes are
/// SIGKILLed. The survivors must still agree with the sequential
/// optimum — and the scale machinery must be visibly at work: every
/// node's piggybacked address books average at most the per-frame cap
/// (`book_max_entries`, 16), strictly below the uncapped baseline of
/// roughly one entry per roster member (~100 here), so membership frame
/// cost stays O(cap) instead of O(n) as the cluster grows.
///
/// Ignored by default: it spawns ~100 OS processes and takes minutes on
/// one core. CI runs it explicitly (`--ignored`), as can you:
/// `cargo test -p ftbb-wire --test multiprocess hundred -- --ignored`.
#[test]
#[ignore = "spawns ~100 processes; run explicitly via the CI scale step"]
fn hundred_process_gossip_cluster_caps_books_and_reaches_the_optimum() {
    const WIRED: u32 = 97;
    const TOTAL: u32 = 100; // 97 wired + 3 joiners
    const BOOK_CAP: f64 = 16.0; // WireConfig::default().book_max_entries

    // A mid-weight instance (~27k sequential expansions): big enough
    // that both SIGKILLs land mid-run even with a 100-process startup
    // ramp, small enough that one core pushes 100 debug processes
    // through it well inside the deadline (`heavy_problem` is ~3.4x
    // larger and ran past 240 s at this scale).
    let problem = ProblemSpec::Knapsack(KnapsackSpec {
        n: 34,
        range: 120,
        correlation: Correlation::Strong,
        frac: 0.5,
        seed: 7,
    });
    let reference = reference_best(&problem);
    assert!(reference.is_some(), "instance must be feasible");

    let mut spec = base_spec(problem, WIRED, 43);
    // One core runs all hundred processes: stretch the failure-detector
    // clock so scheduling hiccups are not read as death, and give the
    // run a generous deadline.
    spec.deadline = Duration::from_secs(240);
    spec.gossip = Some(GossipTiming {
        interval_s: 0.25,
        suspect_s: 5.0,
        forget_s: 60.0,
    });
    spec.lifecycle = vec![
        LifecycleEvent::join(97, Duration::from_millis(400)),
        LifecycleEvent::join(98, Duration::from_millis(700)),
        LifecycleEvent::join(99, Duration::from_millis(1000)),
        LifecycleEvent::kill(5, Duration::from_millis(1500)),
        LifecycleEvent::kill(23, Duration::from_millis(2000)),
    ];
    let report = launch(&spec).expect("cluster launches");

    let mut killed = report.killed.clone();
    killed.sort_unstable();
    assert_eq!(killed, vec![5, 23], "both SIGKILLs must land mid-run");
    assert!(
        report.all_survivors_terminated,
        "survivors failed to terminate:\n{}",
        report.skew_summary()
    );
    assert_eq!(
        report.best, reference,
        "cluster disagrees with the sequential optimum"
    );
    assert_eq!(report.outcomes.len(), TOTAL as usize);
    for o in report.outcomes.iter().flatten() {
        if o.terminated {
            assert_eq!(Some(o.incumbent), reference, "node {}", o.id);
        }
    }

    // The joiners entered through the server and finished with the
    // cluster.
    for &id in &[97usize, 98, 99] {
        let o = report.outcomes[id].as_ref().expect("joiner reports");
        assert!(o.terminated, "joiner {id} detects termination");
    }

    // Capped piggyback books: each node averaged at most the 16-entry
    // cap per membership frame — the uncapped baseline ships the full
    // roster, one entry per member it knows (~100 at this size), every
    // frame. The strict `< TOTAL/2` bound is what fails if the cap ever
    // regresses to full-roster shipping.
    let mut sampled = 0u32;
    for o in report.outcomes.iter().flatten() {
        let frames = o.transport.membership_frames_sent;
        if frames == 0 {
            continue;
        }
        sampled += 1;
        let per_frame = o.transport.book_entries_sent as f64 / frames as f64;
        assert!(
            per_frame <= BOOK_CAP + 1e-9,
            "node {}: {per_frame:.1} book entries/frame exceeds the {BOOK_CAP} cap",
            o.id
        );
        assert!(
            per_frame < TOTAL as f64 / 2.0,
            "node {}: {per_frame:.1} book entries/frame is not sublinear in the roster",
            o.id
        );
    }
    assert!(
        sampled >= (TOTAL / 2),
        "most nodes must have sent membership frames, got {sampled}"
    );

    // Delta digests: gossip frames carry record deltas, not the full
    // 100-record table — the same sublinearity on the digest axis.
    let (digest_entries, digest_frames) =
        report
            .outcomes
            .iter()
            .flatten()
            .fold((0u64, 0u64), |(e, f), o| {
                (
                    e + o.transport.digest_entries_sent,
                    f + o.transport.membership_frames_sent,
                )
            });
    assert!(digest_frames > 0);
    let digest_per_frame = digest_entries as f64 / digest_frames as f64;
    assert!(
        digest_per_frame < TOTAL as f64 / 2.0,
        "digests average {digest_per_frame:.1} entries/frame — not sublinear"
    );
}

/// The restart/rejoin regression — the node-lifecycle acceptance test.
///
/// Five nodes with periodic checkpoints; nodes 1 and 3 are SIGKILLed
/// mid-run; node 1 is then restarted from its checkpoint (`--resume`) at
/// its original address. The restarted process must come back as
/// incarnation 1, rejoin the live cluster through the rejoin handshake,
/// contribute expansions under its new incarnation, and the cluster must
/// still match the sequential optimum. Traffic addressed to node 1's
/// previous life (peers keep sending while the rebound listener settles)
/// must be counted and dropped as stale, never delivered.
#[test]
fn killed_node_restarts_from_checkpoint_and_rejoins() {
    let problem = heavy_problem();
    let reference = reference_best(&problem);
    assert!(reference.is_some(), "instance must be feasible");

    let dir = std::env::temp_dir().join("ftbb-wire-restart-regression");
    std::fs::remove_dir_all(&dir).ok();

    let mut spec = base_spec(problem, 5, 17);
    spec.checkpoint_dir = Some(dir.clone());
    spec.checkpoint_every_s = 0.02; // several snapshots before the kill
    spec.lifecycle = vec![
        LifecycleEvent::kill(1, Duration::from_millis(80)),
        LifecycleEvent::kill(3, Duration::from_millis(140)),
        LifecycleEvent::restart(1, Duration::from_millis(300)),
    ];
    let report = launch(&spec).expect("cluster launches");
    std::fs::remove_dir_all(&dir).ok();

    // Node 3 stays dead; node 1 came back and reported.
    assert_eq!(report.killed, vec![3], "only node 3 stays dead: {report:?}");
    assert!(
        report.all_survivors_terminated,
        "survivors (incl. the rejoined node) failed to terminate: {:?}",
        report.outcomes
    );
    assert_eq!(
        report.best, reference,
        "cluster disagrees with the sequential optimum"
    );

    let rejoined = report.outcomes[1]
        .as_ref()
        .expect("restarted node reports an outcome");
    assert_eq!(
        rejoined.incarnation, 1,
        "the restarted node must report its second life"
    );
    assert!(rejoined.terminated, "the rejoined node detects termination");
    assert_eq!(Some(rejoined.incumbent), reference);
    assert!(
        rejoined.expanded > 0,
        "the rejoined incarnation must contribute expansions:\n{}",
        report.skew_summary()
    );

    // The rejoin handshake reached the live nodes (3 is dead; 0, 2, 4
    // can each see it — at least the survivors' counters show it).
    let rejoins_seen: u64 = [0usize, 2, 4]
        .iter()
        .filter_map(|&id| report.outcomes[id].as_ref())
        .map(|o| o.transport.rejoins)
        .sum();
    assert!(
        rejoins_seen >= 1,
        "peers must observe the rejoin frame: {:?}",
        report.outcomes
    );

    // Stale-incarnation traffic — frames addressed to node 1's first
    // life that landed on its second — was counted and dropped, not
    // delivered. (The launcher's settle window makes this reproducible:
    // peers keep gossiping at the rebound-but-silent listener.)
    assert!(
        rejoined.transport.dropped_stale >= 1,
        "frames addressed to the previous life must be counted stale: {:?}",
        rejoined.transport
    );
}
