//! The acceptance test for the wire subsystem: a real multi-process
//! cluster over loopback TCP, with real SIGKILLs mid-run.
//!
//! This is the paper's fault-tolerance theorem on genuine infrastructure:
//! killed processes flush nothing and close sockets mid-frame, yet the
//! survivors detect the missing results, recover them by complementing
//! their completion tables, and terminate with the sequential optimum.

use ftbb_bnb::{solve, Correlation, SolveConfig};
use ftbb_wire::launcher::{launch, ClusterSpec};
use ftbb_wire::ProblemSpec;
use std::path::PathBuf;
use std::time::Duration;

fn noded() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_ftbb-noded"))
}

/// A problem big enough that a debug-build cluster runs for a while
/// (~1 s single-node), so kills at tens of milliseconds land
/// mid-computation.
fn heavy_problem() -> ProblemSpec {
    ProblemSpec {
        n: 36,
        range: 120,
        correlation: Correlation::Strong,
        frac: 0.5,
        seed: 3,
    }
}

#[test]
fn five_processes_two_sigkills_still_reach_the_optimum() {
    let problem = heavy_problem();
    let reference = solve(&problem.instance(), &SolveConfig::default());
    assert!(reference.best.is_some(), "instance must be feasible");

    let spec = ClusterSpec {
        noded: noded(),
        nodes: 5,
        crash_at: Vec::new(),
        kill: vec![
            (1, Duration::from_millis(60)),
            (3, Duration::from_millis(120)),
        ],
        problem,
        deadline: Duration::from_secs(60),
        seed: 7,
    };
    let report = launch(&spec).expect("cluster launches");

    assert!(
        !report.killed.is_empty(),
        "no SIGKILL landed mid-run — the cluster finished too fast for the kill plan"
    );
    assert!(
        report.all_survivors_terminated,
        "survivors failed to terminate: {:?}",
        report.outcomes
    );
    assert_eq!(
        report.best, reference.best,
        "survivors disagree with the sequential optimum"
    );
    // Every surviving node individually knows the optimum (the incumbent
    // circulates in every message).
    for outcome in report.outcomes.iter().flatten() {
        if outcome.terminated {
            assert_eq!(
                Some(outcome.incumbent),
                reference.best,
                "node {}",
                outcome.id
            );
        }
    }
}

/// The startup-skew regression: before connection pre-establishment, the
/// root's first work grants were silently dropped while its peers'
/// listeners were still coming up (connect backoff), so the root solved
/// most of the tree alone and the peers starved into recovery. With the
/// readiness barrier and the bounded startup retry window, a no-failure
/// cluster must lose *zero* frames to the startup window and spread the
/// expansions: no single node may account for more than ~90% of the tree.
#[test]
fn no_kill_cluster_loses_no_startup_grants_and_shares_the_work() {
    let problem = heavy_problem();
    let reference = solve(&problem.instance(), &SolveConfig::default());

    let spec = ClusterSpec {
        noded: noded(),
        nodes: 5,
        kill: Vec::new(),
        crash_at: Vec::new(),
        problem,
        deadline: Duration::from_secs(60),
        seed: 9,
    };
    // launch() itself prints the per-node skew summary to stderr, which
    // the CI step surfaces with --nocapture.
    let report = launch(&spec).expect("cluster launches");

    assert!(
        report.all_survivors_terminated,
        "nodes failed to terminate: {:?}",
        report.outcomes
    );
    assert_eq!(report.best, reference.best);
    assert_eq!(report.outcomes.iter().flatten().count(), 5);

    let startup_drops: u64 = report
        .outcomes
        .iter()
        .flatten()
        .map(|o| o.transport.dropped_startup)
        .sum();
    assert_eq!(
        startup_drops, 0,
        "pre-establishment must leave nothing to the startup retry window: {:?}",
        report.outcomes
    );

    let share = report.max_expansion_share();
    assert!(
        share <= 0.90,
        "work skew: one node expanded {:.1}% of {} total nodes\n{}",
        share * 100.0,
        report.total_expanded(),
        report.skew_summary()
    );
}

#[test]
fn four_processes_no_failures_reach_the_optimum() {
    let problem = ProblemSpec {
        n: 18,
        range: 60,
        correlation: Correlation::Uncorrelated,
        frac: 0.5,
        seed: 5,
    };
    let reference = solve(&problem.instance(), &SolveConfig::default());

    let spec = ClusterSpec {
        noded: noded(),
        nodes: 4,
        kill: Vec::new(),
        crash_at: Vec::new(),
        problem,
        deadline: Duration::from_secs(60),
        seed: 3,
    };
    let report = launch(&spec).expect("cluster launches");

    assert!(report.all_survivors_terminated);
    assert_eq!(report.best, reference.best);
    assert_eq!(report.outcomes.iter().flatten().count(), 4);
    // Real sockets carried real traffic: framing overhead is visible in
    // the aggregated transport counters. (A single node may legitimately
    // send nothing — e.g. the root solving its whole subtree before any
    // work request reaches it.)
    let total_sent: u64 = report
        .outcomes
        .iter()
        .flatten()
        .map(|o| o.transport.sent)
        .sum();
    let total_wire: u64 = report
        .outcomes
        .iter()
        .flatten()
        .map(|o| o.transport.sent_wire_bytes)
        .sum();
    let total_encoded: u64 = report
        .outcomes
        .iter()
        .flatten()
        .map(|o| o.transport.sent_encoded_bytes)
        .sum();
    assert!(total_sent > 0, "the cluster exchanged no messages at all");
    assert!(
        total_encoded > total_wire,
        "frame headers must show up in encoded bytes"
    );
}

#[test]
fn config_driven_crash_is_survivable_too() {
    // Same shape as the SIGKILL test, but the crash comes from the
    // node's own --crash-at-s abort() — exercising the config path
    // instead of an external killer.
    let problem = heavy_problem();
    let reference = solve(&problem.instance(), &SolveConfig::default());

    let spec = ClusterSpec {
        noded: noded(),
        nodes: 3,
        kill: Vec::new(),
        crash_at: vec![(2, 0.08)],
        problem,
        deadline: Duration::from_secs(60),
        seed: 11,
    };
    let report = launch(&spec).expect("cluster launches");

    assert_eq!(report.killed, vec![2], "node 2 must abort before reporting");
    assert!(
        report.all_survivors_terminated,
        "survivors failed to terminate: {:?}",
        report.outcomes
    );
    for o in report.outcomes.iter().flatten() {
        assert_eq!(Some(o.incumbent), reference.best, "node {}", o.id);
    }
}
