//! The acceptance test for the wire subsystem: a real multi-process
//! cluster over loopback TCP, with real SIGKILLs mid-run.
//!
//! This is the paper's fault-tolerance theorem on genuine infrastructure:
//! killed processes flush nothing and close sockets mid-frame, yet the
//! survivors detect the missing results, recover them by complementing
//! their completion tables, and terminate with the sequential optimum.

use ftbb_bnb::{solve, Correlation, SolveConfig};
use ftbb_wire::launcher::{launch, ClusterSpec};
use ftbb_wire::{KnapsackSpec, MaxSatSpec, ProblemSpec};
use std::path::PathBuf;
use std::time::Duration;

fn noded() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_ftbb-noded"))
}

/// A problem big enough that a debug-build cluster runs for a while
/// (~1 s single-node), so kills at tens of milliseconds land
/// mid-computation.
fn heavy_problem() -> ProblemSpec {
    ProblemSpec::Knapsack(KnapsackSpec {
        n: 36,
        range: 120,
        correlation: Correlation::Strong,
        frac: 0.5,
        seed: 3,
    })
}

/// The sequential optimum for a spec — the oracle every surviving node
/// must agree with.
fn reference_best(problem: &ProblemSpec) -> Option<f64> {
    let instance = problem.instance().expect("materializable spec");
    solve(&instance, &SolveConfig::default()).best
}

#[test]
fn five_processes_two_sigkills_still_reach_the_optimum() {
    let problem = heavy_problem();
    let reference = reference_best(&problem);
    assert!(reference.is_some(), "instance must be feasible");

    let spec = ClusterSpec {
        noded: noded(),
        nodes: 5,
        crash_at: Vec::new(),
        kill: vec![
            (1, Duration::from_millis(60)),
            (3, Duration::from_millis(120)),
        ],
        problem,
        wire_peers: false,
        deadline: Duration::from_secs(60),
        seed: 7,
    };
    let report = launch(&spec).expect("cluster launches");

    assert!(
        !report.killed.is_empty(),
        "no SIGKILL landed mid-run — the cluster finished too fast for the kill plan"
    );
    assert!(
        report.all_survivors_terminated,
        "survivors failed to terminate: {:?}",
        report.outcomes
    );
    assert_eq!(
        report.best, reference,
        "survivors disagree with the sequential optimum"
    );
    // Every surviving node individually knows the optimum (the incumbent
    // circulates in every message).
    for outcome in report.outcomes.iter().flatten() {
        if outcome.terminated {
            assert_eq!(Some(outcome.incumbent), reference, "node {}", outcome.id);
        }
    }
}

/// The startup-skew regression: before connection pre-establishment, the
/// root's first work grants were silently dropped while its peers'
/// listeners were still coming up (connect backoff), so the root solved
/// most of the tree alone and the peers starved into recovery. With the
/// readiness barrier and the bounded startup retry window, a no-failure
/// cluster must lose *zero* frames to the startup window and spread the
/// expansions: no single node may account for more than ~90% of the tree.
#[test]
fn no_kill_cluster_loses_no_startup_grants_and_shares_the_work() {
    let problem = heavy_problem();
    let reference = reference_best(&problem);

    let spec = ClusterSpec {
        noded: noded(),
        nodes: 5,
        kill: Vec::new(),
        crash_at: Vec::new(),
        problem,
        wire_peers: false,
        deadline: Duration::from_secs(60),
        seed: 9,
    };
    // launch() itself prints the per-node skew summary to stderr, which
    // the CI step surfaces with --nocapture.
    let report = launch(&spec).expect("cluster launches");

    assert!(
        report.all_survivors_terminated,
        "nodes failed to terminate: {:?}",
        report.outcomes
    );
    assert_eq!(report.best, reference);
    assert_eq!(report.outcomes.iter().flatten().count(), 5);

    let startup_drops: u64 = report
        .outcomes
        .iter()
        .flatten()
        .map(|o| o.transport.dropped_startup)
        .sum();
    assert_eq!(
        startup_drops, 0,
        "pre-establishment must leave nothing to the startup retry window: {:?}",
        report.outcomes
    );

    let share = report.max_expansion_share();
    assert!(
        share <= 0.90,
        "work skew: one node expanded {:.1}% of {} total nodes\n{}",
        share * 100.0,
        report.total_expanded(),
        report.skew_summary()
    );
}

#[test]
fn four_processes_no_failures_reach_the_optimum() {
    let problem = ProblemSpec::Knapsack(KnapsackSpec {
        n: 18,
        range: 60,
        correlation: Correlation::Uncorrelated,
        frac: 0.5,
        seed: 5,
    });
    let reference = reference_best(&problem);

    let spec = ClusterSpec {
        noded: noded(),
        nodes: 4,
        kill: Vec::new(),
        crash_at: Vec::new(),
        problem,
        wire_peers: false,
        deadline: Duration::from_secs(60),
        seed: 3,
    };
    let report = launch(&spec).expect("cluster launches");

    assert!(report.all_survivors_terminated);
    assert_eq!(report.best, reference);
    assert_eq!(report.outcomes.iter().flatten().count(), 4);
    // Real sockets carried real traffic: framing overhead is visible in
    // the aggregated transport counters. (A single node may legitimately
    // send nothing — e.g. the root solving its whole subtree before any
    // work request reaches it.)
    let total_sent: u64 = report
        .outcomes
        .iter()
        .flatten()
        .map(|o| o.transport.sent)
        .sum();
    let total_wire: u64 = report
        .outcomes
        .iter()
        .flatten()
        .map(|o| o.transport.sent_wire_bytes)
        .sum();
    let total_encoded: u64 = report
        .outcomes
        .iter()
        .flatten()
        .map(|o| o.transport.sent_encoded_bytes)
        .sum();
    assert!(total_sent > 0, "the cluster exchanged no messages at all");
    assert!(
        total_encoded > total_wire,
        "frame headers must show up in encoded bytes"
    );
}

#[test]
fn config_driven_crash_is_survivable_too() {
    // Same shape as the SIGKILL test, but the crash comes from the
    // node's own --crash-at-s abort() — exercising the config path
    // instead of an external killer.
    let problem = heavy_problem();
    let reference = reference_best(&problem);

    let spec = ClusterSpec {
        noded: noded(),
        nodes: 3,
        kill: Vec::new(),
        crash_at: vec![(2, 0.08)],
        problem,
        wire_peers: false,
        deadline: Duration::from_secs(60),
        seed: 11,
    };
    let report = launch(&spec).expect("cluster launches");

    assert_eq!(report.killed, vec![2], "node 2 must abort before reporting");
    assert!(
        report.all_survivors_terminated,
        "survivors failed to terminate: {:?}",
        report.outcomes
    );
    for o in report.outcomes.iter().flatten() {
        assert_eq!(Some(o.incumbent), reference, "node {}", o.id);
    }
}

/// The MAX-SAT mirror of the SIGKILL acceptance test, with the workload
/// additionally shipped over the wire: only node 0 knows the problem
/// spec; the other four start `--problem wire` and receive the
/// materialized instance in node 0's announce frame. Two of those
/// wire-fed peers are then SIGKILLed mid-run, and the survivors (which
/// include wire-fed peers) must still reach the sequential optimum —
/// the recovery machinery is genuinely problem-agnostic.
#[test]
fn five_process_maxsat_cluster_two_sigkills_reach_the_optimum() {
    let problem = ProblemSpec::MaxSat(MaxSatSpec {
        vars: 26,
        clauses: 110,
        seed: 13,
    });
    let reference = reference_best(&problem);
    assert!(reference.is_some(), "instance must be feasible");

    let spec = ClusterSpec {
        noded: noded(),
        nodes: 5,
        crash_at: Vec::new(),
        kill: vec![
            (1, Duration::from_millis(60)),
            (3, Duration::from_millis(120)),
        ],
        problem,
        wire_peers: true,
        deadline: Duration::from_secs(60),
        seed: 21,
    };
    let report = launch(&spec).expect("cluster launches");

    assert!(
        !report.killed.is_empty(),
        "no SIGKILL landed mid-run — the cluster finished too fast for the kill plan"
    );
    assert!(
        report.all_survivors_terminated,
        "survivors failed to terminate: {:?}",
        report.outcomes
    );
    assert_eq!(
        report.best, reference,
        "survivors disagree with the sequential optimum"
    );
    for o in report.outcomes.iter().flatten() {
        if o.terminated {
            assert_eq!(Some(o.incumbent), reference, "node {}", o.id);
        }
    }
}

/// A recorded-tree workload from a file, solved by peers that have
/// neither the file nor the generator: node 0 loads the tree with
/// `--problem tree-file`, peers start `--problem wire` and learn the
/// whole tree from the announce frame. Survivor parity with the
/// sequential optimum proves the instance transfer was faithful.
#[test]
fn tree_file_cluster_ships_the_tree_to_wire_peers() {
    use ftbb_tree::generator::{random_basic_tree, TreeConfig};

    let tree = random_basic_tree(&TreeConfig {
        target_nodes: 4001,
        mean_cost: 0.0004,
        seed: 23,
        ..Default::default()
    });
    let dir = std::env::temp_dir().join("ftbb-wire-treefile-cluster");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("workload.ftbb");
    ftbb_tree::io::write_tree_file(&tree, &path).unwrap();

    let problem = ProblemSpec::tree_file(&path);
    let reference = reference_best(&problem);
    assert_eq!(reference, tree.optimal());

    let spec = ClusterSpec {
        noded: noded(),
        nodes: 3,
        kill: Vec::new(),
        crash_at: Vec::new(),
        problem,
        wire_peers: true,
        deadline: Duration::from_secs(60),
        seed: 5,
    };
    let report = launch(&spec).expect("cluster launches");
    std::fs::remove_file(&path).ok();

    assert!(
        report.all_survivors_terminated,
        "nodes failed to terminate: {:?}",
        report.outcomes
    );
    assert_eq!(report.best, reference);
    assert_eq!(report.outcomes.iter().flatten().count(), 3);
    // The wire peers did real work on an instance they never loaded.
    for o in report.outcomes.iter().flatten() {
        assert_eq!(Some(o.incumbent), reference, "node {}", o.id);
    }
}
