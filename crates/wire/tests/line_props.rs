//! Property tests of the `FTBB-*` stdout line codec and the trace JSONL
//! codec: every report/snapshot round-trips through its line, and the
//! parsers are total — truncated, corrupted, or arbitrary input yields
//! `None`, never a panic. Launchers scan whole stdout streams (and whole
//! trace files) that also carry arbitrary diagnostic output, so the
//! parsers must shrug at anything.

use ftbb_core::{PhaseTimes, ProcMetrics, TraceEvent, TransportStats};
use ftbb_runtime::{MetricsSnapshot, NodeOutcome};
use ftbb_wire::noded::NodedReport;
use ftbb_wire::{metrics_line, outcome_line, parse_metrics_line, parse_outcome_line};
use proptest::collection;
use proptest::prelude::*;
use std::time::Duration;

/// Seconds that survive the lines' `{:.6}` decimal formatting exactly:
/// whole microseconds.
fn micros_strategy() -> impl Strategy<Value = f64> {
    (0u64..10_000_000_000).prop_map(|us| us as f64 / 1e6)
}

/// Printable-ASCII garbage to splice into lines.
fn garbage_strategy() -> impl Strategy<Value = String> {
    collection::vec(0x20u32..0x7f, 0..24).prop_map(|codes| {
        codes
            .into_iter()
            .filter_map(char::from_u32)
            .collect::<String>()
    })
}

/// Arbitrary unicode text — including quotes, backslashes, newlines, and
/// control characters.
fn text_strategy(max: usize) -> impl Strategy<Value = String> {
    collection::vec(any::<u32>(), 0..max).prop_map(|codes| {
        codes
            .into_iter()
            .filter_map(|c| char::from_u32(c % 0x11_0000))
            .collect::<String>()
    })
}

/// Lowercase identifier-ish field keys.
fn key_strategy() -> impl Strategy<Value = String> {
    collection::vec(0u8..27, 1..12).prop_map(|bytes| {
        bytes
            .into_iter()
            .map(|b| if b == 26 { '_' } else { (b'a' + b) as char })
            .collect::<String>()
    })
}

fn phase_strategy() -> impl Strategy<Value = PhaseTimes> {
    (
        micros_strategy(),
        micros_strategy(),
        micros_strategy(),
        micros_strategy(),
        micros_strategy(),
        micros_strategy(),
        micros_strategy(),
    )
        .prop_map(|(ex, co, ct, lb, me, id, ck)| PhaseTimes {
            expand_s: ex,
            communicate_s: co,
            contract_s: ct,
            load_balance_s: lb,
            membership_s: me,
            idle_s: id,
            checkpoint_s: ck,
        })
}

fn transport_strategy() -> impl Strategy<Value = TransportStats> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(|(sent, wire, enc, d1, d2, d3)| TransportStats {
            sent: sent as u64,
            sent_wire_bytes: wire as u64,
            sent_encoded_bytes: enc as u64,
            dropped_full: d1 as u64,
            dropped_disconnected: d2 as u64,
            dropped_no_route: d3 as u64,
            dropped_startup: (d1 % 7) as u64,
            dropped_stale: (d2 % 5) as u64,
            retried: (d3 % 3) as u64,
            connect_waits: (sent % 11) as u64,
            reconnects: (wire % 13) as u64,
            announces_sent: (enc % 17) as u64,
            announces_recv: (d1 % 19) as u64,
            rejoins: (d2 % 23) as u64,
            joins: (d3 % 29) as u64,
            peers_discovered: (sent % 31) as u64,
            flushes: (wire % 37) as u64,
            frames_flushed: (enc % 41) as u64,
            membership_frames_sent: (d1 % 43) as u64,
            book_entries_sent: (d2 % 47) as u64,
            digest_entries_sent: (d3 % 53) as u64,
            bound_broadcasts: (sent % 59) as u64,
        })
}

fn report_strategy() -> impl Strategy<Value = NodedReport> {
    (
        any::<u32>(),
        0u32..8,
        any::<bool>(),
        any::<u64>(), // incumbent bits: any f64 including NaN/∞ must survive
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>()),
        phase_strategy(),
        transport_strategy(),
    )
        .prop_map(
            |(id, inc, terminated, bits, (expanded, rec, sus, forg), (mev, tev), phase, t)| {
                let metrics = ProcMetrics {
                    expanded,
                    pruned_at_pop: sus % 73,
                    recoveries: rec,
                    peers_suspected: sus,
                    peers_forgotten: forg,
                    membership_events_dropped: mev,
                    bound_broadcasts: forg % 61,
                    bound_coalesced: mev % 67,
                    bound_piggybacks_suppressed: rec % 71,
                    ..Default::default()
                };
                NodedReport {
                    outcome: NodeOutcome {
                        id,
                        incarnation: inc,
                        terminated,
                        incumbent: f64::from_bits(bits),
                        metrics,
                        phase,
                        lifetime: Duration::from_millis(5),
                    },
                    transport: t,
                    trace_events_dropped: tev,
                    workers: (expanded % 9) as usize + 1,
                }
            },
        )
}

fn snapshot_strategy() -> impl Strategy<Value = MetricsSnapshot> {
    (
        (any::<u32>(), any::<u64>()),
        0u32..8,
        any::<u64>(),
        micros_strategy(),
        phase_strategy(),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>()),
        transport_strategy(),
    )
        .prop_map(
            |((id, job), inc, seq, elapsed, phase, (expanded, rec, sus, forg), (mev, tev), t)| {
                MetricsSnapshot {
                    id,
                    job,
                    incarnation: inc,
                    seq,
                    elapsed_s: elapsed,
                    phase,
                    metrics: ProcMetrics {
                        expanded,
                        pruned_at_pop: sus % 73,
                        recoveries: rec,
                        peers_suspected: sus,
                        peers_forgotten: forg,
                        membership_events_dropped: mev,
                        bound_broadcasts: forg % 61,
                        bound_coalesced: mev % 67,
                        bound_piggybacks_suppressed: rec % 71,
                        ..Default::default()
                    },
                    transport: t,
                    trace_events_dropped: tev,
                    workers: (seq % 9) as usize + 1,
                }
            },
        )
}

/// Splice `garbage` over a slice of `line` (at a char boundary), or
/// truncate — the mangled stream a launcher might actually see.
fn mangle(line: &str, at_seed: u64, garbage: &str) -> String {
    let cuts: Vec<usize> = line
        .char_indices()
        .map(|(i, _)| i)
        .chain([line.len()])
        .collect();
    let cut = cuts[(at_seed as usize) % cuts.len()];
    let mut out = line[..cut].to_string();
    out.push_str(garbage);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every outcome — including NaN/infinite incumbents, which ride as
    /// exact bits — survives its stdout line.
    #[test]
    fn outcome_line_round_trips(report in report_strategy()) {
        let line = outcome_line(&report);
        let parsed = parse_outcome_line(&line).expect("own line parses");
        let o = &report.outcome;
        prop_assert_eq!(parsed.id, o.id);
        prop_assert_eq!(parsed.incarnation, o.incarnation);
        prop_assert_eq!(parsed.terminated, o.terminated);
        prop_assert_eq!(parsed.incumbent.to_bits(), o.incumbent.to_bits(),
            "incumbent must round-trip bit-for-bit");
        prop_assert_eq!(parsed.expanded, o.metrics.expanded);
        prop_assert_eq!(parsed.pruned_at_pop, o.metrics.pruned_at_pop);
        prop_assert_eq!(parsed.recoveries, o.metrics.recoveries);
        prop_assert_eq!(parsed.suspected, o.metrics.peers_suspected);
        prop_assert_eq!(parsed.forgotten, o.metrics.peers_forgotten);
        prop_assert_eq!(parsed.membership_events_dropped,
            o.metrics.membership_events_dropped);
        prop_assert_eq!(parsed.bound_broadcasts, o.metrics.bound_broadcasts);
        prop_assert_eq!(parsed.bound_coalesced, o.metrics.bound_coalesced);
        prop_assert_eq!(parsed.bound_suppressed, o.metrics.bound_piggybacks_suppressed);
        prop_assert_eq!(parsed.trace_events_dropped, report.trace_events_dropped);
        prop_assert_eq!(parsed.transport, report.transport);
    }

    /// Every interval snapshot survives its stdout line; microsecond
    /// phase times round-trip exactly through the `{:.6}` formatting.
    #[test]
    fn metrics_line_round_trips(snap in snapshot_strategy()) {
        let line = metrics_line(&snap);
        let parsed = parse_metrics_line(&line).expect("own line parses");
        prop_assert_eq!(parsed.id, snap.id);
        prop_assert_eq!(parsed.job, snap.job);
        prop_assert_eq!(parsed.incarnation, snap.incarnation);
        prop_assert_eq!(parsed.seq, snap.seq);
        prop_assert_eq!(parsed.elapsed_s, snap.elapsed_s);
        prop_assert_eq!(parsed.phase, snap.phase);
        prop_assert_eq!(parsed.expanded, snap.metrics.expanded);
        prop_assert_eq!(parsed.pruned_at_pop, snap.metrics.pruned_at_pop);
        prop_assert_eq!(parsed.recoveries, snap.metrics.recoveries);
        prop_assert_eq!(parsed.suspected, snap.metrics.peers_suspected);
        prop_assert_eq!(parsed.forgotten, snap.metrics.peers_forgotten);
        prop_assert_eq!(parsed.membership_events_dropped,
            snap.metrics.membership_events_dropped);
        prop_assert_eq!(parsed.trace_events_dropped, snap.trace_events_dropped);
        prop_assert_eq!(parsed.bound_broadcasts, snap.metrics.bound_broadcasts);
        prop_assert_eq!(parsed.bound_coalesced, snap.metrics.bound_coalesced);
        prop_assert_eq!(parsed.bound_suppressed, snap.metrics.bound_piggybacks_suppressed);
        prop_assert_eq!(parsed.sent, snap.transport.sent);
        prop_assert_eq!(parsed.dropped, snap.transport.dropped());
        prop_assert_eq!(parsed.membership_frames, snap.transport.membership_frames_sent);
        prop_assert_eq!(parsed.book_entries, snap.transport.book_entries_sent);
        prop_assert_eq!(parsed.digest_entries, snap.transport.digest_entries_sent);
        prop_assert_eq!(parsed.bound_frames, snap.transport.bound_broadcasts);
    }

    /// A valid line mangled anywhere — truncated mid-token, spliced with
    /// garbage — never panics either parser; a parse that still succeeds
    /// is fine (the mangling may hit redundant tail fields), a failed one
    /// must be `None`, not a crash.
    #[test]
    fn mangled_lines_never_panic(
        report in report_strategy(),
        snap in snapshot_strategy(),
        at in any::<u64>(),
        garbage in garbage_strategy(),
    ) {
        let _ = parse_outcome_line(&mangle(&outcome_line(&report), at, &garbage));
        let _ = parse_metrics_line(&mangle(&metrics_line(&snap), at, &garbage));
    }

    /// Arbitrary text never panics any line parser, and a line missing
    /// its tag never parses.
    #[test]
    fn arbitrary_text_never_parses_or_panics(text in text_strategy(64)) {
        let _ = parse_outcome_line(&text);
        let _ = parse_metrics_line(&text);
        let _ = ftbb_wire::parse_ready_line(&text);
        let _ = TraceEvent::parse_jsonl(&text);
        if !text.contains("FTBB-OUTCOME") {
            prop_assert!(parse_outcome_line(&text).is_none());
        }
        if !text.contains("FTBB-METRICS") {
            prop_assert!(parse_metrics_line(&text).is_none());
        }
    }

    /// Trace events with arbitrary kinds and field values — quotes,
    /// backslashes, newlines, control characters — survive the JSONL
    /// encoding, and mangled JSONL never panics the parser.
    #[test]
    fn trace_event_jsonl_round_trips(
        t_us in any::<u64>(),
        node in any::<u32>(),
        inc in any::<u32>(),
        job in any::<u64>(),
        kind in text_strategy(24),
        fields in collection::vec((key_strategy(), text_strategy(24)), 0..5),
        at in any::<u64>(),
        garbage in garbage_strategy(),
    ) {
        let event = TraceEvent {
            t_us,
            node,
            incarnation: inc,
            job,
            kind,
            fields: fields
                .into_iter()
                // Reserved keys would be reabsorbed into the header on
                // parse; real emitters never use them as field names.
                .filter(|(k, _)| !matches!(k.as_str(), "t_us" | "node" | "inc" | "job" | "kind"))
                .collect(),
        };
        let line = event.to_jsonl();
        prop_assert!(!line.contains('\n'), "JSONL events are single lines");
        let parsed = TraceEvent::parse_jsonl(&line).expect("own line parses");
        prop_assert_eq!(parsed, event);
        let _ = TraceEvent::parse_jsonl(&mangle(&line, at, &garbage));
    }
}
