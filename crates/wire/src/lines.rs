//! The `FTBB-*` stdout line codec.
//!
//! The daemon talks to its launcher through single-line, machine-parseable
//! stdout records: `FTBB-READY` (listener bound), `FTBB-METRICS` (interval
//! snapshots), `FTBB-OUTCOME` (final report). They all share one shape —
//! `TAG key=value key=value …` with whitespace-free values — so the
//! formatter and the field scanner live here once instead of being
//! hand-rolled per tag. Parsers are total: any malformed line yields
//! `None`, never a panic, because launchers scan whole stdout streams that
//! also carry arbitrary diagnostic output.

use std::collections::HashMap;

/// Render one `TAG key=value …` line. Values must not contain whitespace
/// (debug-asserted): the scanner splits on it.
pub fn render_line(tag: &str, fields: &[(&str, String)]) -> String {
    let mut out = String::with_capacity(32 + fields.len() * 12);
    out.push_str(tag);
    for (k, v) in fields {
        debug_assert!(
            !k.chars().any(char::is_whitespace) && !v.chars().any(char::is_whitespace),
            "line fields must be whitespace-free: {k}={v}"
        );
        out.push(' ');
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out
}

/// The parsed fields of one `TAG key=value …` line, with typed accessors.
/// Obtained from [`Fields::parse`]; borrowed from the input line.
pub struct Fields<'a> {
    map: HashMap<&'a str, &'a str>,
}

impl<'a> Fields<'a> {
    /// Scan `line` as a `tag key=value …` record. `None` if the tag does
    /// not match or any token after it lacks a `=`.
    pub fn parse(tag: &str, line: &'a str) -> Option<Fields<'a>> {
        let rest = line.trim().strip_prefix(tag)?;
        // The tag must be a whole token: either the line is exactly the
        // tag, or a space follows it.
        let rest = if rest.is_empty() {
            rest
        } else {
            rest.strip_prefix(' ')?
        };
        let mut map = HashMap::new();
        for pair in rest.split_whitespace() {
            let (k, v) = pair.split_once('=')?;
            map.insert(k, v);
        }
        Some(Fields { map })
    }

    /// Raw field value.
    pub fn get(&self, key: &str) -> Option<&'a str> {
        self.map.get(key).copied()
    }

    /// Field parsed as `u64`.
    pub fn u64(&self, key: &str) -> Option<u64> {
        self.get(key)?.parse().ok()
    }

    /// Field parsed as `u32`.
    pub fn u32(&self, key: &str) -> Option<u32> {
        self.get(key)?.parse().ok()
    }

    /// Field parsed as `f64` (decimal text; see [`Fields::f64_bits`] for
    /// the exact-bits encoding).
    pub fn f64(&self, key: &str) -> Option<f64> {
        self.get(key)?.parse().ok()
    }

    /// Field parsed as `bool` (`true`/`false`).
    pub fn bool(&self, key: &str) -> Option<bool> {
        match self.get(key)? {
            "true" => Some(true),
            "false" => Some(false),
            _ => None,
        }
    }

    /// Field carrying exact `f64` bits in the `{:#018x}` form
    /// ([`render_f64_bits`]); survives round trips bit-for-bit where
    /// decimal text would not.
    pub fn f64_bits(&self, key: &str) -> Option<f64> {
        let hex = self.get(key)?.strip_prefix("0x")?;
        u64::from_str_radix(hex, 16).ok().map(f64::from_bits)
    }
}

/// Render an `f64` as its exact bit pattern (`0x…`, 16 hex digits) for a
/// field that must round-trip bit-for-bit.
pub fn render_f64_bits(v: f64) -> String {
    format!("{:#018x}", v.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let line = render_line(
            "FTBB-TEST",
            &[
                ("id", "7".to_string()),
                ("ok", "true".to_string()),
                ("x", render_f64_bits(-0.125)),
                ("rate", "1.5".to_string()),
            ],
        );
        let f = Fields::parse("FTBB-TEST", &line).expect("parses");
        assert_eq!(f.u32("id"), Some(7));
        assert_eq!(f.u64("id"), Some(7));
        assert_eq!(f.bool("ok"), Some(true));
        assert_eq!(f.f64_bits("x"), Some(-0.125));
        assert_eq!(f.f64("rate"), Some(1.5));
        assert_eq!(f.get("missing"), None);
        assert_eq!(f.u64("ok"), None);
    }

    #[test]
    fn parse_is_total_and_tag_strict() {
        assert!(Fields::parse("FTBB-TEST", "FTBB-TEST").is_some());
        assert!(Fields::parse("FTBB-TEST", "  FTBB-TEST a=1  ").is_some());
        assert!(Fields::parse("FTBB-TEST", "FTBB-TESTY a=1").is_none());
        assert!(Fields::parse("FTBB-TEST", "FTBB-OTHER a=1").is_none());
        assert!(Fields::parse("FTBB-TEST", "FTBB-TEST a=1 naked").is_none());
        assert!(Fields::parse("FTBB-TEST", "").is_none());
        assert!(Fields::parse("FTBB-TEST", "noise before FTBB-TEST a=1").is_none());
    }
}
