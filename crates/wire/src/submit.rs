//! The `ftbb-submit` client: hand a job to a running service pool and
//! stream its results back.
//!
//! A submitter is not a pool member — it speaks three frame kinds over
//! one plain TCP connection to any service node (the *gateway* for this
//! job): it sends one `SubmitJob` frame, then reads `JobAccepted` (which
//! node took the job) and a stream of `JobResult` frames — incumbent
//! improvements (`finished=false`) followed by the final optimum
//! (`finished=true`). No mesh, no membership, no incarnation tags.

use crate::codec::{encode_submit, FrameDecoder, WireFrame};
use ftbb_bnb::AnyInstance;
use ftbb_core::JobId;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// What one submission produced, as seen from the client side.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// The job that was submitted.
    pub job: JobId,
    /// The pool node that accepted it (the job's gateway).
    pub accepted_by: u32,
    /// Incumbent improvements streamed before the final result, in
    /// arrival order.
    pub incumbents: Vec<f64>,
    /// Did the pool detect termination (optimality proven)?
    pub finished: bool,
    /// The final incumbent.
    pub incumbent: f64,
    /// Subproblems the gateway expanded for this job (its local count,
    /// not the pool-wide total).
    pub expanded: u64,
}

fn timed_out(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::TimedOut, msg)
}

/// Submit `instance` as `job` to the service node at `addr` and block
/// until the final `JobResult` arrives (or `timeout` expires). The
/// stream is read in short slices so a slow pool never wedges the
/// client past its deadline.
pub fn submit_job(
    addr: SocketAddr,
    job: JobId,
    instance: &AnyInstance,
    timeout: Duration,
) -> std::io::Result<SubmitOutcome> {
    let frame = encode_submit(job, instance);
    if frame.exceeds_limit() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "instance exceeds the frame payload limit; ship it out of band (tree file)",
        ));
    }
    let deadline = Instant::now() + timeout;
    let mut stream = TcpStream::connect_timeout(&addr, timeout.min(Duration::from_secs(5)))?;
    stream.set_nodelay(true).ok();
    stream.write_all(&frame.bytes)?;

    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    let mut accepted_by: Option<u32> = None;
    let mut incumbents = Vec::new();
    loop {
        if Instant::now() >= deadline {
            return Err(timed_out(format!(
                "no final result for job {} within {:.1}s",
                job.raw(),
                timeout.as_secs_f64()
            )));
        }
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .ok();
        let n = match stream.read(&mut buf) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!(
                        "gateway closed the stream before job {} finished",
                        job.raw()
                    ),
                ));
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        };
        decoder.push(&buf[..n]);
        loop {
            match decoder.try_next() {
                Ok(Some(WireFrame::JobAccepted { job: j, node })) if j == job => {
                    accepted_by = Some(node);
                }
                Ok(Some(WireFrame::JobResult {
                    job: j,
                    finished,
                    incumbent,
                    expanded,
                })) if j == job => {
                    if finished {
                        return Ok(SubmitOutcome {
                            job,
                            accepted_by: accepted_by.unwrap_or(u32::MAX),
                            incumbents,
                            finished: true,
                            incumbent,
                            expanded,
                        });
                    }
                    incumbents.push(incumbent);
                }
                // Frames for other jobs (a shared client socket is not
                // supported, but tolerated) and any other kind: skip.
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("corrupt result stream for job {}: {e}", job.raw()),
                    ));
                }
            }
        }
    }
}
