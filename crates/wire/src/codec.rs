//! The framed wire codec.
//!
//! Every protocol message travels as one *frame*:
//!
//! ```text
//! ┌────────────┬─────────────┬──────────────┬──────────────┬─────────┐
//! │ magic: u32 │ version:u16 │ pay_len: u32 │ checksum:u32 │ payload │
//! └────────────┴─────────────┴──────────────┴──────────────┴─────────┘
//! ```
//!
//! (all little-endian). The payload starts with one *kind* byte:
//!
//! * [`PAYLOAD_PROTOCOL`] frames carry the binary serde encoding of
//!   `(from, from_incarnation, to_incarnation, msg, book)` — the routed
//!   [`Envelope`] plus the **incarnation tags** the lifecycle refactor
//!   added (the sender stamps which of its own lives produced the frame
//!   and which life of the destination it believes it is talking to, so
//!   receivers can reject traffic from (or addressed to) a previous life
//!   as stale instead of delivering it to the wrong incarnation) plus —
//!   since codec v4 — an **address book**: membership frames piggyback
//!   the sender's peer roster as `(id, addr, incarnation)` entries so a
//!   receiver can open routes to members it learned about through gossip
//!   but has never exchanged wiring with — already tagged for the right
//!   life. Non-membership traffic ships an empty book.
//! * [`PAYLOAD_ANNOUNCE`] frames carry `(from, incarnation, AnyInstance)`,
//!   the problem announce a root sends so peers started with
//!   `--problem wire` can solve an instance they never had locally.
//! * [`PAYLOAD_REJOIN`] frames carry a [`RejoinFrame`]: a restarted node's
//!   (id, new incarnation, new listen address, resume summary). Receivers
//!   re-register the peer — new writer if the address moved, bumped
//!   incarnation either way — which is how a node killed and restored
//!   from a checkpoint re-enters a live mesh.
//! * [`PAYLOAD_JOIN`] frames carry a [`JoinFrame`]: a brand-new node's
//!   (id, incarnation, listen address), sent to its gossip servers before
//!   `Start`. The receiver registers the newcomer — the wire-level half
//!   of the §5.2 join handshake; the protocol-level
//!   `MembershipMsg::Join`/`Welcome` exchange then rides ordinary
//!   protocol frames over the routes this one opened.
//! * [`PAYLOAD_SUBMIT`] frames carry a [`WireFrame::SubmitJob`]: a client
//!   (`ftbb-submit`) handing a job — a [`JobId`] plus a materialized
//!   [`AnyInstance`] — to a service-mode pool's gateway node over the
//!   same port the mesh uses.
//! * [`PAYLOAD_ACCEPTED`] frames carry a [`WireFrame::JobAccepted`]: the
//!   gateway's admission acknowledgement back to the submitter.
//! * [`PAYLOAD_RESULT`] frames carry a [`WireFrame::JobResult`]: streamed
//!   incumbent improvements (`finished: false`) and the final optimum
//!   (`finished: true`) flowing back to the submitter as the pool solves.
//!
//! Since codec **v5** every frame kind that participates in solving is
//! stamped with the [`JobId`] it belongs to, so one service pool can
//! multiplex any number of concurrent jobs over one shared transport:
//! protocol frames route to the matching per-job engine, announces are
//! job admissions. Single-run deployments stamp [`JobId::DEFAULT`].
//!
//! The decoder is **fuzz-resistant**: arbitrary bytes fed to
//! [`FrameDecoder`] produce frames or [`WireError`]s, never panics or
//! unbounded allocations (payload length is bounded by
//! [`MAX_FRAME_PAYLOAD`], the checksum rejects corruption before the
//! payload decoder runs, and decoded instances are re-validated
//! structurally).
//!
//! Per-message size accounting reuses the protocol's own bookkeeping:
//! [`encode_frame`] reports both the *estimated* protocol bytes
//! (`Msg::wire_size`, the quantity the paper's report compression
//! minimizes) and the *actual* encoded bytes, so
//! [`ftbb_core::TransportCounters`] can expose the framing overhead.
//!
//! Delivery is **at most once**: a frame is written to a socket at most
//! one time. The transport's startup retry window
//! ([`crate::tcp::RETRY_WINDOW`]) retries frames that never reached a
//! socket at all (the peer had not yet accepted any connection), so it
//! cannot duplicate — it only narrows the silent-drop window; frames
//! lost *after* a `write` started are never replayed.

use bytes::{Bytes, BytesMut};
use ftbb_bnb::AnyInstance;
use ftbb_core::{JobId, Msg};
use ftbb_runtime::Envelope;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::fmt;
use std::net::SocketAddr;

/// Frame magic: `"FTWB"` (ftbb wire, binary).
pub const MAGIC: u32 = 0x4654_5742;

/// Codec version; bumped on any payload-format change. Decoders reject
/// frames from other versions rather than guessing. (v2 added the
/// payload kind byte and the problem-announce frame; v3 added the
/// incarnation tags and the rejoin frame; v4 added the piggybacked
/// id→addr book on protocol frames and the join frame; v5 added the
/// job-id stamp on protocol and announce frames plus the job-submission
/// frames — service mode; v6 added the explicit bound-announce message
/// tag — suppressed bound dissemination.)
pub const VERSION: u16 = 6;

/// Payload kind byte of a protocol envelope frame.
pub const PAYLOAD_PROTOCOL: u8 = 0;

/// Payload kind byte of a problem-announce frame.
pub const PAYLOAD_ANNOUNCE: u8 = 1;

/// Payload kind byte of a rejoin frame.
pub const PAYLOAD_REJOIN: u8 = 2;

/// Payload kind byte of a join frame.
pub const PAYLOAD_JOIN: u8 = 3;

/// Payload kind byte of a job-submission frame (client → gateway).
pub const PAYLOAD_SUBMIT: u8 = 4;

/// Payload kind byte of a job-admission acknowledgement (gateway →
/// client).
pub const PAYLOAD_ACCEPTED: u8 = 5;

/// Payload kind byte of a job-result frame (gateway → client): streamed
/// incumbents and the final optimum.
pub const PAYLOAD_RESULT: u8 = 6;

/// Fixed frame header size in bytes.
pub const HEADER_LEN: usize = 4 + 2 + 4 + 4;

/// Upper bound on a frame payload. Protocol messages are small (a work
/// grant carries tens of codes, each a few dozen bytes); anything larger
/// is corruption or an attack, and is rejected before allocation.
pub const MAX_FRAME_PAYLOAD: usize = 4 << 20;

/// Errors surfaced by the decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// First four bytes were not [`MAGIC`]. The stream is garbage or
    /// desynchronized; the connection should be dropped.
    BadMagic(u32),
    /// Frame from an incompatible codec version — typically a pre-v5
    /// (pre-service-mode) peer. The typed error carries the version the
    /// peer spoke so operators can see *what* to upgrade; the frame is
    /// never misparsed as current-version traffic.
    UnsupportedVersion(u16),
    /// Claimed payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversize(usize),
    /// Payload bytes do not match the header checksum.
    Checksum {
        /// Checksum the header claimed.
        expected: u32,
        /// Checksum of the bytes actually received.
        actual: u32,
    },
    /// Checksummed payload failed structural decoding (e.g. invalid
    /// enum tag).
    Payload(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported codec version {v}"),
            WireError::Oversize(n) => write!(f, "frame payload of {n} bytes exceeds limit"),
            WireError::Checksum { expected, actual } => {
                write!(
                    f,
                    "payload checksum {actual:#010x} != header {expected:#010x}"
                )
            }
            WireError::Payload(e) => write!(f, "payload decode failed: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a over the payload — cheap corruption detection, not security.
pub fn checksum(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// What a rejoining node tells the mesh about the state it resumed from —
/// operator-facing context for the rejoin log line, not protocol input
/// (the protocol recovers knowledge through reports and gossip as usual).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RejoinSummary {
    /// Best-known solution at the restored checkpoint.
    pub incumbent: f64,
    /// Contracted codes in the restored completion table.
    pub table_codes: u32,
    /// Subproblems in the restored pool.
    pub pool_len: u32,
}

/// The rejoin handshake: a node restored from a checkpoint announcing its
/// new life to a live mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct RejoinFrame {
    /// The rejoining node's id.
    pub from: u32,
    /// Its new incarnation (`checkpoint.incarnation + 1`).
    pub incarnation: u32,
    /// Where its new listener lives (a restarted daemon may come back on
    /// a different port).
    pub addr: SocketAddr,
    /// What it resumed from.
    pub summary: RejoinSummary,
}

/// The elastic-join handshake: a brand-new node introducing itself to a
/// gossip server it was pointed at (`ftbb-noded --join
/// --gossip-servers`). The receiver registers the sender so the
/// protocol-level membership join can flow; gossip then spreads the
/// newcomer (and its address, via the piggybacked book) epidemically.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinFrame {
    /// The joining node's id.
    pub from: u32,
    /// Its incarnation (0 for a first life).
    pub incarnation: u32,
    /// Where its listener lives.
    pub addr: SocketAddr,
}

/// Everything a frame can carry: a routed protocol message, or one of the
/// lifecycle handshakes (problem announce, rejoin, join).
#[derive(Debug, Clone, PartialEq)]
pub enum WireFrame {
    /// A routed protocol message (the steady-state traffic).
    Protocol {
        /// The routed message.
        env: Envelope,
        /// Which of the sender's lives produced this frame.
        from_incarnation: u32,
        /// Which life of the destination the sender believes it is
        /// talking to.
        to_incarnation: u32,
        /// The sender's address book, `(id, addr, incarnation)` per
        /// known peer (empty on non-membership traffic): how peers
        /// discovered through gossip become routable — at the right
        /// incarnation — without ever having been wired.
        book: Vec<(u32, SocketAddr, u32)>,
    },
    /// A problem announce: the sender's materialized workload, shipped
    /// before `Start` so `--problem wire` peers can join a computation
    /// whose instance they never generated. In service mode this *is*
    /// job admission: the gateway announces each submitted job to its
    /// peers, stamped with the job it opens.
    Announce {
        /// Announcing node's id.
        from: u32,
        /// Announcing node's incarnation.
        incarnation: u32,
        /// Which job this announce opens ([`JobId::DEFAULT`] on the
        /// single-run path).
        job: JobId,
        /// The materialized (validated) workload.
        instance: AnyInstance,
    },
    /// A restarted node re-entering the mesh under a new incarnation.
    Rejoin(RejoinFrame),
    /// A brand-new node introducing itself to a gossip server.
    Join(JoinFrame),
    /// A client submitting a job to a service-mode gateway.
    SubmitJob {
        /// Client-chosen job id (must be unique within the pool's
        /// lifetime; 0 is reserved for the single-run path).
        job: JobId,
        /// The materialized (validated) workload to solve.
        instance: AnyInstance,
    },
    /// The gateway's admission acknowledgement back to the submitter.
    JobAccepted {
        /// The admitted job.
        job: JobId,
        /// The gateway node that admitted it.
        node: u32,
    },
    /// A result update for a submitted job: incumbent improvements
    /// stream back with `finished: false`; the final optimum arrives
    /// with `finished: true`.
    JobResult {
        /// The job this result belongs to.
        job: JobId,
        /// True exactly once, when the pool detected termination.
        finished: bool,
        /// Best solution value known at this point.
        incumbent: f64,
        /// Subproblems expanded so far on the reporting node.
        expanded: u64,
    },
}

impl WireFrame {
    /// The protocol envelope, if this is a protocol frame.
    pub fn into_envelope(self) -> Option<Envelope> {
        match self {
            WireFrame::Protocol { env, .. } => Some(env),
            WireFrame::Announce { .. }
            | WireFrame::Rejoin(_)
            | WireFrame::Join(_)
            | WireFrame::SubmitJob { .. }
            | WireFrame::JobAccepted { .. }
            | WireFrame::JobResult { .. } => None,
        }
    }
}

/// An encoded frame plus its size accounting. `bytes` is refcounted, so
/// cloning a frame for each peer of a broadcast shares one encoding.
#[derive(Debug, Clone)]
pub struct EncodedFrame {
    /// The full frame (header + payload), ready for the socket.
    pub bytes: Bytes,
    /// The message's own estimate of its protocol size
    /// ([`Msg::wire_size`]), used for paper-faithful accounting.
    pub wire_size: usize,
}

impl EncodedFrame {
    /// Actual encoded length, header included.
    pub fn encoded_len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the payload exceeds [`MAX_FRAME_PAYLOAD`] — receivers
    /// would reject this frame, so it must not be transmitted.
    pub fn exceeds_limit(&self) -> bool {
        self.bytes.len() - HEADER_LEN > MAX_FRAME_PAYLOAD
    }
}

/// Encode one envelope into a frame, stamped with the sender's
/// incarnation and the destination incarnation the sender believes in,
/// plus an `(id, addr, incarnation)` address `book` (pass `&[]` for
/// non-membership traffic — the mesh piggybacks its roster only on
/// membership frames, where discovery belongs and the amortized cost is
/// a few bytes per gossip tick).
///
/// Frames whose payload exceeds [`MAX_FRAME_PAYLOAD`] are still encoded
/// (the caller owns the policy), but every receiver will reject them as
/// [`WireError::Oversize`] and drop the connection — senders must check
/// [`EncodedFrame::exceeds_limit`] and drop such messages instead of
/// transmitting them (the TCP mesh does, counting them as full-queue
/// drops).
pub fn encode_frame(
    env: &Envelope,
    from_incarnation: u32,
    to_incarnation: u32,
    book: &[(u32, SocketAddr, u32)],
) -> EncodedFrame {
    encode_with(
        29 + env.msg.wire_size(),
        Some(env.msg.wire_size()),
        |payload| {
            payload.push(PAYLOAD_PROTOCOL);
            env.from.ser(payload);
            from_incarnation.ser(payload);
            to_incarnation.ser(payload);
            env.job.ser(payload);
            env.msg.ser(payload);
            let book: Vec<(u32, String, u32)> = book
                .iter()
                .map(|&(id, a, inc)| (id, a.to_string(), inc))
                .collect();
            book.ser(payload);
        },
    )
}

/// Encode a problem-announce frame, stamped with the job it opens
/// ([`JobId::DEFAULT`] on the single-run path). The announce is a
/// handshake, not protocol traffic, so its `wire_size` accounting is
/// simply the payload length (there is no protocol-level estimate to
/// compare against).
pub fn encode_announce(
    from: u32,
    incarnation: u32,
    job: JobId,
    instance: &AnyInstance,
) -> EncodedFrame {
    encode_with(64, None, |payload| {
        payload.push(PAYLOAD_ANNOUNCE);
        from.ser(payload);
        incarnation.ser(payload);
        job.ser(payload);
        instance.ser(payload);
    })
}

/// Encode a job-submission frame (client → gateway). A handshake:
/// `wire_size` is the payload length.
pub fn encode_submit(job: JobId, instance: &AnyInstance) -> EncodedFrame {
    encode_with(64, None, |payload| {
        payload.push(PAYLOAD_SUBMIT);
        job.ser(payload);
        instance.ser(payload);
    })
}

/// Encode a job-admission acknowledgement (gateway → client).
pub fn encode_accepted(job: JobId, node: u32) -> EncodedFrame {
    encode_with(16, None, |payload| {
        payload.push(PAYLOAD_ACCEPTED);
        job.ser(payload);
        node.ser(payload);
    })
}

/// Encode a job-result frame (gateway → client): a streamed incumbent
/// (`finished: false`) or the final optimum (`finished: true`).
pub fn encode_result(job: JobId, finished: bool, incumbent: f64, expanded: u64) -> EncodedFrame {
    encode_with(32, None, |payload| {
        payload.push(PAYLOAD_RESULT);
        job.ser(payload);
        (finished as u8).ser(payload);
        incumbent.ser(payload);
        expanded.ser(payload);
    })
}

/// Encode a rejoin frame. Like the announce, it is a handshake: its
/// `wire_size` accounting is the payload length.
pub fn encode_rejoin(rejoin: &RejoinFrame) -> EncodedFrame {
    encode_with(64, None, |payload| {
        payload.push(PAYLOAD_REJOIN);
        rejoin.from.ser(payload);
        rejoin.incarnation.ser(payload);
        rejoin.addr.to_string().ser(payload);
        rejoin.summary.ser(payload);
    })
}

/// Encode a join frame (a handshake: `wire_size` is the payload length).
pub fn encode_join(join: &JoinFrame) -> EncodedFrame {
    encode_with(32, None, |payload| {
        payload.push(PAYLOAD_JOIN);
        join.from.ser(payload);
        join.incarnation.ser(payload);
        join.addr.to_string().ser(payload);
    })
}

/// The reusable scratch buffer every `encode_*` writes into: header and
/// payload go down in **one** buffer (no separate payload vector, no
/// header-prepend copy); the length and checksum fields are patched in
/// place once the payload is down, and the finished frame is split off as
/// refcounted [`Bytes`].
struct FrameEncoder {
    scratch: BytesMut,
}

impl FrameEncoder {
    /// Encode one frame. `fill` writes the payload (kind byte first);
    /// `wire_size` is the protocol-size estimate, defaulting to the
    /// payload length (the handshake convention).
    fn encode(
        &mut self,
        size_hint: usize,
        wire_size: Option<usize>,
        fill: impl FnOnce(&mut Vec<u8>),
    ) -> EncodedFrame {
        self.scratch.reserve(HEADER_LEN + size_hint);
        let buf = self.scratch.as_vec_mut();
        debug_assert!(buf.is_empty(), "scratch must start each frame empty");
        MAGIC.ser(buf);
        VERSION.ser(buf);
        0u32.ser(buf); // pay_len, patched below
        0u32.ser(buf); // checksum, patched below
        fill(buf);
        let pay_len = buf.len() - HEADER_LEN;
        let sum = checksum(&buf[HEADER_LEN..]);
        buf[6..10].copy_from_slice(&(pay_len as u32).to_le_bytes());
        buf[10..14].copy_from_slice(&sum.to_le_bytes());
        EncodedFrame {
            bytes: self.scratch.split().freeze(),
            wire_size: wire_size.unwrap_or(pay_len),
        }
    }
}

thread_local! {
    static ENCODER: RefCell<FrameEncoder> = RefCell::new(FrameEncoder {
        scratch: BytesMut::new(),
    });
}

/// Encode through the thread-local scratch encoder.
fn encode_with(
    size_hint: usize,
    wire_size: Option<usize>,
    fill: impl FnOnce(&mut Vec<u8>),
) -> EncodedFrame {
    ENCODER.with(|e| e.borrow_mut().encode(size_hint, wire_size, fill))
}

/// Wrap a finished payload in the frame header (the two-buffer path the
/// scratch encoder replaced — kept for tests that hand-build payloads).
#[cfg(test)]
fn frame_bytes(payload: Vec<u8>, wire_size: usize) -> EncodedFrame {
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    MAGIC.ser(&mut bytes);
    VERSION.ser(&mut bytes);
    (payload.len() as u32).ser(&mut bytes);
    checksum(&payload).ser(&mut bytes);
    bytes.extend_from_slice(&payload);
    EncodedFrame {
        bytes: bytes.into(),
        wire_size,
    }
}

/// Decode one complete frame from `data` (exactly one frame's bytes).
/// Mostly useful in tests; streams use [`FrameDecoder`].
pub fn decode_frame(data: &[u8]) -> Result<WireFrame, WireError> {
    let mut dec = FrameDecoder::new();
    dec.push(data);
    match dec.try_next()? {
        Some(frame) if dec.buffered() == 0 => Ok(frame),
        Some(_) => Err(WireError::Payload("trailing bytes after frame".into())),
        None => Err(WireError::Payload("incomplete frame".into())),
    }
}

/// Incremental frame decoder: feed arbitrary byte chunks (as delivered by
/// the socket — frames may arrive split or coalesced), pull decoded
/// frames. Payloads are decoded by **borrowing** the buffered bytes in
/// place; the cursor advances past each decoded frame with compaction
/// deferred ([`BytesMut::advance`]), so steady-state decoding does no
/// per-frame copying beyond the socket read itself.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
    /// Frames decoded so far (for accounting/tests).
    pub frames_decoded: u64,
    /// Payload + header bytes consumed by successful decodes.
    pub bytes_decoded: u64,
}

impl FrameDecoder {
    /// Fresh decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed received bytes.
    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Try to decode the next frame. `Ok(None)` means "need more bytes".
    /// After an error the stream is desynchronized; the caller should
    /// drop the connection (this matches the Crash model — a corrupt peer
    /// is indistinguishable from a dead one).
    pub fn try_next(&mut self) -> Result<Option<WireFrame>, WireError> {
        let avail: &[u8] = &self.buf;
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let magic = u32::from_le_bytes(avail[0..4].try_into().expect("sized"));
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = u16::from_le_bytes(avail[4..6].try_into().expect("sized"));
        if version != VERSION {
            // Pre-v5 peers (and future versions alike) surface as a typed
            // error carrying the offending version — never a panic, never
            // a misparse of old-layout bytes as current-version fields.
            return Err(WireError::UnsupportedVersion(version));
        }
        let pay_len = u32::from_le_bytes(avail[6..10].try_into().expect("sized")) as usize;
        if pay_len > MAX_FRAME_PAYLOAD {
            return Err(WireError::Oversize(pay_len));
        }
        let expected = u32::from_le_bytes(avail[10..14].try_into().expect("sized"));
        if avail.len() < HEADER_LEN + pay_len {
            return Ok(None);
        }
        let payload = &avail[HEADER_LEN..HEADER_LEN + pay_len];
        let actual = checksum(payload);
        if actual != expected {
            return Err(WireError::Checksum { expected, actual });
        }
        let mut r = payload;
        let bad = |e: serde::DecodeError| WireError::Payload(e.to_string());
        let kind = serde::read_u8(&mut r).map_err(bad)?;
        let frame = match kind {
            PAYLOAD_PROTOCOL => {
                let from = u32::de(&mut r).map_err(bad)?;
                let from_incarnation = u32::de(&mut r).map_err(bad)?;
                let to_incarnation = u32::de(&mut r).map_err(bad)?;
                let job = JobId::de(&mut r).map_err(bad)?;
                let msg = Msg::de(&mut r).map_err(bad)?;
                let raw_book = Vec::<(u32, String, u32)>::de(&mut r).map_err(bad)?;
                let mut book = Vec::with_capacity(raw_book.len());
                for (id, addr, inc) in raw_book {
                    let addr: SocketAddr = addr
                        .parse()
                        .map_err(|_| WireError::Payload(format!("bad book address `{addr}`")))?;
                    book.push((id, addr, inc));
                }
                WireFrame::Protocol {
                    env: Envelope { job, from, msg },
                    from_incarnation,
                    to_incarnation,
                    book,
                }
            }
            PAYLOAD_ANNOUNCE => {
                let from = u32::de(&mut r).map_err(bad)?;
                let incarnation = u32::de(&mut r).map_err(bad)?;
                let job = JobId::de(&mut r).map_err(bad)?;
                let instance = AnyInstance::de(&mut r).map_err(bad)?;
                // The serde derive decodes structure, not invariants; an
                // instance off the network must also be *valid* before
                // the expander is allowed to trust it.
                instance
                    .validate()
                    .map_err(|e| WireError::Payload(format!("invalid announced instance: {e}")))?;
                WireFrame::Announce {
                    from,
                    incarnation,
                    job,
                    instance,
                }
            }
            PAYLOAD_REJOIN => {
                let from = u32::de(&mut r).map_err(bad)?;
                let incarnation = u32::de(&mut r).map_err(bad)?;
                let addr = String::de(&mut r).map_err(bad)?;
                let addr: SocketAddr = addr
                    .parse()
                    .map_err(|_| WireError::Payload(format!("bad rejoin address `{addr}`")))?;
                let summary = RejoinSummary::de(&mut r).map_err(bad)?;
                WireFrame::Rejoin(RejoinFrame {
                    from,
                    incarnation,
                    addr,
                    summary,
                })
            }
            PAYLOAD_JOIN => {
                let from = u32::de(&mut r).map_err(bad)?;
                let incarnation = u32::de(&mut r).map_err(bad)?;
                let addr = String::de(&mut r).map_err(bad)?;
                let addr: SocketAddr = addr
                    .parse()
                    .map_err(|_| WireError::Payload(format!("bad join address `{addr}`")))?;
                WireFrame::Join(JoinFrame {
                    from,
                    incarnation,
                    addr,
                })
            }
            PAYLOAD_SUBMIT => {
                let job = JobId::de(&mut r).map_err(bad)?;
                let instance = AnyInstance::de(&mut r).map_err(bad)?;
                instance
                    .validate()
                    .map_err(|e| WireError::Payload(format!("invalid submitted instance: {e}")))?;
                WireFrame::SubmitJob { job, instance }
            }
            PAYLOAD_ACCEPTED => {
                let job = JobId::de(&mut r).map_err(bad)?;
                let node = u32::de(&mut r).map_err(bad)?;
                WireFrame::JobAccepted { job, node }
            }
            PAYLOAD_RESULT => {
                let job = JobId::de(&mut r).map_err(bad)?;
                let finished = match serde::read_u8(&mut r).map_err(bad)? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(WireError::Payload(format!(
                            "bad finished flag byte {other}"
                        )));
                    }
                };
                let incumbent = f64::de(&mut r).map_err(bad)?;
                let expanded = u64::de(&mut r).map_err(bad)?;
                WireFrame::JobResult {
                    job,
                    finished,
                    incumbent,
                    expanded,
                }
            }
            other => {
                return Err(WireError::Payload(format!(
                    "unknown payload kind byte {other}"
                )));
            }
        };
        if !r.is_empty() {
            return Err(WireError::Payload(format!(
                "{} trailing payload bytes",
                r.len()
            )));
        }
        self.buf.advance(HEADER_LEN + pay_len);
        self.frames_decoded += 1;
        self.bytes_decoded += (HEADER_LEN + pay_len) as u64;
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Envelope {
        Envelope {
            job: JobId(77),
            from: 3,
            msg: Msg::WorkRequest { incumbent: 42.5 },
        }
    }

    #[test]
    fn frame_round_trip() {
        let frame = encode_frame(&sample(), 2, 5, &[]);
        assert_eq!(frame.wire_size, 9);
        assert_eq!(frame.encoded_len(), frame.bytes.len());
        match decode_frame(&frame.bytes).unwrap() {
            WireFrame::Protocol {
                env,
                from_incarnation,
                to_incarnation,
                book,
            } => {
                assert_eq!(env.from, 3);
                assert_eq!(env.job, JobId(77), "the job stamp survives the wire");
                assert_eq!(env.msg, sample().msg);
                assert_eq!(from_incarnation, 2);
                assert_eq!(to_incarnation, 5);
                assert!(book.is_empty());
            }
            other => panic!("expected protocol frame, got {other:?}"),
        }
    }

    #[test]
    fn address_book_rides_protocol_frames() {
        let book: Vec<(u32, SocketAddr, u32)> = vec![
            (4, "127.0.0.1:4504".parse().unwrap(), 0),
            (9, "10.0.0.9:45109".parse().unwrap(), 3),
        ];
        let frame = encode_frame(&sample(), 0, 0, &book);
        match decode_frame(&frame.bytes).unwrap() {
            WireFrame::Protocol { book: got, env, .. } => {
                assert_eq!(got, book);
                assert_eq!(env.msg, sample().msg);
            }
            other => panic!("expected protocol frame, got {other:?}"),
        }
        // The book rides outside the protocol-size accounting (it is
        // transport bookkeeping, not §5 traffic) but inside the encoded
        // bytes.
        assert_eq!(frame.wire_size, sample().msg.wire_size());
        assert!(frame.encoded_len() > encode_frame(&sample(), 0, 0, &[]).encoded_len());
    }

    #[test]
    fn book_with_bad_address_is_rejected() {
        let mut payload = vec![PAYLOAD_PROTOCOL];
        3u32.ser(&mut payload);
        0u32.ser(&mut payload);
        0u32.ser(&mut payload);
        JobId::DEFAULT.ser(&mut payload);
        sample().msg.ser(&mut payload);
        vec![(7u32, "not-an-addr".to_string(), 0u32)].ser(&mut payload);
        let frame = frame_bytes(payload, 9);
        match decode_frame(&frame.bytes) {
            Err(WireError::Payload(e)) => assert!(e.contains("book address"), "{e}"),
            other => panic!("expected payload error, got {other:?}"),
        }
    }

    #[test]
    fn join_frame_round_trip() {
        let join = JoinFrame {
            from: 6,
            incarnation: 0,
            addr: "127.0.0.1:45106".parse().unwrap(),
        };
        let frame = encode_join(&join);
        match decode_frame(&frame.bytes).unwrap() {
            WireFrame::Join(got) => assert_eq!(got, join),
            other => panic!("expected join, got {other:?}"),
        }
        // A join is a handshake, not protocol traffic.
        assert_eq!(decode_frame(&frame.bytes).unwrap().into_envelope(), None);
    }

    #[test]
    fn announce_frame_round_trip() {
        let instance = ftbb_bnb::AnyInstance::from(ftbb_bnb::MaxSatInstance::generate(6, 12, 3));
        let frame = encode_announce(7, 4, JobId(13), &instance);
        assert!(!frame.exceeds_limit());
        match decode_frame(&frame.bytes).unwrap() {
            WireFrame::Announce {
                from,
                incarnation,
                job,
                instance: got,
            } => {
                assert_eq!(from, 7);
                assert_eq!(incarnation, 4);
                assert_eq!(job, JobId(13), "the announce opens a specific job");
                assert_eq!(got, instance);
            }
            other => panic!("expected announce, got {other:?}"),
        }
    }

    #[test]
    fn submit_frame_round_trip() {
        let instance = ftbb_bnb::AnyInstance::from(ftbb_bnb::MaxSatInstance::generate(5, 10, 2));
        let frame = encode_submit(JobId(42), &instance);
        match decode_frame(&frame.bytes).unwrap() {
            WireFrame::SubmitJob { job, instance: got } => {
                assert_eq!(job, JobId(42));
                assert_eq!(got, instance);
            }
            other => panic!("expected submit, got {other:?}"),
        }
        assert_eq!(decode_frame(&frame.bytes).unwrap().into_envelope(), None);
    }

    #[test]
    fn submit_of_invalid_instance_is_rejected_on_decode() {
        let mut m = ftbb_bnb::MaxSatInstance::generate(4, 8, 1);
        m.clauses[0].literals.clear();
        let frame = encode_submit(JobId(1), &ftbb_bnb::AnyInstance::MaxSat(m));
        match decode_frame(&frame.bytes) {
            Err(WireError::Payload(e)) => assert!(e.contains("invalid submitted instance"), "{e}"),
            other => panic!("expected payload error, got {other:?}"),
        }
    }

    #[test]
    fn accepted_frame_round_trip() {
        let frame = encode_accepted(JobId(42), 0);
        match decode_frame(&frame.bytes).unwrap() {
            WireFrame::JobAccepted { job, node } => {
                assert_eq!(job, JobId(42));
                assert_eq!(node, 0);
            }
            other => panic!("expected accepted, got {other:?}"),
        }
    }

    #[test]
    fn result_frame_round_trip() {
        for (finished, incumbent, expanded) in [
            (false, -17.25, 120u64),
            (true, -31.0, 4096),
            (false, f64::INFINITY, 0),
        ] {
            let frame = encode_result(JobId(9), finished, incumbent, expanded);
            match decode_frame(&frame.bytes).unwrap() {
                WireFrame::JobResult {
                    job,
                    finished: f,
                    incumbent: i,
                    expanded: e,
                } => {
                    assert_eq!(job, JobId(9));
                    assert_eq!(f, finished);
                    assert_eq!(i.to_bits(), incumbent.to_bits());
                    assert_eq!(e, expanded);
                }
                other => panic!("expected result, got {other:?}"),
            }
        }
    }

    #[test]
    fn result_with_bad_finished_flag_is_rejected() {
        let mut payload = vec![PAYLOAD_RESULT];
        JobId(1).ser(&mut payload);
        payload.push(7); // not a bool
        0.0f64.ser(&mut payload);
        0u64.ser(&mut payload);
        let wire = payload.len();
        let frame = frame_bytes(payload, wire);
        match decode_frame(&frame.bytes) {
            Err(WireError::Payload(e)) => assert!(e.contains("finished flag"), "{e}"),
            other => panic!("expected payload error, got {other:?}"),
        }
    }

    #[test]
    fn rejoin_frame_round_trip() {
        let rejoin = RejoinFrame {
            from: 2,
            incarnation: 3,
            addr: "127.0.0.1:45107".parse().unwrap(),
            summary: RejoinSummary {
                incumbent: -12.5,
                table_codes: 7,
                pool_len: 4,
            },
        };
        let frame = encode_rejoin(&rejoin);
        match decode_frame(&frame.bytes).unwrap() {
            WireFrame::Rejoin(got) => assert_eq!(got, rejoin),
            other => panic!("expected rejoin, got {other:?}"),
        }
        // A rejoin is a handshake, not protocol traffic.
        assert_eq!(decode_frame(&frame.bytes).unwrap().into_envelope(), None);
    }

    #[test]
    fn rejoin_with_bad_address_is_rejected() {
        let rejoin = RejoinFrame {
            from: 2,
            incarnation: 1,
            addr: "127.0.0.1:45107".parse().unwrap(),
            summary: RejoinSummary {
                incumbent: 0.0,
                table_codes: 0,
                pool_len: 0,
            },
        };
        // Re-encode by hand with a garbage address string.
        let mut payload = vec![PAYLOAD_REJOIN];
        rejoin.from.ser(&mut payload);
        rejoin.incarnation.ser(&mut payload);
        "not-an-addr".to_string().ser(&mut payload);
        rejoin.summary.ser(&mut payload);
        let wire = payload.len();
        let frame = frame_bytes(payload, wire);
        match decode_frame(&frame.bytes) {
            Err(WireError::Payload(e)) => assert!(e.contains("rejoin address"), "{e}"),
            other => panic!("expected payload error, got {other:?}"),
        }
    }

    #[test]
    fn announce_of_invalid_instance_is_rejected_on_decode() {
        // Corrupt instance (empty clause) hand-encoded past the
        // constructor's asserts: the decoder must refuse it.
        let mut m = ftbb_bnb::MaxSatInstance::generate(4, 8, 1);
        m.clauses[0].literals.clear();
        let frame = encode_announce(0, 0, JobId::DEFAULT, &ftbb_bnb::AnyInstance::MaxSat(m));
        match decode_frame(&frame.bytes) {
            Err(WireError::Payload(e)) => assert!(e.contains("invalid announced instance"), "{e}"),
            other => panic!("expected payload error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_payload_kind_is_rejected() {
        let frame = frame_bytes(vec![0x7F, 0, 0, 0, 0], 5);
        match decode_frame(&frame.bytes) {
            Err(WireError::Payload(e)) => assert!(e.contains("payload kind"), "{e}"),
            other => panic!("expected payload error, got {other:?}"),
        }
    }

    #[test]
    fn split_reads_reassemble() {
        let frame = encode_frame(&sample(), 0, 0, &[]);
        let mut dec = FrameDecoder::new();
        for chunk in frame.bytes.chunks(3) {
            dec.push(chunk);
        }
        let env = dec.try_next().unwrap().unwrap().into_envelope().unwrap();
        assert_eq!(env.msg, sample().msg);
        assert_eq!(dec.try_next().unwrap(), None);
    }

    #[test]
    fn coalesced_frames_split_apart() {
        let mut stream = Vec::new();
        for i in 0..5u32 {
            stream.extend_from_slice(
                &encode_frame(
                    &Envelope {
                        job: JobId(i as u64),
                        from: i,
                        msg: Msg::WorkDeny {
                            incumbent: i as f64,
                        },
                    },
                    0,
                    0,
                    &[],
                )
                .bytes,
            );
        }
        let mut dec = FrameDecoder::new();
        dec.push(&stream);
        for i in 0..5u32 {
            let env = dec.try_next().unwrap().unwrap().into_envelope().unwrap();
            assert_eq!(env.from, i);
        }
        assert_eq!(dec.try_next().unwrap(), None);
        assert_eq!(dec.frames_decoded, 5);
        assert_eq!(dec.bytes_decoded as usize, stream.len());
    }

    #[test]
    fn corruption_is_an_error_not_a_panic() {
        let frame = encode_frame(&sample(), 1, 2, &[]).bytes.to_vec();
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0xA5;
            let mut dec = FrameDecoder::new();
            dec.push(&bad);
            match dec.try_next() {
                Err(_) => {}
                // A flip inside the length field can make the frame claim
                // more payload than provided: legitimately "need more".
                Ok(None) => assert!((6..10).contains(&i), "byte {i} silently pended"),
                Ok(Some(WireFrame::Protocol {
                    env,
                    from_incarnation,
                    to_incarnation,
                    ..
                })) => {
                    // Incarnation tags are outside the checksum-protected
                    // message, but inside the checksummed payload — a flip
                    // there must have been caught. If the frame decoded,
                    // everything must be intact (i.e. unreachable).
                    assert!(
                        env == sample() && from_incarnation == 1 && to_incarnation == 2,
                        "corrupt byte {i} decoded to different data"
                    );
                    panic!("corrupt byte {i} decoded successfully");
                }
                Ok(Some(_)) => panic!("corrupt byte {i} decoded successfully"),
            }
        }
    }

    #[test]
    fn oversize_rejected_without_allocation() {
        let mut bytes = Vec::new();
        MAGIC.ser(&mut bytes);
        VERSION.ser(&mut bytes);
        (u32::MAX).ser(&mut bytes);
        0u32.ser(&mut bytes);
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        assert!(matches!(dec.try_next(), Err(WireError::Oversize(_))));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut frame = encode_frame(&sample(), 0, 0, &[]).bytes.to_vec();
        frame[4] = 0xFE;
        frame[5] = 0xFF;
        let mut dec = FrameDecoder::new();
        dec.push(&frame);
        assert!(matches!(
            dec.try_next(),
            Err(WireError::UnsupportedVersion(0xFFFE))
        ));
    }

    #[test]
    fn every_prior_version_is_a_typed_error() {
        // A current frame rebadged with each historical version number:
        // the decoder must refuse it as UnsupportedVersion carrying that
        // exact version — never misparse an old layout as current fields.
        for v in 1u16..VERSION {
            let mut frame = encode_frame(&sample(), 0, 0, &[]).bytes.to_vec();
            frame[4..6].copy_from_slice(&v.to_le_bytes());
            let mut dec = FrameDecoder::new();
            dec.push(&frame);
            assert_eq!(
                dec.try_next(),
                Err(WireError::UnsupportedVersion(v)),
                "version {v}"
            );
        }
    }

    #[test]
    fn garbage_prefix_rejected() {
        let mut dec = FrameDecoder::new();
        dec.push(b"GET / HTTP/1.1\r\n\r\n");
        assert!(matches!(dec.try_next(), Err(WireError::BadMagic(_))));
    }
}
