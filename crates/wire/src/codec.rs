//! The framed wire codec.
//!
//! Every protocol message travels as one *frame*:
//!
//! ```text
//! ┌────────────┬─────────────┬──────────────┬──────────────┬─────────┐
//! │ magic: u32 │ version:u16 │ pay_len: u32 │ checksum:u32 │ payload │
//! └────────────┴─────────────┴──────────────┴──────────────┴─────────┘
//! ```
//!
//! (all little-endian). The payload starts with one *kind* byte:
//! [`PAYLOAD_PROTOCOL`] frames carry the binary serde encoding of
//! `(from, msg)` — the same [`Envelope`] the in-process mesh routes —
//! and [`PAYLOAD_ANNOUNCE`] frames carry `(from, AnyInstance)`, the
//! problem announce a root sends so peers started with `--problem wire`
//! can solve an instance they never had locally. The decoder is
//! **fuzz-resistant**: arbitrary bytes fed to [`FrameDecoder`] produce
//! frames or [`WireError`]s, never panics or unbounded allocations
//! (payload length is bounded by [`MAX_FRAME_PAYLOAD`], the checksum
//! rejects corruption before the payload decoder runs, and decoded
//! instances are re-validated structurally).
//!
//! Per-message size accounting reuses the protocol's own bookkeeping:
//! [`encode_frame`] reports both the *estimated* protocol bytes
//! (`Msg::wire_size`, the quantity the paper's report compression
//! minimizes) and the *actual* encoded bytes, so
//! [`ftbb_core::TransportCounters`] can expose the framing overhead.
//!
//! Delivery is **at most once**: a frame is written to a socket at most
//! one time. The transport's startup retry window
//! ([`crate::tcp::RETRY_WINDOW`]) retries frames that never reached a
//! socket at all (the peer had not yet accepted any connection), so it
//! cannot duplicate — it only narrows the silent-drop window; frames
//! lost *after* a `write` started are never replayed.

use ftbb_bnb::AnyInstance;
use ftbb_core::Msg;
use ftbb_runtime::Envelope;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Frame magic: `"FTWB"` (ftbb wire, binary).
pub const MAGIC: u32 = 0x4654_5742;

/// Codec version; bumped on any payload-format change. Decoders reject
/// frames from other versions rather than guessing. (v2 added the
/// payload kind byte and the problem-announce frame.)
pub const VERSION: u16 = 2;

/// Payload kind byte of a protocol envelope frame.
pub const PAYLOAD_PROTOCOL: u8 = 0;

/// Payload kind byte of a problem-announce frame.
pub const PAYLOAD_ANNOUNCE: u8 = 1;

/// Fixed frame header size in bytes.
pub const HEADER_LEN: usize = 4 + 2 + 4 + 4;

/// Upper bound on a frame payload. Protocol messages are small (a work
/// grant carries tens of codes, each a few dozen bytes); anything larger
/// is corruption or an attack, and is rejected before allocation.
pub const MAX_FRAME_PAYLOAD: usize = 4 << 20;

/// Errors surfaced by the decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// First four bytes were not [`MAGIC`]. The stream is garbage or
    /// desynchronized; the connection should be dropped.
    BadMagic(u32),
    /// Frame from an incompatible codec version.
    BadVersion(u16),
    /// Claimed payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversize(usize),
    /// Payload bytes do not match the header checksum.
    Checksum {
        /// Checksum the header claimed.
        expected: u32,
        /// Checksum of the bytes actually received.
        actual: u32,
    },
    /// Checksummed payload failed structural decoding (e.g. invalid
    /// enum tag).
    Payload(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            WireError::BadVersion(v) => write!(f, "unsupported codec version {v}"),
            WireError::Oversize(n) => write!(f, "frame payload of {n} bytes exceeds limit"),
            WireError::Checksum { expected, actual } => {
                write!(
                    f,
                    "payload checksum {actual:#010x} != header {expected:#010x}"
                )
            }
            WireError::Payload(e) => write!(f, "payload decode failed: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a over the payload — cheap corruption detection, not security.
pub fn checksum(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Everything a frame can carry: a routed protocol message, or the
/// workload handshake that precedes the protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum WireFrame {
    /// A routed protocol message (the steady-state traffic).
    Protocol(Envelope),
    /// A problem announce: the sender's materialized workload, shipped
    /// before `Start` so `--problem wire` peers can join a computation
    /// whose instance they never generated.
    Announce {
        /// Announcing node's id.
        from: u32,
        /// The materialized (validated) workload.
        instance: AnyInstance,
    },
}

impl WireFrame {
    /// The protocol envelope, if this is a protocol frame.
    pub fn into_envelope(self) -> Option<Envelope> {
        match self {
            WireFrame::Protocol(env) => Some(env),
            WireFrame::Announce { .. } => None,
        }
    }
}

/// An encoded frame plus its size accounting.
#[derive(Debug, Clone)]
pub struct EncodedFrame {
    /// The full frame (header + payload), ready for the socket.
    pub bytes: Vec<u8>,
    /// The message's own estimate of its protocol size
    /// ([`Msg::wire_size`]), used for paper-faithful accounting.
    pub wire_size: usize,
}

impl EncodedFrame {
    /// Actual encoded length, header included.
    pub fn encoded_len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the payload exceeds [`MAX_FRAME_PAYLOAD`] — receivers
    /// would reject this frame, so it must not be transmitted.
    pub fn exceeds_limit(&self) -> bool {
        self.bytes.len() - HEADER_LEN > MAX_FRAME_PAYLOAD
    }
}

/// Encode one envelope into a frame.
///
/// Frames whose payload exceeds [`MAX_FRAME_PAYLOAD`] are still encoded
/// (the caller owns the policy), but every receiver will reject them as
/// [`WireError::Oversize`] and drop the connection — senders must check
/// [`EncodedFrame::exceeds_limit`] and drop such messages instead of
/// transmitting them (the TCP mesh does, counting them as full-queue
/// drops).
pub fn encode_frame(env: &Envelope) -> EncodedFrame {
    let mut payload = Vec::with_capacity(9 + env.msg.wire_size());
    payload.push(PAYLOAD_PROTOCOL);
    env.from.ser(&mut payload);
    env.msg.ser(&mut payload);
    frame_bytes(payload, env.msg.wire_size())
}

/// Encode a problem-announce frame. The announce is a handshake, not
/// protocol traffic, so its `wire_size` accounting is simply the payload
/// length (there is no protocol-level estimate to compare against).
pub fn encode_announce(from: u32, instance: &AnyInstance) -> EncodedFrame {
    let mut payload = Vec::new();
    payload.push(PAYLOAD_ANNOUNCE);
    from.ser(&mut payload);
    instance.ser(&mut payload);
    let wire = payload.len();
    frame_bytes(payload, wire)
}

/// Wrap a finished payload in the frame header.
fn frame_bytes(payload: Vec<u8>, wire_size: usize) -> EncodedFrame {
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    MAGIC.ser(&mut bytes);
    VERSION.ser(&mut bytes);
    (payload.len() as u32).ser(&mut bytes);
    checksum(&payload).ser(&mut bytes);
    bytes.extend_from_slice(&payload);
    EncodedFrame { bytes, wire_size }
}

/// Decode one complete frame from `data` (exactly one frame's bytes).
/// Mostly useful in tests; streams use [`FrameDecoder`].
pub fn decode_frame(data: &[u8]) -> Result<WireFrame, WireError> {
    let mut dec = FrameDecoder::new();
    dec.push(data);
    match dec.try_next()? {
        Some(frame) if dec.buffered() == 0 => Ok(frame),
        Some(_) => Err(WireError::Payload("trailing bytes after frame".into())),
        None => Err(WireError::Payload("incomplete frame".into())),
    }
}

/// Incremental frame decoder: feed arbitrary byte chunks (as delivered by
/// the socket — frames may arrive split or coalesced), pull decoded
/// frames.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted opportunistically.
    pos: usize,
    /// Frames decoded so far (for accounting/tests).
    pub frames_decoded: u64,
    /// Payload + header bytes consumed by successful decodes.
    pub bytes_decoded: u64,
}

impl FrameDecoder {
    /// Fresh decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed received bytes.
    pub fn push(&mut self, data: &[u8]) {
        // Compact before growing: keeps the buffer bounded by one frame
        // plus one socket read.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Try to decode the next frame. `Ok(None)` means "need more bytes".
    /// After an error the stream is desynchronized; the caller should
    /// drop the connection (this matches the Crash model — a corrupt peer
    /// is indistinguishable from a dead one).
    pub fn try_next(&mut self) -> Result<Option<WireFrame>, WireError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let magic = u32::from_le_bytes(avail[0..4].try_into().expect("sized"));
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = u16::from_le_bytes(avail[4..6].try_into().expect("sized"));
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let pay_len = u32::from_le_bytes(avail[6..10].try_into().expect("sized")) as usize;
        if pay_len > MAX_FRAME_PAYLOAD {
            return Err(WireError::Oversize(pay_len));
        }
        let expected = u32::from_le_bytes(avail[10..14].try_into().expect("sized"));
        if avail.len() < HEADER_LEN + pay_len {
            return Ok(None);
        }
        let payload = &avail[HEADER_LEN..HEADER_LEN + pay_len];
        let actual = checksum(payload);
        if actual != expected {
            return Err(WireError::Checksum { expected, actual });
        }
        let mut r = payload;
        let kind = serde::read_u8(&mut r).map_err(|e| WireError::Payload(e.to_string()))?;
        let frame = match kind {
            PAYLOAD_PROTOCOL => {
                let from = u32::de(&mut r).map_err(|e| WireError::Payload(e.to_string()))?;
                let msg = Msg::de(&mut r).map_err(|e| WireError::Payload(e.to_string()))?;
                WireFrame::Protocol(Envelope { from, msg })
            }
            PAYLOAD_ANNOUNCE => {
                let from = u32::de(&mut r).map_err(|e| WireError::Payload(e.to_string()))?;
                let instance =
                    AnyInstance::de(&mut r).map_err(|e| WireError::Payload(e.to_string()))?;
                // The serde derive decodes structure, not invariants; an
                // instance off the network must also be *valid* before
                // the expander is allowed to trust it.
                instance
                    .validate()
                    .map_err(|e| WireError::Payload(format!("invalid announced instance: {e}")))?;
                WireFrame::Announce { from, instance }
            }
            other => {
                return Err(WireError::Payload(format!(
                    "unknown payload kind byte {other}"
                )));
            }
        };
        if !r.is_empty() {
            return Err(WireError::Payload(format!(
                "{} trailing payload bytes",
                r.len()
            )));
        }
        self.pos += HEADER_LEN + pay_len;
        self.frames_decoded += 1;
        self.bytes_decoded += (HEADER_LEN + pay_len) as u64;
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Envelope {
        Envelope {
            from: 3,
            msg: Msg::WorkRequest { incumbent: 42.5 },
        }
    }

    #[test]
    fn frame_round_trip() {
        let frame = encode_frame(&sample());
        assert_eq!(frame.wire_size, 9);
        assert_eq!(frame.encoded_len(), frame.bytes.len());
        let back = decode_frame(&frame.bytes).unwrap();
        let env = back.into_envelope().expect("protocol frame");
        assert_eq!(env.from, 3);
        assert_eq!(env.msg, sample().msg);
    }

    #[test]
    fn announce_frame_round_trip() {
        let instance = ftbb_bnb::AnyInstance::from(ftbb_bnb::MaxSatInstance::generate(6, 12, 3));
        let frame = encode_announce(7, &instance);
        assert!(!frame.exceeds_limit());
        match decode_frame(&frame.bytes).unwrap() {
            WireFrame::Announce {
                from,
                instance: got,
            } => {
                assert_eq!(from, 7);
                assert_eq!(got, instance);
            }
            other => panic!("expected announce, got {other:?}"),
        }
    }

    #[test]
    fn announce_of_invalid_instance_is_rejected_on_decode() {
        // Corrupt instance (empty clause) hand-encoded past the
        // constructor's asserts: the decoder must refuse it.
        let mut m = ftbb_bnb::MaxSatInstance::generate(4, 8, 1);
        m.clauses[0].literals.clear();
        let frame = encode_announce(0, &ftbb_bnb::AnyInstance::MaxSat(m));
        match decode_frame(&frame.bytes) {
            Err(WireError::Payload(e)) => assert!(e.contains("invalid announced instance"), "{e}"),
            other => panic!("expected payload error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_payload_kind_is_rejected() {
        let frame = frame_bytes(vec![0x7F, 0, 0, 0, 0], 5);
        match decode_frame(&frame.bytes) {
            Err(WireError::Payload(e)) => assert!(e.contains("payload kind"), "{e}"),
            other => panic!("expected payload error, got {other:?}"),
        }
    }

    #[test]
    fn split_reads_reassemble() {
        let frame = encode_frame(&sample());
        let mut dec = FrameDecoder::new();
        for chunk in frame.bytes.chunks(3) {
            dec.push(chunk);
        }
        let env = dec.try_next().unwrap().unwrap().into_envelope().unwrap();
        assert_eq!(env.msg, sample().msg);
        assert_eq!(dec.try_next().unwrap(), None);
    }

    #[test]
    fn coalesced_frames_split_apart() {
        let mut stream = Vec::new();
        for i in 0..5u32 {
            stream.extend_from_slice(
                &encode_frame(&Envelope {
                    from: i,
                    msg: Msg::WorkDeny {
                        incumbent: i as f64,
                    },
                })
                .bytes,
            );
        }
        let mut dec = FrameDecoder::new();
        dec.push(&stream);
        for i in 0..5u32 {
            let env = dec.try_next().unwrap().unwrap().into_envelope().unwrap();
            assert_eq!(env.from, i);
        }
        assert_eq!(dec.try_next().unwrap(), None);
        assert_eq!(dec.frames_decoded, 5);
        assert_eq!(dec.bytes_decoded as usize, stream.len());
    }

    #[test]
    fn corruption_is_an_error_not_a_panic() {
        let frame = encode_frame(&sample()).bytes;
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0xA5;
            let mut dec = FrameDecoder::new();
            dec.push(&bad);
            match dec.try_next() {
                Err(_) => {}
                // A flip inside the length field can make the frame claim
                // more payload than provided: legitimately "need more".
                Ok(None) => assert!((6..10).contains(&i), "byte {i} silently pended"),
                Ok(Some(_)) => panic!("corrupt byte {i} decoded successfully"),
            }
        }
    }

    #[test]
    fn oversize_rejected_without_allocation() {
        let mut bytes = Vec::new();
        MAGIC.ser(&mut bytes);
        VERSION.ser(&mut bytes);
        (u32::MAX).ser(&mut bytes);
        0u32.ser(&mut bytes);
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        assert!(matches!(dec.try_next(), Err(WireError::Oversize(_))));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut frame = encode_frame(&sample()).bytes;
        frame[4] = 0xFE;
        frame[5] = 0xFF;
        let mut dec = FrameDecoder::new();
        dec.push(&frame);
        assert!(matches!(dec.try_next(), Err(WireError::BadVersion(_))));
    }

    #[test]
    fn garbage_prefix_rejected() {
        let mut dec = FrameDecoder::new();
        dec.push(b"GET / HTTP/1.1\r\n\r\n");
        assert!(matches!(dec.try_next(), Err(WireError::BadMagic(_))));
    }
}
