//! Loopback cluster launcher: spawn one `ftbb-noded` OS process per node,
//! SIGKILL a subset mid-run, and collect survivors' outcomes.
//!
//! This is the crate's reason to exist: the paper's fault-tolerance claim
//! exercised against *real* process death. A SIGKILLed node flushes
//! nothing, closes its sockets mid-frame, and leaves its last work grant
//! unreported — exactly the failure the complement-recovery mechanism
//! (§5.3.2) must absorb.

use crate::config::ProblemSpec;
use crate::noded::{parse_outcome_line, ParsedOutcome};
use std::io::Read;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A loopback cluster to launch.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Path to the `ftbb-noded` binary (tests use
    /// `env!("CARGO_BIN_EXE_ftbb-noded")`).
    pub noded: PathBuf,
    /// Number of nodes.
    pub nodes: u32,
    /// Kill plan: `(node, delay from launch)` — delivered as SIGKILL.
    pub kill: Vec<(u32, Duration)>,
    /// Config-driven crash plan: `(node, seconds after its start)` —
    /// passed to the node as `--crash-at-s`, so the process `abort()`s
    /// itself instead of being killed externally.
    pub crash_at: Vec<(u32, f64)>,
    /// The shared problem.
    pub problem: ProblemSpec,
    /// Per-node wall-clock deadline.
    pub deadline: Duration,
    /// Base seed for per-node protocol randomness.
    pub seed: u64,
}

/// What the cluster produced.
#[derive(Debug)]
pub struct ClusterReport {
    /// Outcomes parsed from node stdout, in node-id order. Killed nodes
    /// usually produce none (their entry is `None`).
    pub outcomes: Vec<Option<ParsedOutcome>>,
    /// Ids that died (SIGKILL or config-driven crash) before producing
    /// an outcome.
    pub killed: Vec<u32>,
    /// Best incumbent over terminated survivors.
    pub best: Option<f64>,
    /// Every non-killed node produced an outcome with `terminated=true`.
    pub all_survivors_terminated: bool,
}

/// Launcher errors.
#[derive(Debug)]
pub enum LaunchError {
    /// Spawning or port allocation failed.
    Io(std::io::Error),
    /// A node outlived the launcher's patience.
    Timeout {
        /// The node that did not exit.
        id: u32,
    },
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::Io(e) => write!(f, "launch failed: {e}"),
            LaunchError::Timeout { id } => write!(f, "node {id} did not exit in time"),
        }
    }
}

impl std::error::Error for LaunchError {}

impl From<std::io::Error> for LaunchError {
    fn from(e: std::io::Error) -> Self {
        LaunchError::Io(e)
    }
}

/// Reserve `n` distinct loopback ports. Racy by nature (the listeners are
/// dropped before the children bind), but collisions on a quiet loopback
/// are rare and the caller may simply retry.
fn allocate_ports(n: usize) -> std::io::Result<Vec<u16>> {
    let mut listeners = Vec::with_capacity(n);
    let mut ports = Vec::with_capacity(n);
    for _ in 0..n {
        let l = TcpListener::bind("127.0.0.1:0")?;
        ports.push(l.local_addr()?.port());
        listeners.push(l); // hold all simultaneously so ports are distinct
    }
    Ok(ports)
}

/// Launch the cluster, execute the kill plan, wait for survivors, and
/// aggregate their outcomes.
pub fn launch(spec: &ClusterSpec) -> Result<ClusterReport, LaunchError> {
    assert!(spec.nodes >= 1);
    let n = spec.nodes as usize;
    let ports = allocate_ports(n)?;

    let mut children: Vec<Child> = Vec::with_capacity(n);
    for id in 0..spec.nodes {
        let mut cmd = Command::new(&spec.noded);
        cmd.arg("--id")
            .arg(id.to_string())
            .arg("--listen")
            .arg(format!("127.0.0.1:{}", ports[id as usize]))
            .arg("--deadline-s")
            .arg(format!("{}", spec.deadline.as_secs_f64()))
            .arg("--seed")
            .arg(spec.seed.to_string())
            .arg("--problem-n")
            .arg(spec.problem.n.to_string())
            .arg("--problem-range")
            .arg(spec.problem.range.to_string())
            .arg("--problem-correlation")
            .arg(correlation_name(&spec.problem))
            .arg("--problem-frac")
            .arg(spec.problem.frac.to_string())
            .arg("--problem-seed")
            .arg(spec.problem.seed.to_string());
        for peer in 0..spec.nodes {
            if peer != id {
                cmd.arg("--peer")
                    .arg(format!("{peer}=127.0.0.1:{}", ports[peer as usize]));
            }
        }
        if let Some(&(_, at)) = spec.crash_at.iter().find(|&&(node, _)| node == id) {
            cmd.arg("--crash-at-s").arg(at.to_string());
        }
        cmd.stdout(Stdio::piped()).stderr(Stdio::null());
        match cmd.spawn() {
            Ok(child) => children.push(child),
            Err(e) => {
                // Don't orphan already-spawned nodes on a failed spawn.
                for mut child in children {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                return Err(e.into());
            }
        }
    }
    let start = Instant::now();

    // Any error past this point must reap every spawned process — a
    // launcher error must never leak noded processes (they would run on
    // for up to deadline_s, holding loopback ports).
    let reap_all = |children: &mut dyn Iterator<Item = &mut Child>| {
        for child in children {
            let _ = child.kill();
            let _ = child.wait();
        }
    };

    // Execute the kill plan: real SIGKILL, no cleanup, no flush.
    let mut plan = spec.kill.clone();
    plan.sort_by_key(|&(_, d)| d);
    let mut killed = Vec::new();
    for &(id, delay) in &plan {
        if id >= spec.nodes {
            continue;
        }
        let elapsed = start.elapsed();
        if delay > elapsed {
            std::thread::sleep(delay - elapsed);
        }
        match children[id as usize].try_wait() {
            Ok(Some(_)) => {} // already exited — too late to kill mid-run
            Ok(None) => {
                let _ = children[id as usize].kill(); // SIGKILL on unix
                killed.push(id);
            }
            Err(e) => {
                reap_all(&mut children.iter_mut());
                return Err(e.into());
            }
        }
    }

    // Wait for everything with a global timeout well past the node
    // deadline (nodes self-limit via --deadline-s).
    let patience = spec.deadline + Duration::from_secs(30);
    let mut outcomes: Vec<Option<ParsedOutcome>> = (0..n).map(|_| None).collect();
    let mut pending: std::collections::VecDeque<(usize, Child)> =
        children.into_iter().enumerate().collect();
    while let Some((id, mut child)) = pending.pop_front() {
        loop {
            match child.try_wait() {
                Ok(Some(_)) => break,
                Err(e) => {
                    reap_all(
                        &mut std::iter::once(&mut child).chain(pending.iter_mut().map(|(_, c)| c)),
                    );
                    return Err(e.into());
                }
                Ok(None) if start.elapsed() > patience => {
                    reap_all(
                        &mut std::iter::once(&mut child).chain(pending.iter_mut().map(|(_, c)| c)),
                    );
                    return Err(LaunchError::Timeout { id: id as u32 });
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        let mut stdout = String::new();
        if let Some(mut out) = child.stdout.take() {
            let _ = out.read_to_string(&mut stdout);
        }
        outcomes[id] = stdout.lines().find_map(parse_outcome_line);
    }

    // A node SIGKILLed (or config-crashed) after finishing still counts
    // as a survivor if its outcome line made it out.
    let mut effective_killed: Vec<u32> = killed
        .iter()
        .copied()
        .chain(spec.crash_at.iter().map(|&(id, _)| id))
        .filter(|&id| id < spec.nodes && outcomes[id as usize].is_none())
        .collect();
    effective_killed.sort_unstable();
    effective_killed.dedup();
    let all_survivors_terminated = (0..spec.nodes)
        .filter(|id| !effective_killed.contains(id))
        .all(|id| {
            outcomes[id as usize]
                .as_ref()
                .map(|o| o.terminated)
                .unwrap_or(false)
        });
    let best = outcomes
        .iter()
        .flatten()
        .filter(|o| o.terminated)
        .map(|o| o.incumbent)
        .fold(f64::INFINITY, f64::min);

    Ok(ClusterReport {
        outcomes,
        killed: effective_killed,
        best: best.is_finite().then_some(best),
        all_survivors_terminated,
    })
}

fn correlation_name(problem: &ProblemSpec) -> &'static str {
    use ftbb_bnb::Correlation;
    match problem.correlation {
        Correlation::Uncorrelated => "uncorrelated",
        Correlation::Weak => "weak",
        Correlation::Strong => "strong",
        Correlation::SubsetSum => "subsetsum",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_distinct_ports() {
        let ports = allocate_ports(16).unwrap();
        let mut unique = ports.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 16);
    }
}
