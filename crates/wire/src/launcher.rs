//! Loopback cluster launcher: spawn one `ftbb-noded` OS process per node,
//! SIGKILL a subset mid-run, and collect survivors' outcomes.
//!
//! This is the crate's reason to exist: the paper's fault-tolerance claim
//! exercised against *real* process death. A SIGKILLed node flushes
//! nothing, closes its sockets mid-frame, and leaves its last work grant
//! unreported — exactly the failure the complement-recovery mechanism
//! (§5.3.2) must absorb.
//!
//! Wiring is race-free: every node is spawned with `--listen 127.0.0.1:0
//! --peers-from-stdin`, binds its own port, and announces it on a
//! machine-parseable `FTBB-READY` line; the launcher collects the lines
//! and writes the full peer map back over each node's stdin. No port is
//! ever reserved-then-released (the old `allocate_ports` race), and the
//! kill-plan clock starts only once every node has been wired.

use crate::config::ProblemSpec;
use crate::noded::{parse_outcome_line, parse_ready_line, ParsedOutcome};
use crossbeam::channel::{unbounded, Receiver};
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::time::{Duration, Instant};

/// A loopback cluster to launch.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Path to the `ftbb-noded` binary (tests use
    /// `env!("CARGO_BIN_EXE_ftbb-noded")`).
    pub noded: PathBuf,
    /// Number of nodes.
    pub nodes: u32,
    /// Kill plan: `(node, delay from wiring completion)` — delivered as
    /// SIGKILL once every node has its peer map.
    pub kill: Vec<(u32, Duration)>,
    /// Config-driven crash plan: `(node, seconds after its start)` —
    /// passed to the node as `--crash-at-s`, so the process `abort()`s
    /// itself instead of being killed externally.
    pub crash_at: Vec<(u32, f64)>,
    /// The shared problem (any kind — the launcher renders it as the
    /// matching `--problem*` flags).
    pub problem: ProblemSpec,
    /// Ship the problem over the wire: only node 0 gets the problem
    /// flags; every other node is started with `--problem wire` and
    /// learns the materialized instance from node 0's announce frame —
    /// peers solve a workload they never had locally.
    pub wire_peers: bool,
    /// Per-node wall-clock deadline.
    pub deadline: Duration,
    /// Base seed for per-node protocol randomness.
    pub seed: u64,
}

/// What the cluster produced.
#[derive(Debug)]
pub struct ClusterReport {
    /// Outcomes parsed from node stdout, in node-id order. Killed nodes
    /// usually produce none (their entry is `None`).
    pub outcomes: Vec<Option<ParsedOutcome>>,
    /// Ids that died (SIGKILL or config-driven crash) before producing
    /// an outcome.
    pub killed: Vec<u32>,
    /// Best incumbent over terminated survivors.
    pub best: Option<f64>,
    /// Every non-killed node produced an outcome with `terminated=true`.
    pub all_survivors_terminated: bool,
}

impl ClusterReport {
    /// Total subproblems expanded across all reporting nodes.
    pub fn total_expanded(&self) -> u64 {
        self.outcomes.iter().flatten().map(|o| o.expanded).sum()
    }

    /// The largest single-node share of the cluster's expansions, in
    /// `0.0..=1.0` (0 when nothing was expanded). The skew regression
    /// asserts this stays below ~0.9 on a no-failure cluster: before
    /// connection pre-establishment the root routinely expanded nearly
    /// the whole tree alone while its startup grants were dropped.
    pub fn max_expansion_share(&self) -> f64 {
        let total = self.total_expanded();
        if total == 0 {
            return 0.0;
        }
        let max = self
            .outcomes
            .iter()
            .flatten()
            .map(|o| o.expanded)
            .max()
            .unwrap_or(0);
        max as f64 / total as f64
    }

    /// One line per reporting node with its expansion count and share —
    /// printed by [`launch`] so work skew is visible in CI logs.
    pub fn skew_summary(&self) -> String {
        let total = self.total_expanded();
        let mut out = String::new();
        for o in self.outcomes.iter().flatten() {
            let share = if total == 0 {
                0.0
            } else {
                o.expanded as f64 * 100.0 / total as f64
            };
            out.push_str(&format!(
                "launcher: node {} expanded={} ({share:.1}% of {total})\n",
                o.id, o.expanded
            ));
        }
        out
    }
}

/// Launcher errors.
#[derive(Debug)]
pub enum LaunchError {
    /// Spawning or wiring failed.
    Io(std::io::Error),
    /// A node did not print its `FTBB-READY` line in time.
    NotReady {
        /// The node that stayed silent.
        id: u32,
    },
    /// A node outlived the launcher's patience.
    Timeout {
        /// The node that did not exit.
        id: u32,
    },
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::Io(e) => write!(f, "launch failed: {e}"),
            LaunchError::NotReady { id } => write!(f, "node {id} never reported ready"),
            LaunchError::Timeout { id } => write!(f, "node {id} did not exit in time"),
        }
    }
}

impl std::error::Error for LaunchError {}

impl From<std::io::Error> for LaunchError {
    fn from(e: std::io::Error) -> Self {
        LaunchError::Io(e)
    }
}

/// How long the launcher waits for every node's `FTBB-READY` line.
const READY_PATIENCE: Duration = Duration::from_secs(20);

/// One spawned node and the stream of its stdout lines.
struct Spawned {
    child: Child,
    stdin: Option<ChildStdin>,
    lines: Receiver<String>,
    addr: Option<SocketAddr>,
}

/// Launch the cluster, wire it over stdin, execute the kill plan, wait
/// for survivors, and aggregate their outcomes.
pub fn launch(spec: &ClusterSpec) -> Result<ClusterReport, LaunchError> {
    assert!(spec.nodes >= 1);
    let n = spec.nodes as usize;

    let mut nodes: Vec<Spawned> = Vec::with_capacity(n);
    let reap_all = |nodes: &mut Vec<Spawned>| {
        for node in nodes.iter_mut() {
            let _ = node.child.kill();
            let _ = node.child.wait();
        }
    };

    for id in 0..spec.nodes {
        let mut cmd = Command::new(&spec.noded);
        cmd.arg("--id")
            .arg(id.to_string())
            .arg("--listen")
            .arg("127.0.0.1:0")
            .arg("--peers-from-stdin")
            .arg("--deadline-s")
            .arg(format!("{}", spec.deadline.as_secs_f64()))
            .arg("--seed")
            .arg(spec.seed.to_string());
        if spec.wire_peers && id != 0 {
            cmd.arg("--problem").arg("wire");
        } else {
            cmd.args(spec.problem.flag_args());
        }
        if let Some(&(_, at)) = spec.crash_at.iter().find(|&&(node, _)| node == id) {
            cmd.arg("--crash-at-s").arg(at.to_string());
        }
        cmd.stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        match cmd.spawn() {
            Ok(mut child) => {
                let stdin = child.stdin.take();
                let stdout = child.stdout.take().expect("stdout piped");
                // One reader thread per node: its stdout lines flow into
                // a channel the launcher drains (ready line now, outcome
                // line after exit). The thread ends at EOF.
                let (tx, rx) = unbounded();
                std::thread::spawn(move || {
                    for line in BufReader::new(stdout).lines() {
                        let Ok(line) = line else { break };
                        if tx.send(line).is_err() {
                            break;
                        }
                    }
                });
                nodes.push(Spawned {
                    child,
                    stdin,
                    lines: rx,
                    addr: None,
                });
            }
            Err(e) => {
                // Don't orphan already-spawned nodes on a failed spawn.
                reap_all(&mut nodes);
                return Err(e.into());
            }
        }
    }

    // Collect every node's FTBB-READY line (each binds independently, so
    // sequential waits are fine — patience is per node).
    for id in 0..n {
        let deadline = Instant::now() + READY_PATIENCE;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match nodes[id].lines.recv_timeout(remaining) {
                Ok(line) => {
                    if let Some((_, addr)) = parse_ready_line(&line) {
                        nodes[id].addr = Some(addr);
                        break;
                    }
                }
                Err(_) => {
                    reap_all(&mut nodes);
                    return Err(LaunchError::NotReady { id: id as u32 });
                }
            }
        }
    }

    // Wire the full peer map into every node and release them with
    // `start`. Dropping stdin afterwards closes the pipe cleanly.
    let addrs: Vec<SocketAddr> = nodes.iter().map(|s| s.addr.expect("collected")).collect();
    for id in 0..n {
        let mut stdin = nodes[id].stdin.take().expect("stdin piped");
        let mut wiring = String::new();
        for (peer, addr) in addrs.iter().enumerate() {
            if peer != id {
                wiring.push_str(&format!("peer {peer}={addr}\n"));
            }
        }
        wiring.push_str("start\n");
        if let Err(e) = stdin.write_all(wiring.as_bytes()) {
            reap_all(&mut nodes);
            return Err(e.into());
        }
    }
    let start = Instant::now();

    // Execute the kill plan: real SIGKILL, no cleanup, no flush.
    let mut plan = spec.kill.clone();
    plan.sort_by_key(|&(_, d)| d);
    let mut killed = Vec::new();
    for &(id, delay) in &plan {
        if id >= spec.nodes {
            continue;
        }
        let elapsed = start.elapsed();
        if delay > elapsed {
            std::thread::sleep(delay - elapsed);
        }
        match nodes[id as usize].child.try_wait() {
            Ok(Some(_)) => {} // already exited — too late to kill mid-run
            Ok(None) => {
                let _ = nodes[id as usize].child.kill(); // SIGKILL on unix
                killed.push(id);
            }
            Err(e) => {
                reap_all(&mut nodes);
                return Err(e.into());
            }
        }
    }

    // Wait for everything with a global timeout well past the node
    // deadline (nodes self-limit via --deadline-s).
    let patience = spec.deadline + Duration::from_secs(30);
    let mut outcomes: Vec<Option<ParsedOutcome>> = (0..n).map(|_| None).collect();
    for id in 0..n {
        loop {
            match nodes[id].child.try_wait() {
                Ok(Some(_)) => break,
                Err(e) => {
                    reap_all(&mut nodes);
                    return Err(e.into());
                }
                Ok(None) if start.elapsed() > patience => {
                    reap_all(&mut nodes);
                    return Err(LaunchError::Timeout { id: id as u32 });
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        // The node exited, so its reader thread sees EOF and drops the
        // sender; a blocking drain terminates promptly.
        outcomes[id] = nodes[id].lines.iter().find_map(|l| parse_outcome_line(&l));
    }

    // A node SIGKILLed (or config-crashed) after finishing still counts
    // as a survivor if its outcome line made it out.
    let mut effective_killed: Vec<u32> = killed
        .iter()
        .copied()
        .chain(spec.crash_at.iter().map(|&(id, _)| id))
        .filter(|&id| id < spec.nodes && outcomes[id as usize].is_none())
        .collect();
    effective_killed.sort_unstable();
    effective_killed.dedup();
    let all_survivors_terminated = (0..spec.nodes)
        .filter(|id| !effective_killed.contains(id))
        .all(|id| {
            outcomes[id as usize]
                .as_ref()
                .map(|o| o.terminated)
                .unwrap_or(false)
        });
    let best = outcomes
        .iter()
        .flatten()
        .filter(|o| o.terminated)
        .map(|o| o.incumbent)
        .fold(f64::INFINITY, f64::min);

    let report = ClusterReport {
        outcomes,
        killed: effective_killed,
        best: best.is_finite().then_some(best),
        all_survivors_terminated,
    };
    // Per-node expansion counts on stderr, so work skew is visible in CI
    // logs (the multiprocess tests run with --nocapture there).
    eprint!("{}", report.skew_summary());
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbb_core::TransportStats;

    fn outcome(id: u32, expanded: u64) -> ParsedOutcome {
        ParsedOutcome {
            id,
            terminated: true,
            incumbent: -1.0,
            expanded,
            recoveries: 0,
            transport: TransportStats::default(),
        }
    }

    #[test]
    fn expansion_share_and_summary() {
        let report = ClusterReport {
            outcomes: vec![Some(outcome(0, 75)), None, Some(outcome(2, 25))],
            killed: vec![1],
            best: Some(-1.0),
            all_survivors_terminated: true,
        };
        assert_eq!(report.total_expanded(), 100);
        assert!((report.max_expansion_share() - 0.75).abs() < 1e-12);
        let summary = report.skew_summary();
        assert!(summary.contains("node 0 expanded=75 (75.0% of 100)"));
        assert!(summary.contains("node 2 expanded=25 (25.0% of 100)"));

        let empty = ClusterReport {
            outcomes: vec![None],
            killed: vec![0],
            best: None,
            all_survivors_terminated: true,
        };
        assert_eq!(empty.max_expansion_share(), 0.0);
    }
}
