//! Loopback cluster launcher: spawn one `ftbb-noded` OS process per node,
//! execute a **lifecycle plan** (SIGKILLs and checkpoint restarts)
//! mid-run, and collect the outcomes.
//!
//! This is the crate's reason to exist: the paper's fault-tolerance claim
//! exercised against *real* process death. A SIGKILLed node flushes
//! nothing, closes its sockets mid-frame, and leaves its last work grant
//! unreported — exactly the failure the complement-recovery mechanism
//! (§5.3.2) must absorb. The lifecycle plan adds the paper's target
//! environment's other half — nodes *returning*: a killed node can be
//! restarted from its checkpoint (`--resume`), rejoin the live cluster
//! under a new incarnation, and contribute expansions again.
//!
//! Wiring is race-free: every node is spawned with `--listen 127.0.0.1:0
//! --peers-from-stdin`, binds its own port, and announces it on a
//! machine-parseable `FTBB-READY` line; the launcher collects the lines
//! and writes the full peer map back over each node's stdin. No port is
//! ever reserved-then-released (the old `allocate_ports` race), and the
//! lifecycle clock starts only once every node has been wired. Restarts
//! rebind the node's *original* address (its peers keep their rosters),
//! and hold the `start` release for [`REJOIN_SETTLE`] — the rebound
//! listener sits silent, like a slow workstation coming back, while
//! peers' traffic addressed to the previous incarnation lands and is
//! counted off as stale.

use crate::config::ProblemSpec;
use crate::noded::{
    parse_job_line, parse_metrics_line, parse_outcome_line, parse_ready_line, parse_service_line,
    ParsedJob, ParsedMetrics, ParsedOutcome, ParsedService,
};
use crate::submit::{submit_job, SubmitOutcome};
use crossbeam::channel::{unbounded, Receiver};
use ftbb_core::{JobId, TraceEvent};
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// One step of a cluster's lifecycle plan, timed from wiring completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleEvent {
    /// SIGKILL the node: no cleanup, no flush, sockets die mid-frame.
    Kill {
        /// The node to kill.
        node: u32,
        /// Delay from wiring completion.
        at: Duration,
    },
    /// Restart a previously killed node from its checkpoint
    /// (`--resume`): it rebinds its original address, restores
    /// `node-<id>.ckpt`, and rejoins under the next incarnation.
    /// Requires [`ClusterSpec::checkpoint_dir`].
    Restart {
        /// The node to restart.
        node: u32,
        /// Delay from wiring completion.
        at: Duration,
    },
    /// Spawn a brand-new node mid-run that was never part of any peer
    /// wiring: it starts with `--join --gossip-servers 0=<addr0>` and
    /// enters the live cluster through the elastic-join handshake.
    /// Requires [`ClusterSpec::gossip`]; `node` must be the next unused
    /// id (`nodes + number of prior joins`).
    Join {
        /// The id the joining node takes.
        node: u32,
        /// Delay from wiring completion.
        at: Duration,
    },
}

impl LifecycleEvent {
    /// A kill step.
    pub fn kill(node: u32, at: Duration) -> LifecycleEvent {
        LifecycleEvent::Kill { node, at }
    }

    /// A restart-from-checkpoint step.
    pub fn restart(node: u32, at: Duration) -> LifecycleEvent {
        LifecycleEvent::Restart { node, at }
    }

    /// An elastic-join step (a brand-new node enters mid-run).
    pub fn join(node: u32, at: Duration) -> LifecycleEvent {
        LifecycleEvent::Join { node, at }
    }

    fn at(&self) -> Duration {
        match *self {
            LifecycleEvent::Kill { at, .. }
            | LifecycleEvent::Restart { at, .. }
            | LifecycleEvent::Join { at, .. } => at,
        }
    }
}

/// Membership timing for a gossip-mode cluster (`ClusterSpec::gossip`).
/// Node 0 acts as the gossip server; every node gets these knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GossipTiming {
    /// Heartbeat gossip tick interval, seconds.
    pub interval_s: f64,
    /// Silence before suspicion (`t_fail`), seconds.
    pub suspect_s: f64,
    /// Suspicion before cleanup (`t_cleanup`), seconds.
    pub forget_s: f64,
}

impl Default for GossipTiming {
    /// The daemon's own defaults ([`crate::NodeConfig::default`]) — one
    /// source, so launcher-driven clusters and hand-started nodes cannot
    /// drift apart.
    fn default() -> Self {
        let d = crate::config::NodeConfig::default();
        GossipTiming {
            interval_s: d.gossip_interval_s,
            suspect_s: d.suspect_after_s,
            forget_s: d.forget_after_s,
        }
    }
}

/// One step of a service cluster's **job stream**: submit `problem` as
/// job `job` to pool node `to` at `at` (timed from wiring completion,
/// same clock as the lifecycle plan — so kills, restarts, and
/// submissions interleave on one timeline). Requires
/// [`ClusterSpec::service`].
#[derive(Debug, Clone)]
pub struct JobStep {
    /// The job id (positive; 0 is reserved for single-run nodes).
    pub job: u64,
    /// Delay from wiring completion.
    pub at: Duration,
    /// The pool node to submit through (the job's gateway).
    pub to: u32,
    /// The problem to submit (materialized client-side and shipped as a
    /// `SubmitJob` frame; `ProblemSpec::Wire` is meaningless here).
    pub problem: ProblemSpec,
    /// How long the submitting client waits for the final result.
    pub timeout: Duration,
}

impl JobStep {
    /// A submission step with the default 60 s client timeout.
    pub fn submit(job: u64, at: Duration, to: u32, problem: ProblemSpec) -> JobStep {
        JobStep {
            job,
            at,
            to,
            problem,
            timeout: Duration::from_secs(60),
        }
    }
}

/// What one job-stream submission produced, from the client's vantage.
#[derive(Debug)]
pub struct JobReport {
    /// The job id.
    pub job: u64,
    /// The pool node it was submitted through.
    pub to: u32,
    /// The streamed outcome, or the client-side error (connection
    /// refused, timeout, corrupt stream) as text.
    pub result: Result<SubmitOutcome, String>,
}

/// How long a restarted node's bound-but-silent listener lingers before
/// the launcher releases it with `start`: the settle window in which
/// peers' traffic tagged for the previous incarnation piles into the
/// backlog and is then counted off as stale — the slow-rejoining
/// workstation of the paper's adaptive-pool environment, made
/// reproducible.
pub const REJOIN_SETTLE: Duration = Duration::from_millis(300);

/// A loopback cluster to launch.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Path to the `ftbb-noded` binary (tests use
    /// `env!("CARGO_BIN_EXE_ftbb-noded")`).
    pub noded: PathBuf,
    /// Number of nodes.
    pub nodes: u32,
    /// Lifecycle plan: kills and checkpoint restarts, executed in time
    /// order once every node has its peer map.
    pub lifecycle: Vec<LifecycleEvent>,
    /// Config-driven crash plan: `(node, seconds after its start)` —
    /// passed to the node as `--crash-at-s`, so the process `abort()`s
    /// itself instead of being killed externally.
    pub crash_at: Vec<(u32, f64)>,
    /// The shared problem (any kind — the launcher renders it as the
    /// matching `--problem*` flags).
    pub problem: ProblemSpec,
    /// Ship the problem over the wire: only node 0 gets the problem
    /// flags; every other node is started with `--problem wire` and
    /// learns the materialized instance from node 0's announce frame —
    /// peers solve a workload they never had locally.
    pub wire_peers: bool,
    /// Service mode: every node is started with `--service` (a long-lived
    /// multi-job pool; `problem` is ignored) and the [`ClusterSpec::jobs`]
    /// stream is submitted over TCP by launcher-side `ftbb-submit`
    /// clients. Per-job results land in [`ClusterReport::jobs`], per-node
    /// `FTBB-JOB` lines in [`ClusterReport::job_lines`], and the closing
    /// `FTBB-SERVICE` summaries in [`ClusterReport::services`].
    pub service: bool,
    /// The job stream for a service cluster, each step timed from wiring
    /// completion on the same clock as the lifecycle plan.
    pub jobs: Vec<JobStep>,
    /// Membership mode: when set, every node runs the gossip protocol
    /// with node 0 as the gossip server (`--gossip-servers 0` plus these
    /// timing knobs), and the lifecycle plan may contain `Join` steps —
    /// brand-new nodes entering mid-run through node 0's address.
    pub gossip: Option<GossipTiming>,
    /// Checkpoint directory passed to every node (`--checkpoint-dir`);
    /// required for `Restart` lifecycle steps.
    pub checkpoint_dir: Option<PathBuf>,
    /// Snapshot cadence in seconds (`--checkpoint-every-s`), used when
    /// `checkpoint_dir` is set.
    pub checkpoint_every_s: f64,
    /// Telemetry directory: when set, every node writes its structured
    /// trace to `<dir>/node-<id>.jsonl` (`--trace-file`; restarts append
    /// to the same file), and after the run the launcher merges all
    /// traces — plus its own kill/restart/join actions — into the
    /// cluster-wide [`ClusterReport::timeline`].
    pub trace_dir: Option<PathBuf>,
    /// Metrics cadence in seconds (`--metrics-every-s`): when set, every
    /// node prints interval `FTBB-METRICS` snapshots which the launcher
    /// collects into [`ClusterReport::metrics`].
    pub metrics_every_s: Option<f64>,
    /// Per-node wall-clock deadline.
    pub deadline: Duration,
    /// Base seed for per-node protocol randomness.
    pub seed: u64,
    /// Expansion workers per node (`--workers`): 1 expands inline on the
    /// protocol thread; more offload expansions to a work-stealing pool.
    /// The optimum is identical either way.
    pub workers: usize,
}

/// What the cluster produced.
#[derive(Debug)]
pub struct ClusterReport {
    /// Outcomes parsed from node stdout, in node-id order — from a
    /// node's *latest* incarnation when it was restarted. Killed nodes
    /// that never came back produce none (their entry is `None`).
    /// Elastic joiners (`LifecycleEvent::Join`) take the ids after
    /// `nodes` and appear here too.
    pub outcomes: Vec<Option<ParsedOutcome>>,
    /// Ids that died (SIGKILL or config-driven crash) and never produced
    /// an outcome afterwards.
    pub killed: Vec<u32>,
    /// Best incumbent over terminated survivors.
    pub best: Option<f64>,
    /// Every non-killed node produced an outcome with `terminated=true`.
    pub all_survivors_terminated: bool,
    /// Interval `FTBB-METRICS` snapshots per node id, in emission order
    /// (empty unless [`ClusterSpec::metrics_every_s`] was set). A
    /// restarted node's series spans both lives; the `incarnation` field
    /// of each snapshot tells them apart.
    pub metrics: Vec<Vec<ParsedMetrics>>,
    /// The cluster-wide event timeline: every node's structured trace
    /// (read from [`ClusterSpec::trace_dir`]) merged with the launcher's
    /// own lifecycle actions (`kill`/`restart`/`join`, and in service
    /// mode `submit`, tagged `source=launcher`), ordered by the shared
    /// unix-microsecond timestamp — so job lifecycles (`job_submitted`,
    /// `job_announced`, `job_restored`) interleave with the membership
    /// events around them. Empty unless `trace_dir` was set.
    pub timeline: Vec<TraceEvent>,
    /// Per-job client-side results, in [`ClusterSpec::jobs`] order
    /// (empty outside service mode).
    pub jobs: Vec<JobReport>,
    /// `FTBB-JOB` completion lines per node id, in emission order: what
    /// each pool node locally concluded about each job it hosted (empty
    /// outside service mode).
    pub job_lines: Vec<Vec<ParsedJob>>,
    /// The closing `FTBB-SERVICE` summary per node id — `None` for
    /// killed-and-gone nodes (empty outside service mode).
    pub services: Vec<Option<ParsedService>>,
}

impl ClusterReport {
    /// Total subproblems expanded across all reporting nodes.
    pub fn total_expanded(&self) -> u64 {
        self.outcomes.iter().flatten().map(|o| o.expanded).sum()
    }

    /// The largest single-node share of the cluster's expansions, in
    /// `0.0..=1.0` (0 when nothing was expanded). The skew regression
    /// asserts this stays below ~0.9 on a no-failure cluster: before
    /// connection pre-establishment the root routinely expanded nearly
    /// the whole tree alone while its startup grants were dropped.
    pub fn max_expansion_share(&self) -> f64 {
        let total = self.total_expanded();
        if total == 0 {
            return 0.0;
        }
        let max = self
            .outcomes
            .iter()
            .flatten()
            .map(|o| o.expanded)
            .max()
            .unwrap_or(0);
        max as f64 / total as f64
    }

    /// One line per reporting node with its incarnation, expansion count
    /// and share — printed by [`launch`] so work skew *and* a rejoined
    /// incarnation's contribution are visible in CI logs. (Expansions
    /// are per-incarnation: a restarted node reports only what its new
    /// life expanded; whatever its killed life did rides in the
    /// checkpointed table, not in any count.)
    pub fn skew_summary(&self) -> String {
        let total = self.total_expanded();
        let mut out = String::new();
        for o in self.outcomes.iter().flatten() {
            let share = if total == 0 {
                0.0
            } else {
                o.expanded as f64 * 100.0 / total as f64
            };
            out.push_str(&format!(
                "launcher: node {} inc={} expanded={} ({share:.1}% of {total})\n",
                o.id, o.incarnation, o.expanded
            ));
        }
        out
    }

    /// One line per job-stream submission with its gateway and result —
    /// printed by [`launch`] in service mode so per-job progress is
    /// visible in CI logs.
    pub fn job_summary(&self) -> String {
        let mut out = String::new();
        for j in &self.jobs {
            match &j.result {
                Ok(o) => out.push_str(&format!(
                    "launcher: job {} via node {} accepted_by={} finished={} \
                     incumbent={} expanded={} incumbents_streamed={}\n",
                    j.job,
                    j.to,
                    o.accepted_by,
                    o.finished,
                    o.incumbent,
                    o.expanded,
                    o.incumbents.len()
                )),
                Err(e) => out.push_str(&format!(
                    "launcher: job {} via node {} FAILED: {e}\n",
                    j.job, j.to
                )),
            }
        }
        out
    }

    /// The human-readable telemetry digest: the merged cluster timeline
    /// (timestamps relative to its first event) followed by the per-node
    /// Figure-3 time-accounting table taken from each node's last
    /// `FTBB-METRICS` snapshot. Empty when the cluster ran without
    /// telemetry.
    pub fn cluster_report(&self) -> String {
        let mut out = String::new();
        if !self.timeline.is_empty() {
            let t0 = self.timeline[0].t_us;
            out.push_str(&format!(
                "cluster timeline ({} events):\n",
                self.timeline.len()
            ));
            for e in &self.timeline {
                let dt = e.t_us.saturating_sub(t0) as f64 / 1e6;
                out.push_str(&format!(
                    "  +{dt:8.3}s node {} inc={} {}",
                    e.node, e.incarnation, e.kind
                ));
                if e.job != 0 {
                    out.push_str(&format!(" job={}", e.job));
                }
                for (k, v) in &e.fields {
                    out.push_str(&format!(" {k}={v}"));
                }
                out.push('\n');
            }
        }
        let last: Vec<&ParsedMetrics> = self
            .metrics
            .iter()
            .filter_map(|series| series.last())
            .collect();
        if !last.is_empty() {
            out.push_str(
                "figure-3 time accounting (seconds, from each node's last FTBB-METRICS):\n",
            );
            out.push_str(
                "  node inc  elapsed   expand    comm contract  loadbal   member \
                 idle     ckpt      sum\n",
            );
            for m in last {
                let p = &m.phase;
                out.push_str(&format!(
                    "  {:>4} {:>3} {:>8.3} {:>8.3} {:>7.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} \
                     {:>8.3} {:>8.3}\n",
                    m.id,
                    m.incarnation,
                    m.elapsed_s,
                    p.expand_s,
                    p.communicate_s,
                    p.contract_s,
                    p.load_balance_s,
                    p.membership_s,
                    p.idle_s,
                    p.checkpoint_s,
                    p.total()
                ));
            }
        }
        out
    }
}

/// A launcher lifecycle action as a timeline event, stamped with the same
/// unix-microsecond clock the nodes' traces use, so kills and restarts
/// interleave correctly with the suspicions and recoveries they cause.
fn launcher_event(kind: &str, node: u32) -> TraceEvent {
    launcher_job_event(kind, node, 0)
}

/// A launcher action on a specific job (`submit` steps); `job == 0`
/// means a pool-level action.
fn launcher_job_event(kind: &str, node: u32, job: u64) -> TraceEvent {
    let t_us = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    TraceEvent {
        t_us,
        node,
        incarnation: 0,
        job,
        kind: kind.to_string(),
        fields: vec![("source".to_string(), "launcher".to_string())],
    }
}

/// Launcher errors.
#[derive(Debug)]
pub enum LaunchError {
    /// Spawning or wiring failed.
    Io(std::io::Error),
    /// A node did not print its `FTBB-READY` line in time.
    NotReady {
        /// The node that stayed silent.
        id: u32,
    },
    /// A node outlived the launcher's patience.
    Timeout {
        /// The node that did not exit.
        id: u32,
    },
    /// The lifecycle plan is inconsistent (restart without a checkpoint
    /// directory, restart of a node that was never killed, …).
    BadPlan(String),
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::Io(e) => write!(f, "launch failed: {e}"),
            LaunchError::NotReady { id } => write!(f, "node {id} never reported ready"),
            LaunchError::Timeout { id } => write!(f, "node {id} did not exit in time"),
            LaunchError::BadPlan(e) => write!(f, "bad lifecycle plan: {e}"),
        }
    }
}

impl std::error::Error for LaunchError {}

impl From<std::io::Error> for LaunchError {
    fn from(e: std::io::Error) -> Self {
        LaunchError::Io(e)
    }
}

/// How long the launcher waits for every node's `FTBB-READY` line.
const READY_PATIENCE: Duration = Duration::from_secs(20);

/// One spawned node and the stream of its stdout lines.
struct Spawned {
    child: Child,
    stdin: Option<ChildStdin>,
    lines: Receiver<String>,
    addr: Option<SocketAddr>,
}

/// Spawn one node process and its stdout reader thread. Fresh lives
/// (`listen: None`) bind `127.0.0.1:0` and get their problem flags;
/// resumed lives rebind the first life's address (`listen: Some(..)`)
/// and pass `--resume` instead — their problem binding lives in the
/// checkpoint — with a shortened readiness budget (live peers accept
/// within milliseconds; a permanently dead one must not stall the
/// rejoin for the full fresh-start budget). Joiners
/// (`join_through: Some(server)`) get no wiring at all: only
/// `--join --gossip-servers 0=<server>` plus the concrete problem spec.
fn spawn_node(
    spec: &ClusterSpec,
    id: u32,
    listen: Option<SocketAddr>,
    join_through: Option<SocketAddr>,
) -> std::io::Result<Spawned> {
    let resume = listen.is_some();
    let joiner = join_through.is_some();
    let mut cmd = Command::new(&spec.noded);
    cmd.arg("--id")
        .arg(id.to_string())
        .arg("--listen")
        .arg(listen.map_or("127.0.0.1:0".to_string(), |a| a.to_string()))
        .arg("--deadline-s")
        .arg(format!("{}", spec.deadline.as_secs_f64()))
        .arg("--seed")
        .arg(spec.seed.to_string());
    if spec.workers > 1 {
        cmd.arg("--workers").arg(spec.workers.to_string());
    }
    if !joiner {
        cmd.arg("--peers-from-stdin");
    }
    if let Some(gossip) = &spec.gossip {
        match join_through {
            Some(server) => cmd
                .arg("--join")
                .arg("--gossip-servers")
                .arg(format!("0={server}")),
            None => cmd.arg("--gossip-servers").arg("0"),
        };
        cmd.arg("--gossip-interval-s")
            .arg(gossip.interval_s.to_string())
            .arg("--suspect-after-s")
            .arg(gossip.suspect_s.to_string())
            .arg("--forget-after-s")
            .arg(gossip.forget_s.to_string());
    }
    if let Some(dir) = &spec.checkpoint_dir {
        cmd.arg("--checkpoint-dir")
            .arg(dir)
            .arg("--checkpoint-every-s")
            .arg(spec.checkpoint_every_s.to_string());
    }
    if let Some(dir) = &spec.trace_dir {
        // One file per node id, append mode in the daemon: a restarted
        // incarnation continues the same file, and the merged timeline
        // shows both lives under their own incarnation stamps.
        cmd.arg("--trace-file")
            .arg(dir.join(format!("node-{id}.jsonl")));
    }
    if let Some(every) = spec.metrics_every_s {
        cmd.arg("--metrics-every-s").arg(every.to_string());
    }
    if spec.service {
        // Service pools take their problems from the job stream; the
        // shared `problem` field is irrelevant and never rendered.
        cmd.arg("--service");
        if resume {
            cmd.arg("--resume").arg("--preconnect-s").arg("1.5");
        }
    } else if resume {
        cmd.arg("--resume").arg("--preconnect-s").arg("1.5");
    } else if spec.wire_peers && id != 0 && !joiner {
        cmd.arg("--problem").arg("wire");
    } else {
        cmd.args(spec.problem.flag_args());
    }
    if let Some(&(_, at)) = spec.crash_at.iter().find(|&&(node, _)| node == id) {
        if !resume {
            cmd.arg("--crash-at-s").arg(at.to_string());
        }
    }
    cmd.stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    let mut child = cmd.spawn()?;
    let stdin = child.stdin.take();
    let stdout = child.stdout.take().expect("stdout piped");
    // One reader thread per node: its stdout lines flow into a channel
    // the launcher drains (ready line now, outcome line after exit). The
    // thread ends at EOF.
    let (tx, rx) = unbounded();
    std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    Ok(Spawned {
        child,
        stdin,
        lines: rx,
        addr: listen,
    })
}

/// Wait for a node's `FTBB-READY` line and record its address.
fn await_ready(node: &mut Spawned, id: u32) -> Result<SocketAddr, LaunchError> {
    let deadline = Instant::now() + READY_PATIENCE;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        match node.lines.recv_timeout(remaining) {
            Ok(line) => {
                if let Some((_, addr)) = parse_ready_line(&line) {
                    node.addr = Some(addr);
                    return Ok(addr);
                }
            }
            Err(_) => return Err(LaunchError::NotReady { id }),
        }
    }
}

/// Write the peer map (everyone but `id`) plus `start` into a node.
fn wire_node(node: &mut Spawned, id: usize, addrs: &[SocketAddr]) -> std::io::Result<()> {
    let mut stdin = node.stdin.take().expect("stdin piped");
    let mut wiring = String::new();
    for (peer, addr) in addrs.iter().enumerate() {
        if peer != id {
            wiring.push_str(&format!("peer {peer}={addr}\n"));
        }
    }
    wiring.push_str("start\n");
    stdin.write_all(wiring.as_bytes())
    // Dropping stdin afterwards closes the pipe cleanly.
}

/// Launch the cluster, wire it over stdin, execute the lifecycle plan
/// (kills and checkpoint restarts), wait for survivors, and aggregate
/// their outcomes.
pub fn launch(spec: &ClusterSpec) -> Result<ClusterReport, LaunchError> {
    assert!(spec.nodes >= 1);
    let n = spec.nodes as usize;
    validate_plan(spec)?;

    if let Some(dir) = &spec.trace_dir {
        std::fs::create_dir_all(dir)?;
    }

    let mut nodes: Vec<Spawned> = Vec::with_capacity(n);
    let reap_all = |nodes: &mut Vec<Spawned>| {
        for node in nodes.iter_mut() {
            let _ = node.child.kill();
            let _ = node.child.wait();
        }
    };

    for id in 0..spec.nodes {
        match spawn_node(spec, id, None, None) {
            Ok(spawned) => nodes.push(spawned),
            Err(e) => {
                // Don't orphan already-spawned nodes on a failed spawn.
                reap_all(&mut nodes);
                return Err(e.into());
            }
        }
    }

    // Collect every node's FTBB-READY line (each binds independently, so
    // sequential waits are fine — patience is per node).
    for id in 0..n {
        if let Err(e) = await_ready(&mut nodes[id], id as u32) {
            reap_all(&mut nodes);
            return Err(e);
        }
    }

    // Wire the full peer map into every node and release them with
    // `start`.
    let addrs: Vec<SocketAddr> = nodes.iter().map(|s| s.addr.expect("collected")).collect();
    for id in 0..n {
        if let Err(e) = wire_node(&mut nodes[id], id, &addrs) {
            reap_all(&mut nodes);
            return Err(e.into());
        }
    }
    let start = Instant::now();

    // Service mode: one launcher-side submit client per job step, each
    // sleeping until its scheduled time and then blocking on the result
    // stream — concurrent with the lifecycle plan below, so kills and
    // restarts land while jobs are mid-flight.
    let job_threads: Vec<std::thread::JoinHandle<(TraceEvent, JobReport)>> = spec
        .jobs
        .iter()
        .map(|step| {
            let step = step.clone();
            let addr = addrs[step.to as usize];
            std::thread::spawn(move || {
                let wait = step.at.saturating_sub(start.elapsed());
                std::thread::sleep(wait);
                let event = launcher_job_event("submit", step.to, step.job);
                let result =
                    step.problem
                        .instance()
                        .map_err(|e| e.to_string())
                        .and_then(|instance| {
                            submit_job(addr, JobId::from(step.job), &instance, step.timeout)
                                .map_err(|e| e.to_string())
                        });
                (
                    event,
                    JobReport {
                        job: step.job,
                        to: step.to,
                        result,
                    },
                )
            })
        })
        .collect();

    // Execute the lifecycle plan in time order: real SIGKILL (no
    // cleanup, no flush) and checkpoint restarts.
    let mut plan = spec.lifecycle.clone();
    plan.sort_by_key(|e| e.at());
    let mut killed = Vec::new();
    // Metrics accumulate per node id across lives (a restart replaces the
    // `Spawned`, so the first life's snapshots are drained before the
    // swap); the launcher's own actions become timeline events.
    let mut metrics: Vec<Vec<ParsedMetrics>> = (0..n).map(|_| Vec::new()).collect();
    let mut job_lines: Vec<Vec<ParsedJob>> = (0..n).map(|_| Vec::new()).collect();
    let mut timeline: Vec<TraceEvent> = Vec::new();
    for event in &plan {
        let elapsed = start.elapsed();
        if event.at() > elapsed {
            std::thread::sleep(event.at() - elapsed);
        }
        match *event {
            LifecycleEvent::Kill { node: id, .. } => {
                if (id as usize) >= nodes.len() {
                    continue;
                }
                match nodes[id as usize].child.try_wait() {
                    Ok(Some(_)) => {} // already exited — too late to kill mid-run
                    Ok(None) => {
                        let _ = nodes[id as usize].child.kill(); // SIGKILL on unix
                        killed.push(id);
                        timeline.push(launcher_event("kill", id));
                    }
                    Err(e) => {
                        reap_all(&mut nodes);
                        return Err(e.into());
                    }
                }
            }
            LifecycleEvent::Join { node: id, .. } => {
                // Validated: id is the next unused one. The joiner knows
                // only node 0's address — it appears in no peer wiring.
                debug_assert_eq!(id as usize, nodes.len());
                match join_node(spec, id, addrs[0]) {
                    Ok(spawned) => {
                        nodes.push(spawned);
                        metrics.push(Vec::new());
                        job_lines.push(Vec::new());
                        timeline.push(launcher_event("join", id));
                    }
                    Err(e) => {
                        reap_all(&mut nodes);
                        return Err(e);
                    }
                }
            }
            LifecycleEvent::Restart { node: id, .. } => {
                if (id as usize) >= nodes.len() || id >= spec.nodes {
                    continue;
                }
                // Make sure the first life is fully gone (SIGKILL is
                // asynchronous) so the original port can be rebound.
                let _ = nodes[id as usize].child.kill();
                let _ = nodes[id as usize].child.wait();
                // Keep the killed life's interval snapshots before its
                // stdout channel is dropped with the old `Spawned`.
                for line in nodes[id as usize].lines.try_iter() {
                    if let Some(m) = parse_metrics_line(&line) {
                        metrics[id as usize].push(m);
                    } else if let Some(j) = parse_job_line(&line) {
                        job_lines[id as usize].push(j);
                    }
                }
                match restart_node(spec, id, &addrs) {
                    Ok(spawned) => {
                        nodes[id as usize] = spawned;
                        timeline.push(launcher_event("restart", id));
                    }
                    Err(e) => {
                        reap_all(&mut nodes);
                        return Err(e);
                    }
                }
            }
        }
    }

    // Collect the job stream's results (each client self-limits via its
    // step timeout, so these joins terminate). Submit timestamps merge
    // into the timeline alongside kills and restarts.
    let mut job_reports: Vec<JobReport> = Vec::with_capacity(job_threads.len());
    for handle in job_threads {
        match handle.join() {
            Ok((event, report)) => {
                timeline.push(event);
                job_reports.push(report);
            }
            Err(_) => {
                reap_all(&mut nodes);
                return Err(LaunchError::Io(std::io::Error::other(
                    "a job submit client panicked",
                )));
            }
        }
    }

    // Wait for everything with a global timeout well past the node
    // deadline (nodes self-limit via --deadline-s). Restarts and joins
    // reset the per-node clock, so allow one extra deadline for the
    // latest event.
    let last_event = plan.last().map(|e| e.at()).unwrap_or(Duration::ZERO);
    let patience = spec.deadline + last_event + Duration::from_secs(30);
    let total = nodes.len();
    let mut outcomes: Vec<Option<ParsedOutcome>> = (0..total).map(|_| None).collect();
    let mut services: Vec<Option<ParsedService>> = (0..total).map(|_| None).collect();
    for id in 0..total {
        loop {
            match nodes[id].child.try_wait() {
                Ok(Some(_)) => break,
                Err(e) => {
                    reap_all(&mut nodes);
                    return Err(e.into());
                }
                Ok(None) if start.elapsed() > patience => {
                    reap_all(&mut nodes);
                    return Err(LaunchError::Timeout { id: id as u32 });
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        // The node exited, so its reader thread sees EOF and drops the
        // sender; a blocking drain terminates promptly. Every line is
        // scanned: interval FTBB-METRICS snapshots and the final
        // FTBB-OUTCOME ride the same stream.
        for line in nodes[id].lines.iter() {
            if let Some(m) = parse_metrics_line(&line) {
                metrics[id].push(m);
            } else if let Some(o) = parse_outcome_line(&line) {
                outcomes[id] = Some(o);
            } else if let Some(j) = parse_job_line(&line) {
                job_lines[id].push(j);
            } else if let Some(s) = parse_service_line(&line) {
                services[id] = Some(s);
            }
        }
    }

    // Merge every node's structured trace into the launcher's lifecycle
    // events: all stamps share the unix-microsecond clock, so a plain
    // sort yields the cluster-wide ordered timeline (a kill precedes the
    // suspicions and recoveries it causes).
    if let Some(dir) = &spec.trace_dir {
        for id in 0..total as u32 {
            let path = dir.join(format!("node-{id}.jsonl"));
            if let Ok(text) = std::fs::read_to_string(&path) {
                timeline.extend(text.lines().filter_map(TraceEvent::parse_jsonl));
            }
        }
    }
    timeline.sort_by_key(|e| e.t_us);

    // A node SIGKILLed (or config-crashed) after finishing still counts
    // as a survivor if its outcome line made it out — and a killed node
    // that was restarted and reported is a survivor too.
    let mut effective_killed: Vec<u32> = killed
        .iter()
        .copied()
        .chain(spec.crash_at.iter().map(|&(id, _)| id))
        .filter(|&id| {
            (id as usize) < total
                && outcomes[id as usize].is_none()
                && services[id as usize].is_none()
        })
        .collect();
    effective_killed.sort_unstable();
    effective_killed.dedup();
    // Service nodes close with an FTBB-SERVICE summary instead of an
    // FTBB-OUTCOME; "survived" means that summary made it out.
    let all_survivors_terminated = (0..total as u32)
        .filter(|id| !effective_killed.contains(id))
        .all(|id| {
            if spec.service {
                services[id as usize].is_some()
            } else {
                outcomes[id as usize]
                    .as_ref()
                    .map(|o| o.terminated)
                    .unwrap_or(false)
            }
        });
    let best = outcomes
        .iter()
        .flatten()
        .filter(|o| o.terminated)
        .map(|o| o.incumbent)
        .fold(f64::INFINITY, f64::min);

    let report = ClusterReport {
        outcomes,
        killed: effective_killed,
        best: best.is_finite().then_some(best),
        all_survivors_terminated,
        metrics,
        timeline,
        jobs: job_reports,
        job_lines,
        services,
    };
    // Per-node expansion counts on stderr, so work skew is visible in CI
    // logs (the multiprocess tests run with --nocapture there) — the
    // per-job digest in service mode — and the telemetry digest when the
    // cluster ran with it on.
    eprint!("{}", report.skew_summary());
    eprint!("{}", report.job_summary());
    eprint!("{}", report.cluster_report());
    Ok(report)
}

/// Static consistency of the lifecycle plan.
fn validate_plan(spec: &ClusterSpec) -> Result<(), LaunchError> {
    let bad = |m: String| Err(LaunchError::BadPlan(m));
    if !spec.jobs.is_empty() && !spec.service {
        return bad("a job stream needs ClusterSpec::service".to_string());
    }
    if spec.service {
        if spec.wire_peers {
            return bad(
                "service pools already ship every instance over the wire; drop wire_peers"
                    .to_string(),
            );
        }
        let mut seen = std::collections::HashSet::new();
        for step in &spec.jobs {
            if step.job == 0 {
                return bad("job 0 is reserved for single-run nodes".to_string());
            }
            if !seen.insert(step.job) {
                return bad(format!("duplicate job id {} in the job stream", step.job));
            }
            if step.to >= spec.nodes {
                return bad(format!(
                    "job {} submits to node {} but the pool has {} nodes",
                    step.job, step.to, spec.nodes
                ));
            }
            if matches!(step.problem, ProblemSpec::Wire) {
                return bad(format!(
                    "job {} has ProblemSpec::Wire; submissions materialize client-side",
                    step.job
                ));
            }
        }
    }
    let mut plan = spec.lifecycle.clone();
    plan.sort_by_key(|e| e.at());
    let mut dead: Vec<u32> = Vec::new();
    let mut total = spec.nodes;
    for event in &plan {
        match *event {
            LifecycleEvent::Kill { node, .. } => dead.push(node),
            LifecycleEvent::Restart { node, .. } => {
                if spec.checkpoint_dir.is_none() {
                    return bad(format!(
                        "restart of node {node} needs ClusterSpec::checkpoint_dir"
                    ));
                }
                match dead.iter().position(|&d| d == node) {
                    Some(i) => {
                        dead.remove(i);
                    }
                    None => {
                        return bad(format!("restart of node {node} without a preceding kill"));
                    }
                }
            }
            LifecycleEvent::Join { node, .. } => {
                if spec.service {
                    // The daemon rejects --join with --service; keep the
                    // plan honest instead of failing at spawn time.
                    return bad(format!(
                        "join of node {node}: elastic join is not supported in service mode"
                    ));
                }
                if spec.gossip.is_none() {
                    return bad(format!("join of node {node} needs ClusterSpec::gossip"));
                }
                if node != total {
                    return bad(format!(
                        "join must take the next unused id {total}, not {node}"
                    ));
                }
                total += 1;
            }
        }
    }
    Ok(())
}

/// Spawn an elastic joiner: a brand-new node that appears in no wiring
/// and knows only the gossip server's (node 0's) address.
fn join_node(spec: &ClusterSpec, id: u32, server: SocketAddr) -> Result<Spawned, LaunchError> {
    let mut node = spawn_node(spec, id, None, Some(server)).map_err(LaunchError::Io)?;
    await_ready(&mut node, id)?;
    // No wiring to write: the joiner bootstraps itself. Close its stdin
    // so it never blocks on a pipe nobody feeds.
    drop(node.stdin.take());
    Ok(node)
}

/// Bring a killed node back from its checkpoint: respawn with `--resume`
/// on the node's *original* address, hold the wiring for
/// [`REJOIN_SETTLE`], then release it.
fn restart_node(spec: &ClusterSpec, id: u32, addrs: &[SocketAddr]) -> Result<Spawned, LaunchError> {
    // Rebind the original address: peers keep their rosters, and their
    // in-flight traffic demonstrably lands on the new life (where the
    // incarnation filter disposes of it). The first bind can race the
    // kernel reclaiming the killed process's port — retry briefly.
    let addr = addrs[id as usize];
    let bind_deadline = Instant::now() + READY_PATIENCE;
    let mut node = loop {
        let mut spawned = spawn_node(spec, id, Some(addr), None).map_err(LaunchError::Io)?;
        match await_ready(&mut spawned, id) {
            Ok(_) => break spawned,
            Err(e) => {
                let _ = spawned.child.kill();
                let _ = spawned.child.wait();
                if Instant::now() >= bind_deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };
    // The settle window: the listener is bound (peers' reconnects land
    // in the backlog) but the daemon is still waiting for its wiring —
    // a slow workstation rejoining. Stale traffic accumulates here.
    std::thread::sleep(REJOIN_SETTLE);
    wire_node(&mut node, id as usize, addrs).map_err(LaunchError::Io)?;
    Ok(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbb_core::TransportStats;

    fn outcome(id: u32, incarnation: u32, expanded: u64) -> ParsedOutcome {
        ParsedOutcome {
            id,
            incarnation,
            terminated: true,
            incumbent: -1.0,
            expanded,
            pruned_at_pop: 0,
            recoveries: 0,
            suspected: 0,
            forgotten: 0,
            bound_broadcasts: 0,
            bound_coalesced: 0,
            bound_suppressed: 0,
            membership_events_dropped: 0,
            trace_events_dropped: 0,
            workers: 1,
            transport: TransportStats::default(),
        }
    }

    fn mk_report(outcomes: Vec<Option<ParsedOutcome>>, killed: Vec<u32>) -> ClusterReport {
        let n = outcomes.len();
        ClusterReport {
            outcomes,
            killed,
            best: Some(-1.0),
            all_survivors_terminated: true,
            metrics: (0..n).map(|_| Vec::new()).collect(),
            timeline: Vec::new(),
            jobs: Vec::new(),
            job_lines: (0..n).map(|_| Vec::new()).collect(),
            services: (0..n).map(|_| None).collect(),
        }
    }

    #[test]
    fn expansion_share_and_summary() {
        let report = mk_report(
            vec![Some(outcome(0, 0, 75)), None, Some(outcome(2, 1, 25))],
            vec![1],
        );
        assert_eq!(report.total_expanded(), 100);
        assert!((report.max_expansion_share() - 0.75).abs() < 1e-12);
        let summary = report.skew_summary();
        assert!(summary.contains("node 0 inc=0 expanded=75 (75.0% of 100)"));
        assert!(
            summary.contains("node 2 inc=1 expanded=25 (25.0% of 100)"),
            "a rejoined incarnation's contribution must be visible: {summary}"
        );

        let empty = mk_report(vec![None], vec![0]);
        assert_eq!(empty.max_expansion_share(), 0.0);
    }

    #[test]
    fn cluster_report_renders_timeline_and_figure3_table() {
        use crate::noded::parse_metrics_line;
        use ftbb_core::TraceEvent;

        let mut r = mk_report(vec![Some(outcome(0, 0, 10)), None], vec![1]);
        assert_eq!(r.cluster_report(), "", "no telemetry, no digest");

        // A kill (launcher) followed by a survivor's suspicion of the
        // dead node, already time-ordered.
        r.timeline = vec![
            TraceEvent {
                t_us: 1_000_000,
                node: 1,
                incarnation: 0,
                job: 0,
                kind: "kill".into(),
                fields: vec![("source".into(), "launcher".into())],
            },
            TraceEvent {
                t_us: 1_400_000,
                node: 0,
                incarnation: 0,
                job: 0,
                kind: "suspect".into(),
                fields: vec![("peer".into(), "1".into())],
            },
        ];
        let snap = ftbb_runtime::MetricsSnapshot {
            id: 0,
            job: 0,
            incarnation: 0,
            seq: 3,
            elapsed_s: 2.5,
            phase: ftbb_core::PhaseTimes {
                expand_s: 1.5,
                ..Default::default()
            },
            metrics: Default::default(),
            transport: TransportStats::default(),
            trace_events_dropped: 0,
            workers: 1,
        };
        let line = crate::noded::metrics_line(&snap);
        r.metrics[0] = vec![parse_metrics_line(&line).expect("own line parses")];

        let digest = r.cluster_report();
        assert!(digest.contains("cluster timeline (2 events):"), "{digest}");
        assert!(
            digest.contains("+   0.000s node 1 inc=0 kill source=launcher"),
            "{digest}"
        );
        assert!(
            digest.contains("+   0.400s node 0 inc=0 suspect peer=1"),
            "{digest}"
        );
        assert!(digest.contains("figure-3 time accounting"), "{digest}");
        // One table row for node 0 (node 1 has no metrics).
        assert_eq!(
            digest
                .lines()
                .filter(|l| l.trim_start().starts_with("0 "))
                .count(),
            1,
            "{digest}"
        );
    }

    #[test]
    fn lifecycle_plans_are_validated() {
        let base = ClusterSpec {
            noded: PathBuf::from("/nonexistent"),
            nodes: 3,
            lifecycle: Vec::new(),
            crash_at: Vec::new(),
            problem: ProblemSpec::default(),
            wire_peers: false,
            service: false,
            jobs: Vec::new(),
            gossip: None,
            checkpoint_dir: None,
            checkpoint_every_s: 0.1,
            trace_dir: None,
            metrics_every_s: None,
            deadline: Duration::from_secs(1),
            seed: 1,
            workers: 1,
        };

        // Join without gossip mode.
        let mut spec = base.clone();
        spec.lifecycle = vec![LifecycleEvent::join(3, Duration::from_millis(10))];
        match validate_plan(&spec) {
            Err(LaunchError::BadPlan(e)) => assert!(e.contains("ClusterSpec::gossip"), "{e}"),
            other => panic!("expected BadPlan, got {other:?}"),
        }

        // Join with a wrong (already used / skipped) id.
        let mut spec = base.clone();
        spec.gossip = Some(GossipTiming::default());
        spec.lifecycle = vec![LifecycleEvent::join(5, Duration::from_millis(10))];
        match validate_plan(&spec) {
            Err(LaunchError::BadPlan(e)) => assert!(e.contains("next unused id 3"), "{e}"),
            other => panic!("expected BadPlan, got {other:?}"),
        }

        // Two joins take consecutive ids; killing a joiner is fine.
        let mut spec = base.clone();
        spec.gossip = Some(GossipTiming::default());
        spec.lifecycle = vec![
            LifecycleEvent::join(3, Duration::from_millis(10)),
            LifecycleEvent::join(4, Duration::from_millis(20)),
            LifecycleEvent::kill(4, Duration::from_millis(30)),
        ];
        assert!(validate_plan(&spec).is_ok());

        // Restart without a checkpoint dir.
        let mut spec = base.clone();
        spec.lifecycle = vec![
            LifecycleEvent::kill(1, Duration::from_millis(10)),
            LifecycleEvent::restart(1, Duration::from_millis(20)),
        ];
        assert!(matches!(validate_plan(&spec), Err(LaunchError::BadPlan(_))));

        // Restart of a never-killed node.
        let mut spec = base.clone();
        spec.checkpoint_dir = Some(PathBuf::from("/tmp/ckpt"));
        spec.lifecycle = vec![LifecycleEvent::restart(2, Duration::from_millis(20))];
        match validate_plan(&spec) {
            Err(LaunchError::BadPlan(e)) => assert!(e.contains("without a preceding kill"), "{e}"),
            other => panic!("expected BadPlan, got {other:?}"),
        }

        // A job stream without service mode.
        let mut spec = base.clone();
        spec.jobs = vec![JobStep::submit(
            1,
            Duration::ZERO,
            0,
            ProblemSpec::default(),
        )];
        match validate_plan(&spec) {
            Err(LaunchError::BadPlan(e)) => assert!(e.contains("ClusterSpec::service"), "{e}"),
            other => panic!("expected BadPlan, got {other:?}"),
        }

        // Service mode: job 0, duplicate ids, out-of-pool gateways, and
        // elastic joins are all rejected.
        let mut spec = base.clone();
        spec.service = true;
        spec.jobs = vec![JobStep::submit(
            0,
            Duration::ZERO,
            0,
            ProblemSpec::default(),
        )];
        match validate_plan(&spec) {
            Err(LaunchError::BadPlan(e)) => assert!(e.contains("reserved"), "{e}"),
            other => panic!("expected BadPlan, got {other:?}"),
        }
        spec.jobs = vec![
            JobStep::submit(7, Duration::ZERO, 0, ProblemSpec::default()),
            JobStep::submit(7, Duration::ZERO, 1, ProblemSpec::default()),
        ];
        match validate_plan(&spec) {
            Err(LaunchError::BadPlan(e)) => assert!(e.contains("duplicate job id 7"), "{e}"),
            other => panic!("expected BadPlan, got {other:?}"),
        }
        spec.jobs = vec![JobStep::submit(
            7,
            Duration::ZERO,
            9,
            ProblemSpec::default(),
        )];
        match validate_plan(&spec) {
            Err(LaunchError::BadPlan(e)) => assert!(e.contains("but the pool has"), "{e}"),
            other => panic!("expected BadPlan, got {other:?}"),
        }
        spec.jobs = Vec::new();
        spec.gossip = Some(GossipTiming::default());
        spec.lifecycle = vec![LifecycleEvent::join(3, Duration::from_millis(10))];
        match validate_plan(&spec) {
            Err(LaunchError::BadPlan(e)) => assert!(e.contains("service mode"), "{e}"),
            other => panic!("expected BadPlan, got {other:?}"),
        }

        // A well-formed service plan: staggered jobs, a kill, a restart.
        let mut spec = base.clone();
        spec.service = true;
        spec.checkpoint_dir = Some(PathBuf::from("/tmp/ckpt"));
        spec.jobs = vec![
            JobStep::submit(1, Duration::from_millis(0), 0, ProblemSpec::default()),
            JobStep::submit(2, Duration::from_millis(50), 1, ProblemSpec::default()),
        ];
        spec.lifecycle = vec![
            LifecycleEvent::kill(2, Duration::from_millis(100)),
            LifecycleEvent::restart(2, Duration::from_millis(200)),
        ];
        assert!(validate_plan(&spec).is_ok());

        // Kill → restart → kill again is a consistent story.
        let mut spec = base;
        spec.checkpoint_dir = Some(PathBuf::from("/tmp/ckpt"));
        spec.lifecycle = vec![
            LifecycleEvent::kill(1, Duration::from_millis(10)),
            LifecycleEvent::restart(1, Duration::from_millis(30)),
            LifecycleEvent::kill(1, Duration::from_millis(50)),
        ];
        assert!(validate_plan(&spec).is_ok());
    }
}
