//! # ftbb-wire — the protocol on real sockets, across real processes
//!
//! The paper evaluates its fault-tolerance mechanism in simulation;
//! `ftbb-runtime` moved it to real threads over in-process channels. This
//! crate takes the final step to real infrastructure: the *identical*
//! [`ftbb_core::BnbProcess`] state machine on TCP sockets between OS
//! processes, where message loss, reordering, split reads, and silent
//! peer death happen for real instead of by injection.
//!
//! | module | contents |
//! |---|---|
//! | [`codec`] | framed, version-tagged, checksummed binary encoding of envelopes |
//! | [`tcp`] | [`tcp::TcpMesh`] — the [`ftbb_runtime::Transport`] over sockets |
//! | [`config`] | `ftbb-noded` TOML/flag configuration |
//! | [`noded`] | the per-process node daemon body and its ready/outcome protocol |
//! | [`launcher`] | loopback cluster spawner with a SIGKILL plan |
//!
//! The `ftbb-noded` binary runs one node per process; the launcher spawns
//! a loopback cluster, SIGKILLs a subset mid-run, and the surviving
//! processes still converge to the sequential optimum — the paper's
//! theorem, demonstrated on genuinely unreliable infrastructure.
//!
//! Startup is handled explicitly rather than hopefully: nodes announce
//! their bound address on a `FTBB-READY` line, the launcher wires the
//! peer map over stdin (no port pre-allocation race), and every node
//! runs a readiness barrier — pre-establishing its peer connections —
//! before the protocol's `Start`. Frames sent while a listener is still
//! coming up are retried inside a bounded startup window
//! ([`tcp::RETRY_WINDOW`] / [`tcp::RETRY_MAX_FRAMES`]) instead of being
//! silently dropped; past the budget, the paper's Crash-model semantics
//! (counted silent drops) resume unchanged.

#![warn(missing_docs)]

pub mod codec;
pub mod config;
pub mod launcher;
pub mod noded;
pub mod tcp;

pub use codec::{
    decode_frame, encode_announce, encode_frame, EncodedFrame, FrameDecoder, WireError, WireFrame,
};
pub use config::{
    member_ids, parse_args, parse_config, ConfigError, KnapsackSpec, MaxSatSpec, NodeConfig,
    ProblemSpec, TreeFileSpec, PROBLEM_KINDS,
};
pub use launcher::{launch, ClusterReport, ClusterSpec, LaunchError};
pub use noded::{
    outcome_line, parse_outcome_line, parse_ready_line, read_peer_wiring, ready_line, NodedReport,
    ParsedOutcome,
};
pub use tcp::TcpMesh;
