//! # ftbb-wire — the protocol on real sockets (placeholder, filled in below)

pub mod placeholder {}
