//! # ftbb-wire — the protocol on real sockets, across real processes
//!
//! The paper evaluates its fault-tolerance mechanism in simulation;
//! `ftbb-runtime` moved it to real threads over in-process channels. This
//! crate takes the final step to real infrastructure: the *identical*
//! [`ftbb_core::BnbProcess`] state machine on TCP sockets between OS
//! processes, where message loss, reordering, split reads, and silent
//! peer death happen for real instead of by injection.
//!
//! | module | contents |
//! |---|---|
//! | [`codec`] | framed, version-tagged, checksummed binary encoding of envelopes, incarnation-stamped, with announce + rejoin handshake frames |
//! | [`tcp`] | [`tcp::TcpMesh`] — the [`ftbb_runtime::Transport`] over sockets, with dynamic peer (re)registration and stale-incarnation filtering |
//! | [`config`] | `ftbb-noded` TOML/flag configuration (incl. checkpoint/resume and telemetry) |
//! | [`lines`] | the shared `TAG key=value …` codec behind every `FTBB-*` stdout line |
//! | [`noded`] | the per-process node daemon body (single-run and `--service` pool modes), its ready/metrics/outcome/job protocol, and the [`noded::DirSink`] / [`noded::ServiceDirSink`] checkpoint stores |
//! | [`submit`] | the `ftbb-submit` client: send a job to a service pool over one TCP connection and stream its results back |
//! | [`launcher`] | loopback cluster spawner with a lifecycle plan (SIGKILLs and checkpoint restarts) and cluster-wide telemetry aggregation |
//!
//! The `ftbb-noded` binary runs one node per process; the launcher spawns
//! a loopback cluster, SIGKILLs a subset mid-run — and can restart a
//! killed node from its checkpoint, which rejoins under a new
//! incarnation — and the surviving processes still converge to the
//! sequential optimum — the paper's theorem, demonstrated on genuinely
//! unreliable infrastructure.
//!
//! Startup is handled explicitly rather than hopefully: nodes announce
//! their bound address on a `FTBB-READY` line, the launcher wires the
//! peer map over stdin (no port pre-allocation race), and every node
//! runs a readiness barrier — pre-establishing its peer connections —
//! before the protocol's `Start`. Frames sent while a listener is still
//! coming up are retried inside a bounded startup window
//! ([`tcp::RETRY_WINDOW`] / [`tcp::RETRY_MAX_FRAMES`]) instead of being
//! silently dropped; past the budget, the paper's Crash-model semantics
//! (counted silent drops) resume unchanged.

#![warn(missing_docs)]

pub mod codec;
pub mod config;
pub mod launcher;
pub mod lines;
pub mod noded;
pub mod submit;
pub mod tcp;

pub use codec::{
    decode_frame, encode_accepted, encode_announce, encode_frame, encode_join, encode_rejoin,
    encode_result, encode_submit, EncodedFrame, FrameDecoder, JoinFrame, RejoinFrame,
    RejoinSummary, WireError, WireFrame,
};
pub use config::{
    member_ids, parse_args, parse_config, ConfigError, KnapsackSpec, MaxSatSpec, NodeConfig,
    ProblemSpec, TreeFileSpec, PROBLEM_KINDS,
};
pub use launcher::{
    launch, ClusterReport, ClusterSpec, GossipTiming, JobReport, JobStep, LaunchError,
    LifecycleEvent, REJOIN_SETTLE,
};
pub use lines::{render_f64_bits, render_line, Fields};
pub use noded::{
    checkpoint_path, job_line, metrics_line, outcome_line, parse_job_line, parse_metrics_line,
    parse_outcome_line, parse_ready_line, parse_service_line, read_peer_wiring, ready_line,
    service_checkpoint_path, service_line, DirSink, NodedReport, ParsedJob, ParsedMetrics,
    ParsedOutcome, ParsedService, ServiceDirSink, ServiceReport,
};
pub use submit::{submit_job, SubmitOutcome};
pub use tcp::{TcpMesh, WireConfig};
