//! [`TcpMesh`] — the [`Transport`] over real sockets.
//!
//! Topology: every node listens on one TCP address and keeps one
//! *outgoing* connection per peer (so a pair of nodes shares two
//! simplex connections, one per direction). Incoming connections only
//! feed the inbox; the envelope's `from` field identifies the sender.
//! The peer roster is **dynamic**: it is seeded at construction, but a
//! peer can be (re)registered at any time — which is how a node killed
//! and restarted from a checkpoint re-enters a live mesh (its
//! [`RejoinFrame`] carries its new address and incarnation, and every
//! receiver re-points its writer).
//!
//! **Incarnations**: the mesh belongs to one life of its node. Outgoing
//! protocol frames are stamped with the sender's incarnation and the
//! destination incarnation the sender currently believes in; inbound
//! frames whose tags disagree with reality — addressed to this node's
//! previous life, or sent by a peer's previous life — are dropped and
//! counted as `dropped_stale` instead of being delivered to the wrong
//! incarnation. Incarnation knowledge flows through rejoin (and announce)
//! frames; a fresh mesh assumes incarnation 0 for everyone, which is
//! correct for first lives.
//!
//! Failure semantics are the paper's Crash model on real infrastructure,
//! with one deliberate refinement at startup:
//!
//! * **Pre-establishment** ([`TcpMesh::connect_all`], surfaced as
//!   [`Transport::ready`]): writer threads eagerly dial their peers with
//!   retry until connected or a deadline. Harnesses run this readiness
//!   barrier *before* injecting `Start`, so the protocol never opens
//!   fire on a half-formed mesh and the root's first work grants cannot
//!   vanish into a listener that is still coming up. A rejoining node
//!   replays exactly this barrier for itself before sending its rejoin
//!   frames.
//! * **Startup retry window**: until a peer has accepted its first
//!   connection, a frame that cannot be delivered is *retried* instead
//!   of dropped — held in a small bounded queue while the writer keeps
//!   dialing. Both budgets are configurable per mesh through
//!   [`WireConfig`] (`retry_window`, default [`RETRY_WINDOW`] = 1 s;
//!   `retry_max_frames`, default [`RETRY_MAX_FRAMES`] = 64 frames).
//!   Frames that outlive the budget are dropped and counted as
//!   `dropped_startup`; an at-most-once window made explicit and
//!   bounded rather than pretended free.
//! * **Steady state is unchanged**: once a peer has connected, a send to
//!   it while it is down is **silently dropped** (counted as
//!   `dropped_disconnected` in [`TransportCounters`]) — the protocol
//!   tolerates lost messages. Writers **reconnect on drop**: the next
//!   send after a failure attempts a fresh connection (with a short
//!   backoff so dead peers cost microseconds, not round-trips), and
//!   successful re-establishment is counted.
//! * A reader that sees a corrupt frame drops the connection — a corrupt
//!   peer is indistinguishable from a dead one.
//!
//! **Live peer discovery** (codec v4): outgoing membership frames
//! piggyback this node's address book — `(id, addr, incarnation)` per
//! known peer plus itself — and inbound books open routes to members
//! this mesh has never been wired with, already tagged for the right
//! life (counted as `peers_discovered`). A *relayed* entry never
//! re-points a known peer's route; the sender's *own* entry is
//! authoritative (the admitted frame proves its current address and
//! incarnation), like a join/rejoin frame — which is how a route
//! learned from a book that later went stale heals itself on the next
//! membership frame from that peer. A brand-new node enters a live mesh
//! by sending a [`JoinFrame`] to its gossip servers
//! ([`TcpMesh::send_join`]); gossip then spreads its existence — and,
//! via the books, its address — epidemically.

use crate::codec::{
    encode_announce, encode_frame, encode_join, encode_rejoin, EncodedFrame, FrameDecoder,
    JoinFrame, RejoinFrame, RejoinSummary, WireFrame,
};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use ftbb_bnb::AnyInstance;
use ftbb_core::{JobId, Msg, TransportCounters};
use ftbb_gossip::MembershipMsg;
use ftbb_runtime::{Envelope, Transport};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Soft bound on frames queued toward one peer; beyond it sends are
/// dropped as `Full` (backpressure against a stalled or dead peer).
const PEER_QUEUE_CAP: usize = 4096;

/// How long a writer waits for a connection attempt.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(250);

/// After a failed connect in steady state, drop sends for this long
/// before retrying — keeps send() latency flat while a peer is down.
const RECONNECT_BACKOFF: Duration = Duration::from_millis(50);

/// Default time budget of the startup retry window: frames sent before
/// the peer ever connected are retried for this long, then dropped
/// (counted as `dropped_startup`). Configurable per mesh through
/// [`WireConfig::retry_window`].
pub const RETRY_WINDOW: Duration = Duration::from_secs(1);

/// Default frame budget of the startup retry window: at most this many
/// frames are held for retry per peer; overflow drops immediately.
/// Configurable per mesh through [`WireConfig::retry_max_frames`].
pub const RETRY_MAX_FRAMES: usize = 64;

/// Default cap on frames coalesced into one socket write. Batching is
/// purely opportunistic — a writer only coalesces frames *already queued*
/// when it wakes, so a lone latency-sensitive frame (bound announcement,
/// membership beat) is never parked waiting for company; the cap merely
/// bounds the coalescing buffer. Configurable per mesh through
/// [`WireConfig::batch_max_frames`].
pub const BATCH_MAX_FRAMES: usize = 64;

/// Default cap on piggybacked address-book entries per membership frame
/// (`0` = uncapped full roster, the pre-scale behavior). The sender's own
/// entry always rides; the rest rotate through a round-robin cursor so
/// every entry still circulates epidemically. Configurable per mesh
/// through [`WireConfig::book_max_entries`].
pub const BOOK_MAX_ENTRIES: usize = 16;

/// Transport tuning knobs, applied to every peer writer of a mesh.
/// Defaults reproduce the historical constants exactly; deployments with
/// slower-starting peers (large clusters, loaded CI machines) can widen
/// the startup window, and latency-sensitive ones can shrink it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireConfig {
    /// Startup retry window: how long frames to a never-yet-connected
    /// peer are retried before reverting to counted silent drops
    /// (default [`RETRY_WINDOW`], 1 s).
    pub retry_window: Duration,
    /// Per-peer frame budget of that window; overflow drops immediately
    /// (default [`RETRY_MAX_FRAMES`], 64 frames).
    pub retry_max_frames: usize,
    /// Most frames one socket write may coalesce (default
    /// [`BATCH_MAX_FRAMES`], 64). `1` disables batching entirely — every
    /// frame pays its own syscall, the pre-batching behavior.
    pub batch_max_frames: usize,
    /// Most address-book entries piggybacked on one membership frame
    /// (default [`BOOK_MAX_ENTRIES`], 16; `0` = the full roster). Keeps
    /// per-frame book bytes O(1) instead of O(roster).
    pub book_max_entries: usize,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            retry_window: RETRY_WINDOW,
            retry_max_frames: RETRY_MAX_FRAMES,
            batch_max_frames: BATCH_MAX_FRAMES,
            book_max_entries: BOOK_MAX_ENTRIES,
        }
    }
}

/// Pacing of dial attempts while the retry window or the
/// pre-establishment barrier is waiting for a listener.
const RETRY_POLL: Duration = Duration::from_millis(10);

struct QueuedFrame {
    wire_size: usize,
    /// Refcounted: broadcast paths queue clones of one encoding.
    bytes: Bytes,
}

enum WriterCmd {
    Frame(QueuedFrame),
    /// Pre-establishment: dial eagerly until connected or `deadline`.
    Preconnect {
        deadline: Instant,
    },
}

struct Peer {
    addr: SocketAddr,
    /// Destination's latest known incarnation; stamps outgoing frames.
    incarnation: Arc<AtomicU32>,
    queue_tx: Sender<WriterCmd>,
    depth: Arc<AtomicUsize>,
    connected: Arc<AtomicBool>,
}

impl Peer {
    /// Hand a frame to the writer thread. The depth reservation is
    /// released here if the writer is gone (its queue disconnected) —
    /// otherwise the writer settles it once the frame's fate is known.
    fn enqueue(&self, frame: QueuedFrame, counters: &TransportCounters) {
        self.depth.fetch_add(1, Ordering::AcqRel);
        if self.queue_tx.try_send(WriterCmd::Frame(frame)).is_err() {
            // Undo the reservation: nobody will ever settle this frame,
            // and a leaked depth would make `drain` spin to timeout.
            self.depth.fetch_sub(1, Ordering::AcqRel);
            counters.record_dropped_disconnected();
        }
    }
}

/// The roster cache behind [`Registry::membership_book`]: the sorted
/// `(id, addr, incarnation)` book, rebuilt only when the peer *roster*
/// changes. Incarnations are shared atomics loaded at selection time, so
/// `fetch_max` bumps (rejoins, life proofs) never invalidate the cache.
struct BookCache {
    /// Sorted by id; includes this node's own entry.
    entries: Vec<(u32, SocketAddr, Arc<AtomicU32>)>,
    /// Roster changed since the last rebuild.
    dirty: bool,
    /// Round-robin start for capped selections, an index into `entries`.
    cursor: usize,
}

/// The routing state readers and the mesh share: the dynamic peer map,
/// the inbound incarnation filter, and the counters.
struct Registry {
    me: u32,
    my_incarnation: u32,
    local_addr: SocketAddr,
    cfg: WireConfig,
    peers: RwLock<HashMap<u32, Peer>>,
    /// Highest incarnation seen per sender; frames from lower ones are a
    /// previous life's stragglers and are dropped as stale.
    seen: RwLock<HashMap<u32, u32>>,
    /// Lazily rebuilt piggyback book. Lock order: `book` before `peers`
    /// (the rebuild reads the peer map); invalidators must not hold
    /// `peers` when they take `book`.
    book: Mutex<BookCache>,
    counters: Arc<TransportCounters>,
}

impl Registry {
    /// (Re)register `id` at `addr` with (at least) `incarnation`. A new
    /// address replaces the writer (the old writer thread exits when its
    /// queue disconnects); a known address just bumps the outbound
    /// incarnation tag, keeping the live connection.
    fn register(&self, id: u32, addr: SocketAddr, incarnation: u32) {
        if id == self.me {
            return;
        }
        {
            let peers = self.peers.read().expect("peer map poisoned");
            if let Some(peer) = peers.get(&id) {
                if peer.addr == addr {
                    peer.incarnation.fetch_max(incarnation, Ordering::AcqRel);
                    return;
                }
            }
        }
        let peer = spawn_peer(addr, incarnation, Arc::clone(&self.counters), self.cfg);
        self.peers
            .write()
            .expect("peer map poisoned")
            .insert(id, peer);
        self.mark_book_dirty();
    }

    /// Learn a peer from a *relayed* (third-party) address-book entry:
    /// unknown ids are registered at the book's incarnation; for known
    /// ids only the outbound incarnation tag is raised (monotone). A
    /// relayed entry never re-points an existing writer — address
    /// changes are authoritative only through join/rejoin frames or the
    /// sender's *own* book entry (see the reader), so a stale relayed
    /// book cannot hijack a live route.
    fn learn_peer(&self, id: u32, addr: SocketAddr, incarnation: u32) {
        if id == self.me {
            return;
        }
        {
            let peers = self.peers.read().expect("peer map poisoned");
            if let Some(peer) = peers.get(&id) {
                peer.incarnation.fetch_max(incarnation, Ordering::AcqRel);
                return;
            }
        }
        {
            let mut peers = self.peers.write().expect("peer map poisoned");
            if peers.contains_key(&id) {
                return; // raced another reader; first learner wins
            }
            peers.insert(
                id,
                spawn_peer(addr, incarnation, Arc::clone(&self.counters), self.cfg),
            );
        }
        self.mark_book_dirty();
        self.counters.record_peer_discovered();
    }

    /// Invalidate the piggyback-book cache after a roster change. Callers
    /// must have released the `peers` lock (see the lock-order note on
    /// [`Registry::book`]).
    fn mark_book_dirty(&self) {
        self.book.lock().expect("book cache poisoned").dirty = true;
    }

    /// The address book to piggyback on one membership frame: the full
    /// sorted roster when it fits `book_max_entries` (or the cap is 0),
    /// otherwise this node's own entry (always — it is the authoritative
    /// route back to the sender) plus a rotating window of the rest, so
    /// every entry still circulates within `⌈roster/cap⌉` frames. The
    /// roster is cached and rebuilt only when the peer map changes;
    /// incarnations are loaded from the shared atomics at selection time.
    fn membership_book(&self) -> Vec<(u32, SocketAddr, u32)> {
        let mut cache = self.book.lock().expect("book cache poisoned");
        if cache.dirty {
            let peers = self.peers.read().expect("peer map poisoned");
            cache.entries = peers
                .iter()
                .map(|(&id, p)| (id, p.addr, Arc::clone(&p.incarnation)))
                .collect();
            drop(peers);
            cache.entries.push((
                self.me,
                self.local_addr,
                Arc::new(AtomicU32::new(self.my_incarnation)),
            ));
            cache.entries.sort_unstable_by_key(|&(id, _, _)| id);
            cache.dirty = false;
        }
        let load = |&(id, addr, ref inc): &(u32, SocketAddr, Arc<AtomicU32>)| {
            (id, addr, inc.load(Ordering::Acquire))
        };
        let cap = self.cfg.book_max_entries;
        let n = cache.entries.len();
        if cap == 0 || n <= cap {
            return cache.entries.iter().map(load).collect();
        }
        let self_idx = cache
            .entries
            .binary_search_by_key(&self.me, |&(id, _, _)| id)
            .expect("own entry is always in the book");
        let mut out = Vec::with_capacity(cap);
        out.push(load(&cache.entries[self_idx]));
        let mut idx = cache.cursor % n;
        while out.len() < cap {
            if idx != self_idx {
                out.push(load(&cache.entries[idx]));
            }
            idx = (idx + 1) % n;
        }
        cache.cursor = idx;
        drop(cache);
        out.sort_unstable_by_key(|&(id, _, _)| id);
        out
    }

    /// An admitted frame from `from` at `incarnation` is proof of that
    /// life: raise our *outbound* tag for the peer to match, so frames
    /// we send it stop being addressed to an older life. This is how a
    /// restarted node — born assuming incarnation 0 for everyone —
    /// relearns the current incarnation of peers that restarted before
    /// it did: rejoin frames teach the roster once, and every ordinary
    /// frame after that self-heals stragglers.
    fn note_sender_life(&self, from: u32, incarnation: u32) {
        if let Some(peer) = self.peers.read().expect("peer map poisoned").get(&from) {
            peer.incarnation.fetch_max(incarnation, Ordering::AcqRel);
        }
    }

    /// Admit (or reject) an inbound frame from `from` at `incarnation`,
    /// advancing the per-sender high-water mark.
    fn admit_sender(&self, from: u32, incarnation: u32) -> bool {
        {
            let seen = self.seen.read().expect("seen map poisoned");
            match seen.get(&from) {
                Some(&cur) if incarnation < cur => return false,
                Some(&cur) if incarnation == cur => return true,
                _ => {}
            }
        }
        let mut seen = self.seen.write().expect("seen map poisoned");
        let cur = seen.entry(from).or_insert(incarnation);
        if incarnation < *cur {
            return false;
        }
        *cur = incarnation;
        true
    }
}

/// The TCP transport: one listener, one writer thread per peer.
pub struct TcpMesh {
    registry: Arc<Registry>,
    inbox_tx: Sender<Envelope>,
    /// Problem-announce frames land here instead of the inbox: they are
    /// a pre-`Start` handshake (in service mode: a job admission), not
    /// protocol traffic.
    announce_rx: Receiver<(u32, JobId, AnyInstance)>,
    /// Job submissions from `ftbb-submit` clients (service mode); the
    /// reader has already registered the submitter's stream in
    /// `submitters` by the time a submission surfaces here.
    submit_rx: Receiver<(JobId, AnyInstance)>,
    /// Per-job back-channel to the submitting client, for
    /// [`TcpMesh::send_submit_reply`].
    submitters: Arc<Mutex<HashMap<JobId, TcpStream>>>,
    /// Rejoin frames, after the registry has acted on them — for logging
    /// and tests; draining is optional.
    rejoin_rx: Receiver<RejoinFrame>,
    /// Join frames, after the registry has acted on them — for logging
    /// and tests; draining is optional.
    join_rx: Receiver<JoinFrame>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl TcpMesh {
    /// Bind `listen` and start routing as incarnation 0. `peers` lists
    /// every *other* node's `(id, address)`; the returned receiver is
    /// this node's inbox (messages from peers and from self-sends).
    pub fn bind(
        me: u32,
        listen: SocketAddr,
        peers: &[(u32, SocketAddr)],
    ) -> std::io::Result<(TcpMesh, Receiver<Envelope>)> {
        let listener = TcpListener::bind(listen)?;
        TcpMesh::from_listener(me, listener, peers)
    }

    /// Build the mesh around an already-bound listener, as incarnation 0.
    /// This is the two-phase entry point `ftbb-noded` uses: bind first
    /// (resolving `:0` to a real port), announce the address, learn the
    /// peer map, *then* start routing.
    pub fn from_listener(
        me: u32,
        listener: TcpListener,
        peers: &[(u32, SocketAddr)],
    ) -> std::io::Result<(TcpMesh, Receiver<Envelope>)> {
        TcpMesh::from_listener_incarnated(me, 0, listener, peers)
    }

    /// Build the mesh around an already-bound listener as a specific
    /// incarnation of its node — the entry point for restarted daemons
    /// (`--resume` bumps the checkpointed incarnation by one). Uses the
    /// default [`WireConfig`]; see
    /// [`TcpMesh::from_listener_incarnated_with`] for tuned transports.
    pub fn from_listener_incarnated(
        me: u32,
        incarnation: u32,
        listener: TcpListener,
        peers: &[(u32, SocketAddr)],
    ) -> std::io::Result<(TcpMesh, Receiver<Envelope>)> {
        TcpMesh::from_listener_incarnated_with(
            me,
            incarnation,
            listener,
            peers,
            WireConfig::default(),
        )
    }

    /// [`TcpMesh::from_listener_incarnated`] with explicit transport
    /// tuning ([`WireConfig`]): the startup retry window and its frame
    /// budget apply to every writer this mesh ever spawns, including
    /// peers registered later (rejoin, join, gossip discovery).
    pub fn from_listener_incarnated_with(
        me: u32,
        incarnation: u32,
        listener: TcpListener,
        peers: &[(u32, SocketAddr)],
        cfg: WireConfig,
    ) -> std::io::Result<(TcpMesh, Receiver<Envelope>)> {
        let local_addr = listener.local_addr()?;
        let counters = Arc::new(TransportCounters::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let (inbox_tx, inbox_rx) = unbounded();
        let (announce_tx, announce_rx) = unbounded();
        let (rejoin_tx, rejoin_rx) = unbounded();
        let (join_tx, join_rx) = unbounded();
        let (submit_tx, submit_rx) = unbounded();
        let submitters = Arc::new(Mutex::new(HashMap::new()));

        let registry = Arc::new(Registry {
            me,
            my_incarnation: incarnation,
            local_addr,
            cfg,
            peers: RwLock::new(HashMap::new()),
            seen: RwLock::new(HashMap::new()),
            book: Mutex::new(BookCache {
                entries: Vec::new(),
                dirty: true,
                cursor: 0,
            }),
            counters,
        });
        for &(id, addr) in peers {
            registry.register(id, addr, 0);
        }

        spawn_acceptor(
            listener,
            Arc::clone(&registry),
            ReaderSinks {
                inbox: inbox_tx.clone(),
                announce: announce_tx,
                rejoin: rejoin_tx,
                join: join_tx,
                submit: submit_tx,
                submitters: Arc::clone(&submitters),
            },
            Arc::clone(&shutdown),
        );

        Ok((
            TcpMesh {
                registry,
                inbox_tx,
                announce_rx,
                submit_rx,
                submitters,
                rejoin_rx,
                join_rx,
                local_addr,
                shutdown,
            },
            inbox_rx,
        ))
    }

    /// (Re)register a peer: new peers join the roster, a known peer at a
    /// new address gets a fresh writer, and the outbound incarnation tag
    /// is raised to `incarnation`. Rejoin frames do this automatically;
    /// the method is public for harnesses that wire rejoins themselves.
    pub fn register_peer(&self, id: u32, addr: SocketAddr, incarnation: u32) {
        self.registry.register(id, addr, incarnation);
    }

    /// Ship this node's materialized workload to every peer as a
    /// problem-announce frame (the `--problem wire` handshake). Returns
    /// `false` (sending nothing) when the encoded instance exceeds
    /// [`crate::codec::MAX_FRAME_PAYLOAD`] — receivers would reject the
    /// frame and drop the connection, so an oversize workload must travel
    /// out of band (e.g. a shared tree file) instead.
    pub fn announce_instance(&self, job: JobId, instance: &AnyInstance) -> bool {
        let registry = &self.registry;
        let frame = encode_announce(registry.me, registry.my_incarnation, job, instance);
        let peers = registry.peers.read().expect("peer map poisoned");
        if frame.exceeds_limit() {
            for _ in 0..peers.len() {
                registry.counters.record_dropped_full();
            }
            return false;
        }
        for peer in peers.values() {
            registry.counters.record_announce_sent();
            peer.enqueue(
                QueuedFrame {
                    wire_size: frame.wire_size,
                    bytes: frame.bytes.clone(),
                },
                &registry.counters,
            );
        }
        true
    }

    /// Wait (up to `timeout`) for a peer's problem announce. Returns the
    /// announcing node's id, the job the instance belongs to, and the
    /// decoded, already-validated instance.
    pub fn recv_announce(&self, timeout: Duration) -> Option<(u32, JobId, AnyInstance)> {
        self.announce_rx.recv_timeout(timeout).ok()
    }

    /// Wait (up to `timeout`) for a job submission from an `ftbb-submit`
    /// client. By the time a submission surfaces here, the reader has
    /// registered the client's stream so [`TcpMesh::send_submit_reply`]
    /// can stream `JobAccepted` / `JobResult` frames back to it.
    pub fn recv_submit(&self, timeout: Duration) -> Option<(JobId, AnyInstance)> {
        self.submit_rx.recv_timeout(timeout).ok()
    }

    /// Write an already-encoded frame back to the client that submitted
    /// `job`. Returns `false` when no submitter is registered for the job
    /// (it never submitted here, or an earlier write failed and evicted
    /// it); a failed write also evicts the stream so later replies fail
    /// fast instead of blocking on a dead socket.
    pub fn send_submit_reply(&self, job: JobId, frame: &EncodedFrame) -> bool {
        let mut submitters = self.submitters.lock().expect("submitter map poisoned");
        let Some(stream) = submitters.get_mut(&job) else {
            return false;
        };
        if stream.write_all(&frame.bytes).is_err() {
            submitters.remove(&job);
            return false;
        }
        true
    }

    /// Announce this node's rejoin to every peer: its id, its new
    /// incarnation, its (possibly new) listen address, and a summary of
    /// the state it resumed from. Receivers re-register the peer and
    /// start tagging traffic for the new life.
    pub fn send_rejoin(&self, summary: RejoinSummary) {
        let registry = &self.registry;
        let frame = encode_rejoin(&RejoinFrame {
            from: registry.me,
            incarnation: registry.my_incarnation,
            addr: self.local_addr,
            summary,
        });
        for peer in registry.peers.read().expect("peer map poisoned").values() {
            peer.enqueue(
                QueuedFrame {
                    wire_size: frame.wire_size,
                    bytes: frame.bytes.clone(),
                },
                &registry.counters,
            );
        }
    }

    /// Wait (up to `timeout`) for a peer's rejoin frame. The registry has
    /// already acted on it (writer re-pointed, incarnations bumped) by
    /// the time it surfaces here; this is for logging and tests.
    pub fn recv_rejoin(&self, timeout: Duration) -> Option<RejoinFrame> {
        self.rejoin_rx.recv_timeout(timeout).ok()
    }

    /// Introduce this node to every currently-registered peer (for a
    /// joining node: its gossip servers) with a join frame carrying its
    /// id, incarnation, and listen address. Receivers register the
    /// sender, opening the reverse route the membership Welcome needs.
    pub fn send_join(&self) {
        let registry = &self.registry;
        let frame = encode_join(&JoinFrame {
            from: registry.me,
            incarnation: registry.my_incarnation,
            addr: self.local_addr,
        });
        for peer in registry.peers.read().expect("peer map poisoned").values() {
            peer.enqueue(
                QueuedFrame {
                    wire_size: frame.wire_size,
                    bytes: frame.bytes.clone(),
                },
                &registry.counters,
            );
        }
    }

    /// Wait (up to `timeout`) for a newcomer's join frame. The registry
    /// has already registered the sender by the time it surfaces here;
    /// this is for logging and tests.
    pub fn recv_join(&self, timeout: Duration) -> Option<JoinFrame> {
        self.join_rx.recv_timeout(timeout).ok()
    }

    /// The actually bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Pre-establish a connection to every peer, waiting up to `timeout`.
    /// Writer threads dial with retry (failed attempts are counted as
    /// `connect_waits`); returns `true` once every peer has accepted a
    /// connection, `false` if the deadline passed first. Safe to call
    /// again — already-connected peers are skipped.
    pub fn connect_all(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        {
            let peers = self.registry.peers.read().expect("peer map poisoned");
            for peer in peers.values() {
                if !peer.connected.load(Ordering::Acquire) {
                    let _ = peer.queue_tx.try_send(WriterCmd::Preconnect { deadline });
                }
            }
        }
        loop {
            {
                let peers = self.registry.peers.read().expect("peer map poisoned");
                if peers.values().all(|p| p.connected.load(Ordering::Acquire)) {
                    return true;
                }
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Wait (up to `timeout`) for every peer queue to flush to the
    /// sockets, so [`Transport::stats`] reflects all completed sends.
    /// Frames parked in a startup retry window count as unflushed until
    /// they are delivered or their budget expires. Returns `true` if
    /// fully drained.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let pending: usize = self
                .registry
                .peers
                .read()
                .expect("peer map poisoned")
                .values()
                .map(|p| p.depth.load(Ordering::Acquire))
                .sum();
            if pending == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// This node's id.
    pub fn id(&self) -> u32 {
        self.registry.me
    }

    /// Which life of the node this mesh belongs to.
    pub fn incarnation(&self) -> u32 {
        self.registry.my_incarnation
    }
}

impl Transport for TcpMesh {
    fn send(&self, job: JobId, from: u32, to: u32, msg: Msg) {
        let registry = &self.registry;
        if to == registry.me {
            // Self-sends short-circuit the network, like the in-process
            // mesh delivering to the sender's own inbox.
            let wire = msg.wire_size();
            if self.inbox_tx.try_send(Envelope { job, from, msg }).is_ok() {
                registry.counters.record_send(wire, wire);
            } else {
                registry.counters.record_dropped_disconnected();
            }
            return;
        }
        // Membership traffic piggybacks this node's address book (codec
        // v4) — `(id, addr, incarnation)` entries — so the receiver opens
        // routes to members it only knows from gossip, tagged for the
        // right life. The book comes from the roster cache, capped to
        // `book_max_entries` with a rotating window (built before taking
        // the peer read lock: `book` orders before `peers`). Work/report
        // traffic ships an empty book: discovery belongs to the
        // membership plane.
        let is_bound_announce = matches!(msg, Msg::BoundAnnounce { .. });
        let (book, digest_entries) = match &msg {
            Msg::Membership(m) => {
                let digest_entries = match m {
                    MembershipMsg::Gossip(d) | MembershipMsg::Welcome(d) => d.entries.len() as u64,
                    MembershipMsg::Join { .. } => 0,
                };
                (registry.membership_book(), Some(digest_entries))
            }
            _ => (Vec::new(), None),
        };
        let peers = registry.peers.read().expect("peer map poisoned");
        let Some(peer) = peers.get(&to) else {
            registry.counters.record_dropped_no_route();
            return;
        };
        if peer.depth.load(Ordering::Acquire) >= PEER_QUEUE_CAP {
            registry.counters.record_dropped_full();
            return;
        }
        let frame = encode_frame(
            &Envelope { job, from, msg },
            registry.my_incarnation,
            peer.incarnation.load(Ordering::Acquire),
            &book,
        );
        if frame.exceeds_limit() {
            // Receivers reject oversize frames and drop the connection;
            // transmitting would only sever the link. Dropping here keeps
            // the Crash-model contract (a lost message, counted).
            registry.counters.record_dropped_full();
            return;
        }
        if let Some(digest_entries) = digest_entries {
            registry
                .counters
                .record_membership_frame(book.len() as u64, digest_entries);
        }
        if is_bound_announce {
            registry.counters.record_bound_broadcast();
        }
        // Success/drop is recorded by the writer thread once the frame
        // actually reaches (or fails to reach) the socket.
        peer.enqueue(
            QueuedFrame {
                wire_size: frame.wire_size,
                bytes: frame.bytes,
            },
            &registry.counters,
        );
    }

    fn ready(&self, timeout: Duration) -> bool {
        self.connect_all(timeout)
    }

    fn endpoints(&self) -> usize {
        self.registry.peers.read().expect("peer map poisoned").len() + 1
    }

    fn counters(&self) -> &TransportCounters {
        &self.registry.counters
    }
}

impl Drop for TcpMesh {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Wake the acceptor so it observes the flag and exits.
        let _ = TcpStream::connect_timeout(&self.local_addr, CONNECT_TIMEOUT);
        // Writer threads exit once their queue senders drop — with the
        // peer map, when the last reader releases the registry.
    }
}

/// The channels a reader routes decoded frames into, bundled so the
/// acceptor can clone them per connection.
#[derive(Clone)]
struct ReaderSinks {
    inbox: Sender<Envelope>,
    announce: Sender<(u32, JobId, AnyInstance)>,
    rejoin: Sender<RejoinFrame>,
    join: Sender<JoinFrame>,
    submit: Sender<(JobId, AnyInstance)>,
    submitters: Arc<Mutex<HashMap<JobId, TcpStream>>>,
}

fn spawn_acceptor(
    listener: TcpListener,
    registry: Arc<Registry>,
    sinks: ReaderSinks,
    shutdown: Arc<AtomicBool>,
) {
    std::thread::spawn(move || {
        while !shutdown.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _)) => {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    spawn_reader(
                        stream,
                        Arc::clone(&registry),
                        sinks.clone(),
                        Arc::clone(&shutdown),
                    );
                }
                Err(_) => {
                    // Transient accept failures (e.g. ECONNABORTED when a
                    // peer dies mid-handshake — exactly what SIGKILL plans
                    // produce) must not cost us the listener: pause and
                    // keep accepting until shutdown.
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    });
}

fn spawn_reader(
    stream: TcpStream,
    registry: Arc<Registry>,
    sinks: ReaderSinks,
    shutdown: Arc<AtomicBool>,
) {
    std::thread::spawn(move || {
        let mut stream = stream;
        // Periodic read timeouts let the reader notice shutdown even on
        // an idle connection.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        let mut decoder = FrameDecoder::new();
        let mut buf = [0u8; 16 * 1024];
        loop {
            if shutdown.load(Ordering::Acquire) {
                return;
            }
            match stream.read(&mut buf) {
                Ok(0) => return, // EOF: peer closed
                Ok(n) => {
                    decoder.push(&buf[..n]);
                    loop {
                        match decoder.try_next() {
                            Ok(Some(WireFrame::Protocol {
                                env,
                                from_incarnation,
                                to_incarnation,
                                book,
                            })) => {
                                // Frames from a sender's previous life are
                                // stale — count and drop, never deliver.
                                if !registry.admit_sender(env.from, from_incarnation) {
                                    registry.counters.record_dropped_stale();
                                    continue;
                                }
                                // The sender's current life is now proven;
                                // tag our own traffic to it accordingly —
                                // even when the frame below turns out to
                                // be addressed to OUR previous life (its
                                // from-tag is truthful regardless).
                                registry.note_sender_life(env.from, from_incarnation);
                                // A live sender's address book teaches us
                                // routes to gossip-discovered members —
                                // valid whichever of our lives the frame
                                // below was addressed to. The sender's
                                // *own* entry is authoritative (the frame
                                // proves its current address and life, so
                                // it may re-point a stale route); relayed
                                // entries only open new routes or raise
                                // incarnation tags.
                                for (id, addr, inc) in book {
                                    if id == env.from {
                                        registry.register(id, addr, from_incarnation.max(inc));
                                    } else {
                                        registry.learn_peer(id, addr, inc);
                                    }
                                }
                                // Frames for another of this node's lives
                                // are stale too.
                                if to_incarnation != registry.my_incarnation {
                                    registry.counters.record_dropped_stale();
                                    continue;
                                }
                                if sinks.inbox.try_send(env).is_err() {
                                    return; // local node gone
                                }
                            }
                            Ok(Some(WireFrame::Announce {
                                from,
                                incarnation,
                                job,
                                instance,
                            })) => {
                                if !registry.admit_sender(from, incarnation) {
                                    registry.counters.record_dropped_stale();
                                    continue;
                                }
                                registry.note_sender_life(from, incarnation);
                                registry.counters.record_announce_recv();
                                if sinks.announce.try_send((from, job, instance)).is_err() {
                                    return; // local node gone
                                }
                            }
                            Ok(Some(WireFrame::SubmitJob { job, instance })) => {
                                // A submit client is not a pool member: no
                                // registry entry, no incarnation gate. Keep
                                // its stream so accepted/result frames can
                                // travel back on the same connection.
                                if let Ok(back) = stream.try_clone() {
                                    sinks
                                        .submitters
                                        .lock()
                                        .expect("submitter map poisoned")
                                        .insert(job, back);
                                }
                                if sinks.submit.try_send((job, instance)).is_err() {
                                    return; // local node gone
                                }
                            }
                            Ok(Some(WireFrame::JobAccepted { .. }))
                            | Ok(Some(WireFrame::JobResult { .. })) => {
                                // Pool nodes never expect these (they flow
                                // gateway -> submit client); tolerate and
                                // drop rather than severing the stream.
                            }
                            Ok(Some(WireFrame::Rejoin(frame))) => {
                                if !registry.admit_sender(frame.from, frame.incarnation) {
                                    registry.counters.record_dropped_stale();
                                    continue;
                                }
                                registry.counters.record_rejoin();
                                registry.register(frame.from, frame.addr, frame.incarnation);
                                // Best-effort surface for logging/tests; a
                                // full channel is not a routing failure.
                                let _ = sinks.rejoin.try_send(frame);
                            }
                            Ok(Some(WireFrame::Join(frame))) => {
                                if !registry.admit_sender(frame.from, frame.incarnation) {
                                    registry.counters.record_dropped_stale();
                                    continue;
                                }
                                registry.counters.record_join();
                                // A join IS authoritative for the sender's
                                // address (it announces itself), unlike a
                                // relayed book entry.
                                registry.register(frame.from, frame.addr, frame.incarnation);
                                let _ = sinks.join.try_send(frame);
                            }
                            Ok(None) => break,
                            Err(_) => {
                                // Corrupt stream: treat the peer as dead.
                                let _ = stream.shutdown(Shutdown::Both);
                                return;
                            }
                        }
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => return,
            }
        }
    });
}

/// Build one peer entry: its queue, its shared flags, and its writer
/// thread.
fn spawn_peer(
    addr: SocketAddr,
    incarnation: u32,
    counters: Arc<TransportCounters>,
    cfg: WireConfig,
) -> Peer {
    let (queue_tx, queue_rx) = unbounded();
    let depth = Arc::new(AtomicUsize::new(0));
    let connected = Arc::new(AtomicBool::new(false));
    spawn_writer(
        addr,
        queue_rx,
        Arc::clone(&depth),
        Arc::clone(&connected),
        counters,
        cfg,
    );
    Peer {
        addr,
        incarnation: Arc::new(AtomicU32::new(incarnation)),
        queue_tx,
        depth,
        connected,
    }
}

/// One peer's writer: owns the outgoing connection, the startup retry
/// window, and the settlement of every queued frame's depth reservation.
struct Writer {
    addr: SocketAddr,
    cfg: WireConfig,
    depth: Arc<AtomicUsize>,
    connected: Arc<AtomicBool>,
    counters: Arc<TransportCounters>,
    conn: Option<TcpStream>,
    had_connection: bool,
    last_attempt: Option<Instant>,
    /// Startup retry window deadline, opened by the first failed send.
    /// The window is open while this is unset-or-future AND the peer has
    /// never connected; it closes for good on first connection or expiry.
    window_until: Option<Instant>,
    retry: VecDeque<QueuedFrame>,
    /// Reused coalescing buffer: multi-frame batches are gathered here
    /// and flushed with one `write_all`.
    batch_buf: Vec<u8>,
}

impl Writer {
    /// Release one frame's depth reservation — its fate is settled.
    fn settle(&self) {
        self.depth.fetch_sub(1, Ordering::AcqRel);
    }

    /// Is the startup retry window still open?
    fn window_open(&self) -> bool {
        !self.had_connection && self.window_until.is_none_or(|until| Instant::now() < until)
    }

    /// One dial attempt. On success the startup window closes forever.
    fn dial(&mut self) -> bool {
        self.last_attempt = Some(Instant::now());
        match TcpStream::connect_timeout(&self.addr, CONNECT_TIMEOUT) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                if self.had_connection {
                    self.counters.record_reconnect();
                }
                self.had_connection = true;
                self.conn = Some(stream);
                self.connected.store(true, Ordering::Release);
                true
            }
            Err(_) => false,
        }
    }

    /// Flush a batch of frames with **one** `write_all`; records each
    /// send plus the flush on success, clears the connection on failure
    /// (the whole batch is lost — caller attributes it). A single-frame
    /// batch writes straight from the frame, skipping the coalescing
    /// copy.
    fn write_batch(&mut self, frames: &[QueuedFrame]) -> bool {
        debug_assert!(!frames.is_empty(), "write_batch requires frames");
        let stream = self.conn.as_mut().expect("write_batch requires a conn");
        let result = if frames.len() == 1 {
            stream.write_all(&frames[0].bytes)
        } else {
            self.batch_buf.clear();
            for frame in frames {
                self.batch_buf.extend_from_slice(&frame.bytes);
            }
            stream.write_all(&self.batch_buf)
        };
        match result {
            Ok(()) => {
                for frame in frames {
                    self.counters
                        .record_send(frame.wire_size, frame.bytes.len());
                }
                self.counters.record_flush(frames.len() as u64);
                true
            }
            Err(_) => {
                self.conn = None;
                self.connected.store(false, Ordering::Release);
                false
            }
        }
    }

    /// Eager pre-establishment: dial with retry until connected or
    /// `deadline`. Waited-out failures are counted as `connect_waits`.
    fn preconnect(&mut self, deadline: Instant) {
        while self.conn.is_none() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return;
            }
            if self.dial() {
                return;
            }
            self.counters.record_connect_wait();
            std::thread::sleep(RETRY_POLL.min(remaining));
        }
    }

    /// Service the retry queue: dial if needed (paced), flush what the
    /// connection will take, and expire the whole queue as
    /// `dropped_startup` once the window has shut without a connection.
    fn pump(&mut self) {
        if self.retry.is_empty() {
            return;
        }
        if self.conn.is_none() && self.window_open() {
            let may_dial = self.last_attempt.is_none_or(|t| t.elapsed() >= RETRY_POLL);
            if may_dial && !self.dial() {
                self.counters.record_connect_wait();
            }
        }
        if self.conn.is_some() {
            // Drain in coalesced writes instead of one syscall per frame;
            // the batch cap bounds each flush, not the drain.
            while !self.retry.is_empty() && self.conn.is_some() {
                let n = self.retry.len().min(self.cfg.batch_max_frames.max(1));
                let batch: Vec<QueuedFrame> = self.retry.drain(..n).collect();
                if self.write_batch(&batch) {
                    for _ in 0..n {
                        self.settle();
                    }
                } else {
                    // The connection died mid-flush: the batch is lost
                    // under steady-state semantics (the window closed the
                    // moment the dial succeeded).
                    for _ in 0..n {
                        self.counters.record_dropped_disconnected();
                        self.settle();
                    }
                }
            }
        }
        if self.conn.is_none() && !self.retry.is_empty() {
            if self.had_connection {
                // The connection came up and died with frames still
                // parked: they are steady-state losses now — frames are
                // never replayed across connections (at-most-once), and
                // leaving them parked would leak their depth
                // reservations and wedge this writer for good.
                while self.retry.pop_front().is_some() {
                    self.counters.record_dropped_disconnected();
                    self.settle();
                }
            } else if !self.window_open() {
                // Budget spent without the peer ever showing up: the
                // frames revert to the Crash model's silent counted drop.
                while self.retry.pop_front().is_some() {
                    self.counters.record_dropped_startup();
                    self.settle();
                }
            }
        }
    }

    /// Park a frame in the retry queue if the budget allows, else drop
    /// it with the attribution the current phase calls for.
    fn admit_or_drop(&mut self, frame: QueuedFrame) {
        if self.window_until.is_none() {
            self.window_until = Some(Instant::now() + self.cfg.retry_window);
        }
        if self.window_open() && self.retry.len() < self.cfg.retry_max_frames {
            self.counters.record_retried();
            self.retry.push_back(frame); // depth stays reserved
        } else if !self.had_connection {
            self.counters.record_dropped_startup();
            self.settle();
        } else {
            self.counters.record_dropped_disconnected();
            self.settle();
        }
    }

    /// Deliver (or dispose of) a freshly dequeued batch of frames — one
    /// coalesced write when connected, per-frame attribution otherwise.
    fn on_frames(&mut self, mut frames: Vec<QueuedFrame>) {
        debug_assert!(!frames.is_empty(), "on_frames requires frames");
        // Older parked frames go first — never reorder past the queue.
        self.pump();
        if self.conn.is_none() {
            if !self.retry.is_empty() {
                // Still blocked behind the retry queue.
                for frame in frames.drain(..) {
                    self.admit_or_drop(frame);
                }
                return;
            }
            if self.window_open() {
                // Startup: dial now (paced) and park the batch on failure.
                let may_dial = self.last_attempt.is_none_or(|t| t.elapsed() >= RETRY_POLL);
                if !(may_dial && self.dial()) {
                    if may_dial {
                        self.counters.record_connect_wait();
                    }
                    for frame in frames.drain(..) {
                        self.admit_or_drop(frame);
                    }
                    return;
                }
            } else {
                // Steady state: one backed-off attempt, else counted drops.
                let backing_off = self
                    .last_attempt
                    .is_some_and(|t| t.elapsed() < RECONNECT_BACKOFF);
                if backing_off || !self.dial() {
                    for _ in frames.drain(..) {
                        self.counters.record_dropped_disconnected();
                        self.settle();
                    }
                    return;
                }
            }
        }
        if !self.write_batch(&frames) {
            // Connection dropped mid-run: the batch is lost (the Crash
            // model's lost datagrams); the next send retries a fresh
            // connection.
            for _ in 0..frames.len() {
                self.counters.record_dropped_disconnected();
            }
        }
        for _ in 0..frames.len() {
            self.settle();
        }
    }
}

fn spawn_writer(
    addr: SocketAddr,
    queue: Receiver<WriterCmd>,
    depth: Arc<AtomicUsize>,
    connected: Arc<AtomicBool>,
    counters: Arc<TransportCounters>,
    cfg: WireConfig,
) {
    std::thread::spawn(move || {
        let mut w = Writer {
            addr,
            cfg,
            depth,
            connected,
            counters,
            conn: None,
            had_connection: false,
            last_attempt: None,
            window_until: None,
            retry: VecDeque::new(),
            batch_buf: Vec::new(),
        };
        // Exits when the owning TcpMesh drops (queue disconnects) or the
        // peer is re-registered at a new address (its entry — and queue
        // sender — is replaced). The depth counter is decremented only
        // after a frame's fate is settled (written or dropped), so
        // `drain` can await the flush.
        loop {
            let cmd = if w.retry.is_empty() {
                match queue.recv() {
                    Ok(cmd) => Some(cmd),
                    Err(_) => break,
                }
            } else {
                // Wake regularly to pump the retry queue.
                match queue.recv_timeout(RETRY_POLL) {
                    Ok(cmd) => Some(cmd),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            };
            match cmd {
                Some(WriterCmd::Frame(first)) => {
                    // Opportunistic coalescing: greedily take whatever is
                    // *already* queued behind the first frame (up to the
                    // batch cap) and flush it all in one write. Never
                    // waits for more frames, so a lone frame ships
                    // immediately — the max-delay bound is zero.
                    let mut batch = vec![first];
                    let mut deferred_preconnect = None;
                    while batch.len() < w.cfg.batch_max_frames.max(1) {
                        match queue.try_recv() {
                            Ok(WriterCmd::Frame(frame)) => batch.push(frame),
                            Ok(WriterCmd::Preconnect { deadline }) => {
                                // Keep command order: flush the frames
                                // queued before it first.
                                deferred_preconnect = Some(deadline);
                                break;
                            }
                            Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
                        }
                    }
                    w.on_frames(batch);
                    if let Some(deadline) = deferred_preconnect {
                        w.preconnect(deadline);
                    }
                }
                Some(WriterCmd::Preconnect { deadline }) => w.preconnect(deadline),
                None => w.pump(),
            }
        }
        // Mesh gone: settle whatever the retry window still holds.
        while w.retry.pop_front().is_some() {
            w.counters.record_dropped_startup();
            w.settle();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::RecvTimeoutError;

    fn free_addr() -> SocketAddr {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    }

    fn recv_msg(rx: &Receiver<Envelope>, within: Duration) -> Option<Envelope> {
        match rx.recv_timeout(within) {
            Ok(env) => Some(env),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Rebind an address a just-dropped mesh used: its acceptor thread
    /// may hold the listener for a few more scheduler slices.
    fn bind_retry(addr: SocketAddr) -> TcpListener {
        let end = Instant::now() + Duration::from_secs(5);
        loop {
            match TcpListener::bind(addr) {
                Ok(l) => return l,
                Err(_) if Instant::now() < end => std::thread::sleep(Duration::from_millis(10)),
                Err(e) => panic!("cannot rebind {addr}: {e}"),
            }
        }
    }

    #[test]
    fn a_queued_batch_flushes_in_one_write() {
        use std::io::Read;

        // Drive a Writer directly (no writer thread) so the batch shape
        // is deterministic: ten frames in one `on_frames` call must
        // coalesce into one flush, arrive in order, and settle every
        // depth reservation.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let depth = Arc::new(AtomicUsize::new(11));
        let counters = Arc::new(TransportCounters::default());
        let mut w = Writer {
            addr: listener.local_addr().unwrap(),
            cfg: WireConfig::default(),
            depth: Arc::clone(&depth),
            connected: Arc::new(AtomicBool::new(false)),
            counters: Arc::clone(&counters),
            conn: None,
            had_connection: false,
            last_attempt: None,
            window_until: None,
            retry: VecDeque::new(),
            batch_buf: Vec::new(),
        };
        let frames: Vec<QueuedFrame> = (0..10u8)
            .map(|i| QueuedFrame {
                wire_size: 4,
                bytes: vec![i; 4].into(),
            })
            .collect();
        let expected: Vec<u8> = frames.iter().flat_map(|f| f.bytes.to_vec()).collect();
        w.on_frames(frames);

        let (mut conn, _) = listener.accept().unwrap();
        let mut got = vec![0u8; expected.len()];
        conn.read_exact(&mut got).unwrap();
        assert_eq!(got, expected, "coalescing preserves frame order");

        let stats = counters.snapshot();
        assert_eq!(stats.sent, 10);
        assert_eq!(stats.flushes, 1, "ten frames, one write: {stats:?}");
        assert_eq!(stats.frames_flushed, 10);
        assert!((stats.frames_per_flush() - 10.0).abs() < 1e-9);
        assert_eq!(depth.load(Ordering::Acquire), 1, "batch fully settled");

        // A lone frame ships immediately as its own flush — batching
        // never parks a frame to wait for company.
        w.on_frames(vec![QueuedFrame {
            wire_size: 4,
            bytes: vec![99; 4].into(),
        }]);
        let mut one = vec![0u8; 4];
        conn.read_exact(&mut one).unwrap();
        assert_eq!(one, vec![99; 4]);
        let stats = counters.snapshot();
        assert_eq!(stats.flushes, 2);
        assert_eq!(stats.frames_flushed, 11);
        assert_eq!(depth.load(Ordering::Acquire), 0);
    }

    #[test]
    fn batching_disabled_writes_one_frame_per_flush() {
        // `batch_max_frames: 1` pins the historical one-write-per-frame
        // behaviour: the retry drain must flush each parked frame alone.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let counters = Arc::new(TransportCounters::default());
        let mut w = Writer {
            addr: listener.local_addr().unwrap(),
            cfg: WireConfig {
                batch_max_frames: 1,
                ..WireConfig::default()
            },
            depth: Arc::new(AtomicUsize::new(3)),
            connected: Arc::new(AtomicBool::new(false)),
            counters: Arc::clone(&counters),
            conn: None,
            had_connection: false,
            last_attempt: None,
            window_until: None,
            retry: VecDeque::new(),
            batch_buf: Vec::new(),
        };
        assert!(w.dial(), "listener accepts");
        for i in 0..3u8 {
            w.retry.push_back(QueuedFrame {
                wire_size: 4,
                bytes: vec![i; 4].into(),
            });
        }
        w.pump();
        let stats = counters.snapshot();
        assert_eq!(stats.sent, 3);
        assert_eq!(stats.flushes, 3, "cap 1 means one frame per write");
        assert_eq!(stats.frames_flushed, 3);
        assert!((stats.frames_per_flush() - 1.0).abs() < 1e-9);
    }

    /// Deadline-bounded wait for a counter condition — no fixed sleeps.
    fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
        let end = Instant::now() + deadline;
        loop {
            if cond() {
                return true;
            }
            if Instant::now() >= end {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn two_meshes_exchange_messages() {
        let addr_a = free_addr();
        let addr_b = free_addr();
        let (mesh_a, _rx_a) = TcpMesh::bind(0, addr_a, &[(1, addr_b)]).unwrap();
        let (mesh_b, rx_b) = TcpMesh::bind(1, addr_b, &[(0, addr_a)]).unwrap();

        mesh_a.send(JobId::DEFAULT, 0, 1, Msg::WorkRequest { incumbent: 7.0 });
        let env = recv_msg(&rx_b, Duration::from_secs(5)).expect("message arrives");
        assert_eq!(env.from, 0);
        assert_eq!(env.msg, Msg::WorkRequest { incumbent: 7.0 });

        mesh_b.send(JobId::DEFAULT, 1, 0, Msg::WorkDeny { incumbent: 7.0 });
        // Flushed queues mean settled counters (the drain happy path).
        assert!(mesh_a.drain(Duration::from_secs(5)));
        assert!(mesh_b.drain(Duration::from_secs(5)));
        assert_eq!(mesh_a.stats().sent, 1);
        assert_eq!(mesh_b.stats().sent, 1);
        assert!(mesh_a.stats().sent_encoded_bytes > mesh_a.stats().sent_wire_bytes);
        // First lives both ways: nothing is stale.
        assert_eq!(mesh_a.stats().dropped_stale, 0);
        assert_eq!(mesh_b.stats().dropped_stale, 0);
    }

    #[test]
    fn self_send_delivers_locally() {
        let addr = free_addr();
        let (mesh, rx) = TcpMesh::bind(4, addr, &[]).unwrap();
        mesh.send(JobId::DEFAULT, 4, 4, Msg::WorkDeny { incumbent: 1.0 });
        let env = recv_msg(&rx, Duration::from_secs(1)).expect("self-send arrives");
        assert_eq!(env.from, 4);
        assert_eq!(mesh.stats().sent, 1);
    }

    #[test]
    fn connect_all_waits_for_a_late_listener() {
        let addr_a = free_addr();
        let addr_b = free_addr();
        let (mesh_a, _rx_a) = TcpMesh::bind(0, addr_a, &[(1, addr_b)]).unwrap();

        // Nothing listening yet: a short readiness deadline elapses.
        assert!(!mesh_a.connect_all(Duration::from_millis(80)));

        // Bring the listener up late, behind the barrier's back.
        let late = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            TcpMesh::bind(1, addr_b, &[(0, addr_a)]).unwrap()
        });
        assert!(
            mesh_a.ready(Duration::from_secs(10)),
            "ready() must observe the late listener"
        );
        assert!(
            mesh_a.stats().connect_waits >= 1,
            "waited-out dials must be counted: {:?}",
            mesh_a.stats()
        );

        // Traffic after the barrier flows without a single drop.
        let (_mesh_b, rx_b) = late.join().expect("peer thread");
        mesh_a.send(JobId::DEFAULT, 0, 1, Msg::WorkRequest { incumbent: 4.0 });
        assert!(recv_msg(&rx_b, Duration::from_secs(5)).is_some());
        assert!(mesh_a.drain(Duration::from_secs(5)));
        let stats = mesh_a.stats();
        assert_eq!(stats.sent, 1);
        assert_eq!(stats.dropped(), 0);
    }

    #[test]
    fn frames_sent_before_the_listener_exists_are_retried_and_delivered() {
        let addr_a = free_addr();
        let addr_b = free_addr();
        let (mesh_a, _rx_a) = TcpMesh::bind(0, addr_a, &[(1, addr_b)]).unwrap();

        // The startup-skew scenario: fire before the peer's listener is
        // up. Pre-fix this frame was silently dropped.
        mesh_a.send(JobId::DEFAULT, 0, 1, Msg::WorkRequest { incumbent: 42.0 });
        std::thread::sleep(Duration::from_millis(150)); // well inside the window

        let (_mesh_b, rx_b) = TcpMesh::bind(1, addr_b, &[(0, addr_a)]).unwrap();
        let env = recv_msg(&rx_b, Duration::from_secs(5)).expect("retried frame arrives");
        assert_eq!(env.msg, Msg::WorkRequest { incumbent: 42.0 });

        assert!(mesh_a.drain(Duration::from_secs(5)));
        let stats = mesh_a.stats();
        assert_eq!(stats.sent, 1);
        assert_eq!(stats.dropped(), 0, "nothing may drop: {stats:?}");
        assert!(stats.retried >= 1, "the frame was parked for retry");
        assert!(stats.connect_waits >= 1, "dials were waited out");
    }

    #[test]
    fn startup_retry_budget_expires_into_counted_startup_drops() {
        let dead = free_addr(); // nothing will ever listen here
        let addr = free_addr();
        let (mesh, _rx) = TcpMesh::bind(0, addr, &[(1, dead)]).unwrap();
        for _ in 0..3 {
            mesh.send(JobId::DEFAULT, 0, 1, Msg::WorkRequest { incumbent: 0.0 });
        }
        // The frames are parked for retry, not dropped instantly: a
        // short drain times out with the window still holding them…
        assert!(
            !mesh.drain(Duration::from_millis(100)),
            "frames must still be pending inside the retry window"
        );
        // …and a drain past the budget sees them settle as drops.
        assert!(
            mesh.drain(RETRY_WINDOW + Duration::from_secs(2)),
            "expired frames must settle so drain can finish"
        );
        let stats = mesh.stats();
        assert_eq!(stats.sent, 0);
        assert_eq!(stats.dropped_startup, 3, "{stats:?}");
        assert_eq!(stats.dropped_disconnected, 0, "{stats:?}");
        assert!(stats.retried >= 3);

        // Past the budget, semantics revert to the Crash model's instant
        // counted drop, attributed to the steady-state bucket.
        mesh.send(JobId::DEFAULT, 0, 1, Msg::WorkRequest { incumbent: 1.0 });
        assert!(mesh.drain(Duration::from_secs(2)));
        let stats = mesh.stats();
        assert_eq!(stats.dropped_startup, 3, "{stats:?}");
        assert_eq!(stats.dropped_disconnected, 1, "{stats:?}");
    }

    #[test]
    fn startup_retry_budget_is_frame_bounded() {
        let dead = free_addr();
        let addr = free_addr();
        let (mesh, _rx) = TcpMesh::bind(0, addr, &[(1, dead)]).unwrap();
        let total = RETRY_MAX_FRAMES + 10;
        for _ in 0..total {
            mesh.send(JobId::DEFAULT, 0, 1, Msg::WorkRequest { incumbent: 0.0 });
        }
        assert!(mesh.drain(RETRY_WINDOW + Duration::from_secs(3)));
        let stats = mesh.stats();
        assert_eq!(stats.sent, 0);
        assert_eq!(
            stats.dropped_startup as usize, total,
            "overflow and expiry are both startup drops: {stats:?}"
        );
        assert_eq!(
            stats.retried as usize, RETRY_MAX_FRAMES,
            "only the frame budget may park: {stats:?}"
        );
    }

    #[test]
    fn failed_enqueue_releases_the_depth_reservation() {
        // Build a peer whose writer is gone (queue receiver dropped) and
        // enqueue into the void: the depth must come back to zero, or
        // `drain` would spin to timeout forever.
        let (queue_tx, queue_rx) = unbounded();
        drop(queue_rx);
        let peer = Peer {
            addr: free_addr(),
            incarnation: Arc::new(AtomicU32::new(0)),
            queue_tx,
            depth: Arc::new(AtomicUsize::new(0)),
            connected: Arc::new(AtomicBool::new(false)),
        };
        let counters = TransportCounters::default();
        peer.enqueue(
            QueuedFrame {
                wire_size: 3,
                bytes: vec![1, 2, 3].into(),
            },
            &counters,
        );
        assert_eq!(peer.depth.load(Ordering::Acquire), 0);
        assert_eq!(counters.snapshot().dropped_disconnected, 1);
    }

    #[test]
    fn announce_reaches_every_peer_but_not_the_inbox() {
        let addr_a = free_addr();
        let addr_b = free_addr();
        let addr_c = free_addr();
        let (mesh_a, rx_a) = TcpMesh::bind(0, addr_a, &[(1, addr_b), (2, addr_c)]).unwrap();
        let (mesh_b, rx_b) = TcpMesh::bind(1, addr_b, &[(0, addr_a), (2, addr_c)]).unwrap();
        let (mesh_c, _rx_c) = TcpMesh::bind(2, addr_c, &[(0, addr_a), (1, addr_b)]).unwrap();
        assert!(mesh_a.ready(Duration::from_secs(10)));

        let instance = ftbb_bnb::AnyInstance::from(ftbb_bnb::MaxSatInstance::generate(6, 12, 9));
        assert!(mesh_a.announce_instance(JobId::from(9), &instance));
        assert_eq!(mesh_a.stats().announces_sent, 2);

        for mesh in [&mesh_b, &mesh_c] {
            let (from, job, got) = mesh
                .recv_announce(Duration::from_secs(5))
                .expect("announce arrives");
            assert_eq!(from, 0);
            assert_eq!(job, JobId::from(9));
            assert_eq!(got, instance);
            assert_eq!(mesh.stats().announces_recv, 1);
        }
        // The handshake must not leak into the protocol inbox.
        assert!(recv_msg(&rx_b, Duration::from_millis(100)).is_none());
        // Nor does the announcer hear its own announce.
        assert!(mesh_a.recv_announce(Duration::from_millis(100)).is_none());
        drop(rx_a);
    }

    #[test]
    fn oversize_announce_is_refused_and_counted_not_transmitted() {
        // ~150k nodes encode past MAX_FRAME_PAYLOAD; receivers would
        // reject the frame and drop the connection, so the mesh must
        // refuse to send it (per-peer counted drops) instead.
        let tree = ftbb_tree::generator::random_basic_tree(&ftbb_tree::generator::TreeConfig {
            target_nodes: 150_001,
            ..Default::default()
        });
        let instance = ftbb_bnb::AnyInstance::from(tree);
        assert!(crate::codec::encode_announce(0, 0, JobId::DEFAULT, &instance).exceeds_limit());

        let addr = free_addr();
        let (mesh, _rx) = TcpMesh::bind(0, addr, &[(1, free_addr()), (2, free_addr())]).unwrap();
        assert!(!mesh.announce_instance(JobId::DEFAULT, &instance));
        assert_eq!(mesh.stats().dropped_full, 2);
        assert_eq!(mesh.stats().announces_sent, 0);
        assert_eq!(mesh.stats().sent, 0);
    }

    #[test]
    fn unknown_destination_counts_no_route() {
        let addr = free_addr();
        let (mesh, _rx) = TcpMesh::bind(0, addr, &[]).unwrap();
        mesh.send(JobId::DEFAULT, 0, 9, Msg::WorkRequest { incumbent: 0.0 });
        assert_eq!(mesh.stats().dropped_no_route, 1);
    }

    #[test]
    fn reconnects_after_peer_restart() {
        let addr_a = free_addr();
        let addr_b = free_addr();
        let (mesh_a, _rx_a) = TcpMesh::bind(0, addr_a, &[(1, addr_b)]).unwrap();

        // First incarnation of peer 1, reached through the readiness
        // barrier instead of send-and-hope.
        let (mesh_b, rx_b) = TcpMesh::bind(1, addr_b, &[(0, addr_a)]).unwrap();
        assert!(mesh_a.ready(Duration::from_secs(10)));
        mesh_a.send(JobId::DEFAULT, 0, 1, Msg::WorkRequest { incumbent: 1.0 });
        assert!(recv_msg(&rx_b, Duration::from_secs(5)).is_some());
        drop(rx_b);
        drop(mesh_b);

        // Probe until the stale connection's death is observed — the
        // first writes may still land in the dead socket's buffer, so
        // keep probing under a deadline instead of sleeping blind.
        assert!(
            wait_until(Duration::from_secs(10), || {
                mesh_a.send(JobId::DEFAULT, 0, 1, Msg::WorkRequest { incumbent: 2.0 });
                mesh_a.drain(Duration::from_millis(50));
                mesh_a.stats().dropped_disconnected > 0
            }),
            "no drop recorded while peer down: {:?}",
            mesh_a.stats()
        );

        // Second incarnation on the same address: mesh_a still tags its
        // frames for incarnation 0, so deliveries reach the new listener
        // but must NOT reach its inbox — they belong to the previous
        // life, and are counted as stale drops instead.
        let listener = bind_retry(addr_b);
        let (mesh_b2, rx_b2) =
            TcpMesh::from_listener_incarnated(1, 1, listener, &[(0, addr_a)]).unwrap();
        assert_eq!(mesh_b2.incarnation(), 1);
        assert!(
            wait_until(Duration::from_secs(10), || {
                mesh_a.send(JobId::DEFAULT, 0, 1, Msg::WorkDeny { incumbent: 3.0 });
                mesh_a.drain(Duration::from_millis(50));
                mesh_b2.stats().dropped_stale > 0
            }),
            "frames addressed to the previous life must be counted stale: {:?}",
            mesh_b2.stats()
        );
        assert!(
            recv_msg(&rx_b2, Duration::from_millis(100)).is_none(),
            "a restarted listener must not receive frames addressed to its previous life"
        );
        assert!(
            mesh_a.stats().reconnects >= 1,
            "reconnect not counted: {:?}",
            mesh_a.stats()
        );

        // Once the rejoin teaches mesh_a the new incarnation (the test
        // wires it directly; daemons learn it from the rejoin frame),
        // deliveries resume.
        mesh_a.register_peer(1, addr_b, 1);
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut delivered = false;
        while Instant::now() < deadline {
            mesh_a.send(JobId::DEFAULT, 0, 1, Msg::WorkDeny { incumbent: 4.0 });
            if let Some(env) = recv_msg(&rx_b2, Duration::from_millis(100)) {
                assert!(matches!(env.msg, Msg::WorkDeny { .. }));
                delivered = true;
                break;
            }
        }
        assert!(delivered, "no delivery after the incarnation was learned");
    }

    #[test]
    fn rejoin_frame_reregisters_the_peer_and_resumes_delivery() {
        // A rejoins the mesh on a NEW address under a new incarnation:
        // its rejoin frame must re-point B's writer without any help.
        let addr_a1 = free_addr();
        let addr_b = free_addr();
        let (mesh_a1, _rx_a1) = TcpMesh::bind(7, addr_a1, &[(8, addr_b)]).unwrap();
        let (mesh_b, rx_b) = TcpMesh::bind(8, addr_b, &[(7, addr_a1)]).unwrap();
        assert!(mesh_a1.ready(Duration::from_secs(10)));
        mesh_a1.send(JobId::DEFAULT, 7, 8, Msg::WorkRequest { incumbent: 1.0 });
        assert!(recv_msg(&rx_b, Duration::from_secs(5)).is_some());

        // First life of node 7 dies; its second life binds elsewhere.
        drop(mesh_a1);
        let addr_a2 = free_addr();
        let listener = TcpListener::bind(addr_a2).unwrap();
        let (mesh_a2, rx_a2) =
            TcpMesh::from_listener_incarnated(7, 1, listener, &[(8, addr_b)]).unwrap();
        assert!(mesh_a2.ready(Duration::from_secs(10)));
        mesh_a2.send_rejoin(RejoinSummary {
            incumbent: -3.5,
            table_codes: 11,
            pool_len: 2,
        });

        // B observes the rejoin (counted + surfaced)…
        let frame = mesh_b
            .recv_rejoin(Duration::from_secs(5))
            .expect("rejoin arrives");
        assert_eq!(frame.from, 7);
        assert_eq!(frame.incarnation, 1);
        assert_eq!(frame.addr, addr_a2);
        assert_eq!(frame.summary.table_codes, 11);
        assert_eq!(mesh_b.stats().rejoins, 1);

        // …and delivery to the NEW address (old one is gone) works,
        // tagged for the new life.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut delivered = false;
        while Instant::now() < deadline {
            mesh_b.send(JobId::DEFAULT, 8, 7, Msg::WorkDeny { incumbent: 2.0 });
            if recv_msg(&rx_a2, Duration::from_millis(100)).is_some() {
                delivered = true;
                break;
            }
        }
        assert!(delivered, "rejoin must re-point the writer: {:?}", {
            mesh_b.stats()
        });
        assert_eq!(
            mesh_a2.stats().dropped_stale,
            0,
            "new-life frames are not stale"
        );
    }

    #[test]
    fn two_restarted_peers_relearn_each_other_from_ordinary_traffic() {
        // Both nodes are later lives (A is incarnation 2, B incarnation
        // 3) but each was just (re)born assuming incarnation 0 for the
        // other — the double-restart scenario, where no rejoin exchange
        // happened between the two new lives. The first frames cross
        // stale, but every admitted frame proves the sender's current
        // life, so the pair must converge to mutual delivery instead of
        // staying unidirectionally partitioned.
        let addr_a = free_addr();
        let addr_b = free_addr();
        let (mesh_a, rx_a) = {
            let l = TcpListener::bind(addr_a).unwrap();
            TcpMesh::from_listener_incarnated(11, 2, l, &[(12, addr_b)]).unwrap()
        };
        let (mesh_b, rx_b) = {
            let l = TcpListener::bind(addr_b).unwrap();
            TcpMesh::from_listener_incarnated(12, 3, l, &[(11, addr_a)]).unwrap()
        };
        assert!(mesh_a.ready(Duration::from_secs(10)));
        assert!(mesh_b.ready(Duration::from_secs(10)));

        // Keep probing in both directions until both inboxes deliver.
        let deadline = Instant::now() + Duration::from_secs(10);
        let (mut a_heard, mut b_heard) = (false, false);
        while Instant::now() < deadline && !(a_heard && b_heard) {
            mesh_a.send(JobId::DEFAULT, 11, 12, Msg::WorkRequest { incumbent: 1.0 });
            mesh_b.send(JobId::DEFAULT, 12, 11, Msg::WorkRequest { incumbent: 2.0 });
            b_heard |= recv_msg(&rx_b, Duration::from_millis(50)).is_some();
            a_heard |= recv_msg(&rx_a, Duration::from_millis(50)).is_some();
        }
        assert!(
            a_heard && b_heard,
            "both directions must heal (a_heard={a_heard}, b_heard={b_heard}): A {:?} / B {:?}",
            mesh_a.stats(),
            mesh_b.stats()
        );
        // The healing is visible: at least one side's early frames were
        // counted stale before the incarnations were learned.
        assert!(
            mesh_a.stats().dropped_stale + mesh_b.stats().dropped_stale >= 1,
            "the first crossing frames must have been stale: A {:?} / B {:?}",
            mesh_a.stats(),
            mesh_b.stats()
        );
    }

    #[test]
    fn join_frame_registers_the_newcomer_and_opens_the_reverse_route() {
        // A gossip server born with an EMPTY roster; a joiner that knows
        // only the server's address. The join frame must teach the server
        // the newcomer's route without any wiring.
        let addr_server = free_addr();
        let addr_joiner = free_addr();
        let (server, _rx_server) = TcpMesh::bind(0, addr_server, &[]).unwrap();
        let (joiner, rx_joiner) = TcpMesh::bind(7, addr_joiner, &[(0, addr_server)]).unwrap();
        assert!(joiner.ready(Duration::from_secs(10)));
        joiner.send_join();

        let frame = server
            .recv_join(Duration::from_secs(5))
            .expect("join arrives");
        assert_eq!(frame.from, 7);
        assert_eq!(frame.incarnation, 0);
        assert_eq!(frame.addr, addr_joiner);
        assert_eq!(server.stats().joins, 1);
        assert_eq!(server.endpoints(), 2, "the newcomer is registered");

        // The reverse route works: the server can now answer (the
        // membership Welcome travels exactly this way).
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut delivered = false;
        while Instant::now() < deadline {
            server.send(JobId::DEFAULT, 0, 7, Msg::WorkDeny { incumbent: 1.0 });
            if recv_msg(&rx_joiner, Duration::from_millis(100)).is_some() {
                delivered = true;
                break;
            }
        }
        assert!(delivered, "join must open the reverse route: {:?}", {
            server.stats()
        });
    }

    #[test]
    fn membership_books_teach_gossip_discovered_peers() {
        use ftbb_gossip::MembershipMsg;
        // A knows B and C; B knows only A. A's membership gossip to B
        // piggybacks A's book, which teaches B a route to C — a peer B
        // has never exchanged wiring with.
        let addr_a = free_addr();
        let addr_b = free_addr();
        let addr_c = free_addr();
        let (mesh_a, _rx_a) = TcpMesh::bind(0, addr_a, &[(1, addr_b), (2, addr_c)]).unwrap();
        let (mesh_b, rx_b) = TcpMesh::bind(1, addr_b, &[(0, addr_a)]).unwrap();
        let (_mesh_c, rx_c) = TcpMesh::bind(2, addr_c, &[(0, addr_a)]).unwrap();
        assert!(mesh_a.ready(Duration::from_secs(10)));
        assert_eq!(
            mesh_b.endpoints(),
            2,
            "B starts knowing only A (and itself)"
        );

        mesh_a.send(
            JobId::DEFAULT,
            0,
            1,
            Msg::Membership(MembershipMsg::Join { member: 0 }),
        );
        assert!(recv_msg(&rx_b, Duration::from_secs(5)).is_some());
        assert_eq!(
            mesh_b.stats().peers_discovered,
            1,
            "C was learned from A's book: {:?}",
            mesh_b.stats()
        );
        assert_eq!(mesh_b.endpoints(), 3);

        // …and the learned route carries traffic.
        mesh_b.send(JobId::DEFAULT, 1, 2, Msg::WorkRequest { incumbent: 4.0 });
        assert!(
            recv_msg(&rx_c, Duration::from_secs(5)).is_some(),
            "B must reach C through the discovered route"
        );

        // Non-membership traffic ships no book: a fresh mesh that only
        // ever saw work traffic discovers nothing.
        mesh_a.send(JobId::DEFAULT, 0, 2, Msg::WorkRequest { incumbent: 1.0 });
        assert!(recv_msg(&rx_c, Duration::from_secs(5)).is_some());
        assert_eq!(_mesh_c.stats().peers_discovered, 0);
    }

    #[test]
    fn senders_own_book_entry_repoints_a_stale_route() {
        use ftbb_gossip::MembershipMsg;
        // C believes A lives at a dead address (e.g. learned from a book
        // that went stale when A moved). A's own membership frame to C
        // carries A's self-entry, which is authoritative: C must
        // re-point its writer to A's real address and deliver again.
        let addr_a_stale = free_addr(); // nothing ever listens here
        let addr_a_real = free_addr();
        let addr_c = free_addr();
        let (mesh_a, rx_a) = TcpMesh::bind(0, addr_a_real, &[(2, addr_c)]).unwrap();
        let (mesh_c, rx_c) = TcpMesh::bind(2, addr_c, &[]).unwrap();
        mesh_c.register_peer(0, addr_a_stale, 0); // the stale route
        assert!(mesh_a.ready(Duration::from_secs(10)));

        mesh_a.send(
            JobId::DEFAULT,
            0,
            2,
            Msg::Membership(MembershipMsg::Join { member: 0 }),
        );
        assert!(recv_msg(&rx_c, Duration::from_secs(5)).is_some());

        // C's writer now points at addr_a_real: traffic flows again.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut delivered = false;
        while Instant::now() < deadline {
            mesh_c.send(JobId::DEFAULT, 2, 0, Msg::WorkDeny { incumbent: 2.0 });
            if recv_msg(&rx_a, Duration::from_millis(100)).is_some() {
                delivered = true;
                break;
            }
        }
        assert!(
            delivered,
            "the sender's own book entry must heal the stale route: {:?}",
            mesh_c.stats()
        );
    }

    #[test]
    fn book_discovered_peers_inherit_the_relayed_incarnation() {
        use ftbb_gossip::MembershipMsg;
        // A knows B is at incarnation 2 (taught directly); C learns B
        // purely from A's book and must tag its first frames for B's
        // CURRENT life, not incarnation 0 — otherwise everything C says
        // until B happens to answer would be dropped as stale.
        let addr_a = free_addr();
        let addr_b = free_addr();
        let addr_c = free_addr();
        let (mesh_a, _rx_a) = TcpMesh::bind(0, addr_a, &[(2, addr_c)]).unwrap();
        mesh_a.register_peer(1, addr_b, 2);
        let (mesh_b, rx_b) = {
            let l = TcpListener::bind(addr_b).unwrap();
            TcpMesh::from_listener_incarnated(1, 2, l, &[]).unwrap()
        };
        let (mesh_c, rx_c) = TcpMesh::bind(2, addr_c, &[(0, addr_a)]).unwrap();
        assert!(mesh_a.ready(Duration::from_secs(10)));

        mesh_a.send(
            JobId::DEFAULT,
            0,
            2,
            Msg::Membership(MembershipMsg::Join { member: 0 }),
        );
        assert!(recv_msg(&rx_c, Duration::from_secs(5)).is_some());
        assert_eq!(mesh_c.stats().peers_discovered, 1, "{:?}", mesh_c.stats());

        // C's very first frame to B is admitted by incarnation-2 B.
        mesh_c.send(JobId::DEFAULT, 2, 1, Msg::WorkRequest { incumbent: 1.0 });
        assert!(
            recv_msg(&rx_b, Duration::from_secs(5)).is_some(),
            "frames to a discovered peer must carry its relayed incarnation: {:?}",
            mesh_b.stats()
        );
        assert_eq!(mesh_b.stats().dropped_stale, 0, "{:?}", mesh_b.stats());
    }

    #[test]
    fn membership_book_is_capped_cached_and_rotates() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let peers: Vec<(u32, SocketAddr)> = (1..=9).map(|id| (id, free_addr())).collect();
        let cfg = WireConfig {
            book_max_entries: 4,
            ..WireConfig::default()
        };
        let (mesh, _rx) =
            TcpMesh::from_listener_incarnated_with(0, 7, listener, &peers, cfg).unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5 {
            let book = mesh.registry.membership_book();
            assert_eq!(book.len(), 4, "every frame carries exactly the cap");
            let me = book.iter().find(|&&(id, _, _)| id == 0);
            assert_eq!(
                me,
                Some(&(0, mesh.local_addr(), 7)),
                "own entry always rides, at this life's incarnation"
            );
            assert!(book.windows(2).all(|w| w[0].0 < w[1].0), "sorted by id");
            seen.extend(book.iter().map(|&(id, _, _)| id));
        }
        // Five frames of 1 self + 3 rotated entries cover the whole
        // ten-member roster.
        assert_eq!(seen.len(), 10, "rotation covers the roster: {seen:?}");

        // A roster change invalidates the cache: the new peer enters the
        // rotation within one full revolution.
        mesh.register_peer(10, free_addr(), 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..6 {
            seen.extend(mesh.registry.membership_book().iter().map(|&(id, _, _)| id));
        }
        assert!(seen.contains(&10), "new peer enters the book: {seen:?}");
    }

    #[test]
    fn uncapped_book_ships_the_full_roster() {
        // `book_max_entries: 0` pins the pre-scale behaviour: every
        // membership frame carries every known peer plus self.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let peers: Vec<(u32, SocketAddr)> = (1..=9).map(|id| (id, free_addr())).collect();
        let cfg = WireConfig {
            book_max_entries: 0,
            ..WireConfig::default()
        };
        let (mesh, _rx) =
            TcpMesh::from_listener_incarnated_with(0, 0, listener, &peers, cfg).unwrap();
        let book = mesh.registry.membership_book();
        assert_eq!(book.len(), 10);
        assert!(book.windows(2).all(|w| w[0].0 < w[1].0), "sorted by id");
    }

    #[test]
    fn wire_config_tunes_the_startup_retry_window() {
        // A mesh configured with a tiny startup budget: 2 frames / 100 ms
        // instead of the default 64 / 1 s. The third frame overflows the
        // frame budget instantly, and the parked two expire quickly.
        let dead = free_addr();
        let addr = free_addr();
        let listener = TcpListener::bind(addr).unwrap();
        let cfg = WireConfig {
            retry_window: Duration::from_millis(100),
            retry_max_frames: 2,
            ..WireConfig::default()
        };
        let (mesh, _rx) =
            TcpMesh::from_listener_incarnated_with(0, 0, listener, &[(1, dead)], cfg).unwrap();
        for _ in 0..5 {
            mesh.send(JobId::DEFAULT, 0, 1, Msg::WorkRequest { incumbent: 0.0 });
        }
        assert!(
            mesh.drain(Duration::from_secs(3)),
            "a 100 ms window must settle well before the default 1 s"
        );
        let stats = mesh.stats();
        assert_eq!(stats.sent, 0);
        assert_eq!(stats.dropped_startup, 5, "{stats:?}");
        assert_eq!(
            stats.retried, 2,
            "only the configured budget parks: {stats:?}"
        );
    }

    #[test]
    fn register_peer_adds_unknown_peers_dynamically() {
        // A mesh born with an empty roster learns a peer at runtime.
        let addr_a = free_addr();
        let addr_b = free_addr();
        let (mesh_a, _rx_a) = TcpMesh::bind(0, addr_a, &[]).unwrap();
        let (_mesh_b, rx_b) = TcpMesh::bind(1, addr_b, &[(0, addr_a)]).unwrap();

        mesh_a.send(JobId::DEFAULT, 0, 1, Msg::WorkRequest { incumbent: 0.0 });
        assert_eq!(
            mesh_a.stats().dropped_no_route,
            1,
            "unknown before registration"
        );
        assert_eq!(mesh_a.endpoints(), 1);

        mesh_a.register_peer(1, addr_b, 0);
        assert_eq!(mesh_a.endpoints(), 2);
        assert!(mesh_a.ready(Duration::from_secs(10)));
        mesh_a.send(JobId::DEFAULT, 0, 1, Msg::WorkRequest { incumbent: 1.0 });
        assert!(recv_msg(&rx_b, Duration::from_secs(5)).is_some());
    }

    #[test]
    fn stale_senders_are_filtered_once_a_newer_life_is_seen() {
        // B has seen A's incarnation 1; a lingering incarnation-0 mesh of
        // A (its previous life's sockets) keeps sending — those frames
        // must be dropped as stale, not delivered.
        let addr_a_old = free_addr();
        let addr_a_new = free_addr();
        let addr_b = free_addr();
        let (mesh_a_old, _rx_old) = TcpMesh::bind(3, addr_a_old, &[(4, addr_b)]).unwrap();
        let (mesh_b, rx_b) = TcpMesh::bind(4, addr_b, &[(3, addr_a_old)]).unwrap();
        assert!(mesh_a_old.ready(Duration::from_secs(10)));

        let listener = TcpListener::bind(addr_a_new).unwrap();
        let (mesh_a_new, _rx_new) =
            TcpMesh::from_listener_incarnated(3, 1, listener, &[(4, addr_b)]).unwrap();
        assert!(mesh_a_new.ready(Duration::from_secs(10)));
        mesh_a_new.send_rejoin(RejoinSummary {
            incumbent: 0.0,
            table_codes: 0,
            pool_len: 0,
        });
        assert!(mesh_b.recv_rejoin(Duration::from_secs(5)).is_some());

        // The previous life keeps talking into its established socket.
        mesh_a_old.send(JobId::DEFAULT, 3, 4, Msg::WorkRequest { incumbent: 9.0 });
        assert!(mesh_a_old.drain(Duration::from_secs(5)));
        assert!(
            wait_until(Duration::from_secs(5), || mesh_b.stats().dropped_stale >= 1),
            "stragglers from the previous life must be counted stale: {:?}",
            mesh_b.stats()
        );
        assert!(
            recv_msg(&rx_b, Duration::from_millis(100)).is_none(),
            "stragglers from the previous life must not be delivered"
        );
    }
}
