//! [`TcpMesh`] — the [`Transport`] over real sockets.
//!
//! Topology: every node listens on one TCP address and keeps one
//! *outgoing* connection per peer (so a pair of nodes shares two
//! simplex connections, one per direction). Incoming connections only
//! feed the inbox; the envelope's `from` field identifies the sender.
//!
//! Failure semantics are the paper's Crash model on real infrastructure:
//!
//! * a send to a peer that is down is **silently dropped** (counted in
//!   [`TransportCounters`]) — the protocol tolerates lost messages;
//! * writers **reconnect on drop**: the next send after a failure
//!   attempts a fresh connection (with a short backoff so dead peers
//!   cost microseconds, not round-trips), and successful re-establishment
//!   is counted;
//! * a reader that sees a corrupt frame drops the connection — a corrupt
//!   peer is indistinguishable from a dead one.

use crate::codec::{encode_frame, FrameDecoder};
use crossbeam::channel::{unbounded, Receiver, Sender};
use ftbb_core::{Msg, TransportCounters};
use ftbb_runtime::{Envelope, Transport};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Soft bound on frames queued toward one peer; beyond it sends are
/// dropped as `Full` (backpressure against a stalled or dead peer).
const PEER_QUEUE_CAP: usize = 4096;

/// How long a writer waits for a connection attempt.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(250);

/// After a failed connect, drop sends for this long before retrying —
/// keeps send() latency flat while a peer is down.
const RECONNECT_BACKOFF: Duration = Duration::from_millis(50);

struct QueuedFrame {
    wire_size: usize,
    bytes: Vec<u8>,
}

struct Peer {
    queue_tx: Sender<QueuedFrame>,
    depth: Arc<AtomicUsize>,
}

/// The TCP transport: one listener, one writer thread per peer.
pub struct TcpMesh {
    me: u32,
    peers: HashMap<u32, Peer>,
    counters: Arc<TransportCounters>,
    inbox_tx: Sender<Envelope>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl TcpMesh {
    /// Bind `listen` and start routing. `peers` lists every *other*
    /// node's `(id, address)`; the returned receiver is this node's
    /// inbox (messages from peers and from self-sends).
    pub fn bind(
        me: u32,
        listen: SocketAddr,
        peers: &[(u32, SocketAddr)],
    ) -> std::io::Result<(TcpMesh, Receiver<Envelope>)> {
        let listener = TcpListener::bind(listen)?;
        let local_addr = listener.local_addr()?;
        let counters = Arc::new(TransportCounters::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let (inbox_tx, inbox_rx) = unbounded();

        spawn_acceptor(listener, inbox_tx.clone(), Arc::clone(&shutdown));

        let mut peer_map = HashMap::new();
        for &(id, addr) in peers {
            if id == me {
                continue;
            }
            let (queue_tx, queue_rx) = unbounded();
            let depth = Arc::new(AtomicUsize::new(0));
            spawn_writer(
                id,
                addr,
                queue_rx,
                Arc::clone(&depth),
                Arc::clone(&counters),
            );
            peer_map.insert(id, Peer { queue_tx, depth });
        }

        Ok((
            TcpMesh {
                me,
                peers: peer_map,
                counters,
                inbox_tx,
                local_addr,
                shutdown,
            },
            inbox_rx,
        ))
    }

    /// The actually bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Wait (up to `timeout`) for every peer queue to flush to the
    /// sockets, so [`Transport::stats`] reflects all completed sends.
    /// Returns `true` if fully drained.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let pending: usize = self
                .peers
                .values()
                .map(|p| p.depth.load(Ordering::Acquire))
                .sum();
            if pending == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// This node's id.
    pub fn id(&self) -> u32 {
        self.me
    }
}

impl Transport for TcpMesh {
    fn send(&self, from: u32, to: u32, msg: Msg) {
        if to == self.me {
            // Self-sends short-circuit the network, like the in-process
            // mesh delivering to the sender's own inbox.
            let wire = msg.wire_size();
            if self.inbox_tx.try_send(Envelope { from, msg }).is_ok() {
                self.counters.record_send(wire, wire);
            } else {
                self.counters.record_dropped_disconnected();
            }
            return;
        }
        let Some(peer) = self.peers.get(&to) else {
            self.counters.record_dropped_no_route();
            return;
        };
        if peer.depth.load(Ordering::Acquire) >= PEER_QUEUE_CAP {
            self.counters.record_dropped_full();
            return;
        }
        let frame = encode_frame(&Envelope { from, msg });
        if frame.exceeds_limit() {
            // Receivers reject oversize frames and drop the connection;
            // transmitting would only sever the link. Dropping here keeps
            // the Crash-model contract (a lost message, counted).
            self.counters.record_dropped_full();
            return;
        }
        peer.depth.fetch_add(1, Ordering::AcqRel);
        // Success/drop is recorded by the writer thread once the frame
        // actually reaches (or fails to reach) the socket.
        if peer
            .queue_tx
            .try_send(QueuedFrame {
                wire_size: frame.wire_size,
                bytes: frame.bytes,
            })
            .is_err()
        {
            self.counters.record_dropped_disconnected();
        }
    }

    fn endpoints(&self) -> usize {
        self.peers.len() + 1
    }

    fn counters(&self) -> &TransportCounters {
        &self.counters
    }
}

impl Drop for TcpMesh {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Wake the acceptor so it observes the flag and exits.
        let _ = TcpStream::connect_timeout(&self.local_addr, CONNECT_TIMEOUT);
        // Writer threads exit when their queue senders drop with `peers`.
    }
}

fn spawn_acceptor(listener: TcpListener, inbox: Sender<Envelope>, shutdown: Arc<AtomicBool>) {
    std::thread::spawn(move || {
        while !shutdown.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _)) => {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    spawn_reader(stream, inbox.clone(), Arc::clone(&shutdown));
                }
                Err(_) => {
                    // Transient accept failures (e.g. ECONNABORTED when a
                    // peer dies mid-handshake — exactly what SIGKILL plans
                    // produce) must not cost us the listener: pause and
                    // keep accepting until shutdown.
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    });
}

fn spawn_reader(stream: TcpStream, inbox: Sender<Envelope>, shutdown: Arc<AtomicBool>) {
    std::thread::spawn(move || {
        let mut stream = stream;
        // Periodic read timeouts let the reader notice shutdown even on
        // an idle connection.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        let mut decoder = FrameDecoder::new();
        let mut buf = [0u8; 16 * 1024];
        loop {
            if shutdown.load(Ordering::Acquire) {
                return;
            }
            match stream.read(&mut buf) {
                Ok(0) => return, // EOF: peer closed
                Ok(n) => {
                    decoder.push(&buf[..n]);
                    loop {
                        match decoder.try_next() {
                            Ok(Some(env)) => {
                                if inbox.try_send(env).is_err() {
                                    return; // local node gone
                                }
                            }
                            Ok(None) => break,
                            Err(_) => {
                                // Corrupt stream: treat the peer as dead.
                                let _ = stream.shutdown(Shutdown::Both);
                                return;
                            }
                        }
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => return,
            }
        }
    });
}

/// Decrements a peer queue's depth when the frame's processing ends.
struct DepthGuard<'a>(&'a AtomicUsize);

impl Drop for DepthGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

fn spawn_writer(
    _peer_id: u32,
    addr: SocketAddr,
    queue: Receiver<QueuedFrame>,
    depth: Arc<AtomicUsize>,
    counters: Arc<TransportCounters>,
) {
    std::thread::spawn(move || {
        let mut conn: Option<TcpStream> = None;
        let mut had_connection = false;
        let mut last_attempt: Option<Instant> = None;
        // Exits when the owning TcpMesh drops (queue disconnects). The
        // depth counter is decremented only after the frame's fate is
        // settled (written or dropped), so `drain` can await the flush.
        while let Ok(frame) = queue.recv() {
            let _settled = DepthGuard(&depth);
            if conn.is_none() {
                let backing_off = last_attempt
                    .map(|t| t.elapsed() < RECONNECT_BACKOFF)
                    .unwrap_or(false);
                if backing_off {
                    counters.record_dropped_disconnected();
                    continue;
                }
                last_attempt = Some(Instant::now());
                match TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT) {
                    Ok(stream) => {
                        let _ = stream.set_nodelay(true);
                        if had_connection {
                            counters.record_reconnect();
                        }
                        had_connection = true;
                        conn = Some(stream);
                    }
                    Err(_) => {
                        counters.record_dropped_disconnected();
                        continue;
                    }
                }
            }
            let stream = conn.as_mut().expect("connected above");
            match stream.write_all(&frame.bytes) {
                Ok(()) => {
                    counters.record_send(frame.wire_size, frame.bytes.len());
                }
                Err(_) => {
                    // Connection dropped mid-run: this frame is lost (the
                    // Crash model's lost datagram); the next send retries
                    // a fresh connection.
                    counters.record_dropped_disconnected();
                    conn = None;
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::RecvTimeoutError;

    fn free_addr() -> SocketAddr {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    }

    fn recv_msg(rx: &Receiver<Envelope>, within: Duration) -> Option<Envelope> {
        match rx.recv_timeout(within) {
            Ok(env) => Some(env),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    #[test]
    fn two_meshes_exchange_messages() {
        let addr_a = free_addr();
        let addr_b = free_addr();
        let (mesh_a, _rx_a) = TcpMesh::bind(0, addr_a, &[(1, addr_b)]).unwrap();
        let (mesh_b, rx_b) = TcpMesh::bind(1, addr_b, &[(0, addr_a)]).unwrap();

        mesh_a.send(0, 1, Msg::WorkRequest { incumbent: 7.0 });
        let env = recv_msg(&rx_b, Duration::from_secs(5)).expect("message arrives");
        assert_eq!(env.from, 0);
        assert_eq!(env.msg, Msg::WorkRequest { incumbent: 7.0 });

        mesh_b.send(1, 0, Msg::WorkDeny { incumbent: 7.0 });
        // Give the writer a moment, then check counters on both sides.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(mesh_a.stats().sent, 1);
        assert_eq!(mesh_b.stats().sent, 1);
        assert!(mesh_a.stats().sent_encoded_bytes > mesh_a.stats().sent_wire_bytes);
    }

    #[test]
    fn self_send_delivers_locally() {
        let addr = free_addr();
        let (mesh, rx) = TcpMesh::bind(4, addr, &[]).unwrap();
        mesh.send(4, 4, Msg::WorkDeny { incumbent: 1.0 });
        let env = recv_msg(&rx, Duration::from_secs(1)).expect("self-send arrives");
        assert_eq!(env.from, 4);
        assert_eq!(mesh.stats().sent, 1);
    }

    #[test]
    fn send_to_dead_peer_drops_silently_and_counts() {
        let dead = free_addr(); // nothing listening
        let addr = free_addr();
        let (mesh, _rx) = TcpMesh::bind(0, addr, &[(1, dead)]).unwrap();
        for _ in 0..3 {
            mesh.send(0, 1, Msg::WorkRequest { incumbent: 0.0 });
            std::thread::sleep(Duration::from_millis(10));
        }
        // Connect refusal is fast on loopback; allow the writer to drain.
        std::thread::sleep(Duration::from_millis(200));
        let stats = mesh.stats();
        assert_eq!(stats.sent, 0);
        assert_eq!(stats.dropped_disconnected, 3);
    }

    #[test]
    fn unknown_destination_counts_no_route() {
        let addr = free_addr();
        let (mesh, _rx) = TcpMesh::bind(0, addr, &[]).unwrap();
        mesh.send(0, 9, Msg::WorkRequest { incumbent: 0.0 });
        assert_eq!(mesh.stats().dropped_no_route, 1);
    }

    #[test]
    fn reconnects_after_peer_restart() {
        let addr_a = free_addr();
        let addr_b = free_addr();
        let (mesh_a, _rx_a) = TcpMesh::bind(0, addr_a, &[(1, addr_b)]).unwrap();

        // First incarnation of peer 1.
        let (mesh_b, rx_b) = TcpMesh::bind(1, addr_b, &[(0, addr_a)]).unwrap();
        mesh_a.send(0, 1, Msg::WorkRequest { incumbent: 1.0 });
        assert!(recv_msg(&rx_b, Duration::from_secs(5)).is_some());
        drop(rx_b);
        drop(mesh_b);
        std::thread::sleep(Duration::from_millis(100));

        // Sends while the peer is down are dropped (possibly after a few
        // writes into the dead socket's buffer).
        for _ in 0..20 {
            mesh_a.send(0, 1, Msg::WorkRequest { incumbent: 2.0 });
            std::thread::sleep(Duration::from_millis(20));
            if mesh_a.stats().dropped_disconnected > 0 {
                break;
            }
        }
        assert!(
            mesh_a.stats().dropped_disconnected > 0,
            "no drop recorded while peer down"
        );

        // Second incarnation on the same address.
        let (_mesh_b2, rx_b2) = TcpMesh::bind(1, addr_b, &[(0, addr_a)]).unwrap();
        let mut delivered = false;
        for _ in 0..50 {
            mesh_a.send(0, 1, Msg::WorkDeny { incumbent: 3.0 });
            if let Some(env) = recv_msg(&rx_b2, Duration::from_millis(100)) {
                assert!(matches!(env.msg, Msg::WorkDeny { .. }));
                delivered = true;
                break;
            }
        }
        assert!(delivered, "no delivery after peer restart");
        assert!(
            mesh_a.stats().reconnects >= 1,
            "reconnect not counted: {:?}",
            mesh_a.stats()
        );
    }
}
