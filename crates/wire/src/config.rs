//! `ftbb-noded` configuration: a TOML-subset file, CLI flags, or both
//! (flags override file values).
//!
//! Example config:
//!
//! ```toml
//! id = 0
//! listen = "127.0.0.1:4500"
//! peers = ["1=127.0.0.1:4501", "2=127.0.0.1:4502"]
//! deadline_s = 30.0
//! crash_at_s = 1.5          # optional: abort() mid-run (Crash model)
//! gossip_servers = ["0"]    # optional: membership mode (id 0 serves joins)
//! suspect_after_s = 0.5     # heartbeat silence before suspicion
//!
//! [problem]
//! kind = "knapsack"         # knapsack | maxsat | tree-file | wire
//! n = 24
//! range = 80
//! correlation = "weak"
//! frac = 0.5
//! seed = 11
//! ```
//!
//! The `[problem]` section is *tagged*: `kind` selects the workload and
//! the remaining keys are per-kind. `maxsat` takes `vars`, `clauses`,
//! `seed`; `tree-file` takes `file` (a basic tree written by
//! `ftbb_tree::io::write_tree_file`); `wire` takes nothing — the node
//! learns the materialized instance from the root's problem-announce
//! frame instead of generating it locally.
//!
//! The parser covers the subset above — scalar `key = value` pairs
//! (strings, integers, floats, booleans), string arrays, comments, and
//! `[section]` headers — which keeps the daemon dependency-free.

use crate::tcp::WireConfig;
use ftbb_bnb::{AnyInstance, BasicTreeProblem, Correlation, KnapsackInstance, MaxSatInstance};
use ftbb_des::SimTime;
use ftbb_gossip::MembershipConfig;
use std::collections::HashMap;
use std::fmt;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

/// Configuration errors (parse or validation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config error: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ConfigError> {
    Err(ConfigError(msg.into()))
}

/// The canonical list of problem kinds `ftbb-noded` understands, in the
/// spelling configs and `--problem` use. The single source for the
/// `assemble` kind check; [`PROBLEM_KINDS`] (help/error text) must stay
/// in sync — a unit test enforces it.
const KINDS: [&str; 4] = ["knapsack", "maxsat", "tree-file", "wire"];

/// The problem kinds `ftbb-noded` understands, for help and error text.
pub const PROBLEM_KINDS: &str = "knapsack | maxsat | tree-file | wire";

/// Parameters of a generated 0/1 knapsack workload.
#[derive(Debug, Clone, PartialEq)]
pub struct KnapsackSpec {
    /// Number of knapsack items.
    pub n: usize,
    /// Value/weight range.
    pub range: u64,
    /// Correlation structure.
    pub correlation: Correlation,
    /// Capacity as a fraction of total weight.
    pub frac: f64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for KnapsackSpec {
    fn default() -> Self {
        KnapsackSpec {
            n: 20,
            range: 60,
            correlation: Correlation::Weak,
            frac: 0.5,
            seed: 1,
        }
    }
}

/// Parameters of a generated weighted MAX-SAT workload.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxSatSpec {
    /// Number of boolean variables (2..=64).
    pub vars: u16,
    /// Number of random clauses.
    pub clauses: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Default for MaxSatSpec {
    fn default() -> Self {
        MaxSatSpec {
            vars: 18,
            clauses: 50,
            seed: 1,
        }
    }
}

/// A recorded basic tree loaded from disk (`ftbb_tree::io` format).
#[derive(Debug, Clone, PartialEq)]
pub struct TreeFileSpec {
    /// Path to the tree file.
    pub file: PathBuf,
}

/// The problem a cluster solves. All nodes must agree on the *instance*;
/// with a generator spec (`knapsack`, `maxsat`) every node regenerates it
/// deterministically, with `tree-file` it is loaded from disk, and with
/// `wire` the node receives the materialized instance from the root's
/// problem-announce frame (codes are self-contained *given the root
/// instance*, paper §5.3.1 — however the instance got there).
#[derive(Debug, Clone, PartialEq)]
pub enum ProblemSpec {
    /// Generated 0/1 knapsack.
    Knapsack(KnapsackSpec),
    /// Generated weighted MAX-SAT.
    MaxSat(MaxSatSpec),
    /// Recorded basic tree from a file.
    TreeFile(TreeFileSpec),
    /// No local instance: learn it from a peer's announce frame.
    Wire,
}

impl Default for ProblemSpec {
    fn default() -> Self {
        ProblemSpec::Knapsack(KnapsackSpec::default())
    }
}

impl ProblemSpec {
    /// Convenience constructor for a tree-file workload.
    pub fn tree_file(file: impl Into<PathBuf>) -> Self {
        ProblemSpec::TreeFile(TreeFileSpec { file: file.into() })
    }

    /// The spec's kind tag, as written in configs and `--problem`.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ProblemSpec::Knapsack(_) => "knapsack",
            ProblemSpec::MaxSat(_) => "maxsat",
            ProblemSpec::TreeFile(_) => "tree-file",
            ProblemSpec::Wire => "wire",
        }
    }

    /// Materialize the instance. Generators are deterministic per spec;
    /// `tree-file` reads (and validates) the file; `wire` has no local
    /// instance — the daemon must wait for the announce frame instead.
    pub fn instance(&self) -> Result<AnyInstance, ConfigError> {
        match self {
            ProblemSpec::Knapsack(k) => Ok(AnyInstance::Knapsack(KnapsackInstance::generate(
                k.n,
                k.range,
                k.correlation,
                k.frac,
                k.seed,
            ))),
            ProblemSpec::MaxSat(m) => Ok(AnyInstance::MaxSat(MaxSatInstance::generate(
                m.vars, m.clauses, m.seed,
            ))),
            ProblemSpec::TreeFile(t) => {
                let tree = ftbb_tree::io::read_tree_file(&t.file).map_err(|e| {
                    ConfigError(format!("cannot load tree file {}: {e}", t.file.display()))
                })?;
                Ok(AnyInstance::RecordedTree(BasicTreeProblem::new(tree)))
            }
            ProblemSpec::Wire => {
                err("problem kind `wire` has no local instance; it arrives in the announce frame")
            }
        }
    }

    /// Render this spec as `ftbb-noded` CLI flags — the launcher's
    /// kind-aware replacement for hand-assembled knapsack flags.
    pub fn flag_args(&self) -> Vec<String> {
        let mut args = vec!["--problem".to_string(), self.kind_name().to_string()];
        match self {
            ProblemSpec::Knapsack(k) => {
                args.extend([
                    "--problem-n".into(),
                    k.n.to_string(),
                    "--problem-range".into(),
                    k.range.to_string(),
                    "--problem-correlation".into(),
                    correlation_name(k.correlation).into(),
                    "--problem-frac".into(),
                    k.frac.to_string(),
                    "--problem-seed".into(),
                    k.seed.to_string(),
                ]);
            }
            ProblemSpec::MaxSat(m) => {
                args.extend([
                    "--problem-vars".into(),
                    m.vars.to_string(),
                    "--problem-clauses".into(),
                    m.clauses.to_string(),
                    "--problem-seed".into(),
                    m.seed.to_string(),
                ]);
            }
            ProblemSpec::TreeFile(t) => {
                args.extend([
                    "--problem-file".into(),
                    t.file.to_string_lossy().into_owned(),
                ]);
            }
            ProblemSpec::Wire => {}
        }
        args
    }

    /// Validate the spec's own parameters (generator preconditions).
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self {
            ProblemSpec::Knapsack(k) => {
                if k.n == 0 {
                    return err("problem.n must be at least 1");
                }
                if k.range < 2 {
                    return err("problem.range must be at least 2");
                }
                if !(k.frac.is_finite() && k.frac > 0.0) {
                    return err("problem.frac must be a positive number");
                }
                Ok(())
            }
            ProblemSpec::MaxSat(m) => {
                if !(2..=64).contains(&m.vars) {
                    return err("problem.vars must be in 2..=64");
                }
                if m.clauses == 0 {
                    return err("problem.clauses must be at least 1");
                }
                Ok(())
            }
            ProblemSpec::TreeFile(t) => {
                if t.file.as_os_str().is_empty() {
                    return err("problem.file must be a non-empty path");
                }
                Ok(())
            }
            ProblemSpec::Wire => Ok(()),
        }
    }
}

fn correlation_from(name: &str) -> Result<Correlation, ConfigError> {
    match name {
        "uncorrelated" => Ok(Correlation::Uncorrelated),
        "weak" => Ok(Correlation::Weak),
        "strong" => Ok(Correlation::Strong),
        "subsetsum" | "subset_sum" => Ok(Correlation::SubsetSum),
        other => err(format!("unknown correlation `{other}`")),
    }
}

/// The flag/config spelling of a correlation value.
fn correlation_name(c: Correlation) -> &'static str {
    match c {
        Correlation::Uncorrelated => "uncorrelated",
        Correlation::Weak => "weak",
        Correlation::Strong => "strong",
        Correlation::SubsetSum => "subsetsum",
    }
}

/// Problem parameters as they accumulate from a config file or flags,
/// before the kind is resolved. `assemble` turns this into a
/// [`ProblemSpec`], rejecting parameters that do not belong to the
/// resolved kind (instead of silently ignoring them).
#[derive(Debug, Default)]
struct ProblemScratch {
    kind: Option<String>,
    n: Option<usize>,
    range: Option<u64>,
    correlation: Option<Correlation>,
    frac: Option<f64>,
    seed: Option<u64>,
    vars: Option<u16>,
    clauses: Option<usize>,
    file: Option<PathBuf>,
}

impl ProblemScratch {
    /// The kind this scratch resolves to (`knapsack` when none given).
    fn kind(&self) -> &str {
        self.kind.as_deref().unwrap_or(KINDS[0])
    }

    /// Merge `overrides` on top of this scratch (flags over file). When
    /// the override switches to a different kind, this scratch's
    /// parameters are discarded entirely — `--problem maxsat` must not
    /// inherit a config file's knapsack parameters.
    fn merged_with(self, overrides: ProblemScratch) -> ProblemScratch {
        if overrides.kind() != self.kind() && overrides.kind.is_some() {
            return overrides;
        }
        ProblemScratch {
            kind: overrides.kind.or(self.kind),
            n: overrides.n.or(self.n),
            range: overrides.range.or(self.range),
            correlation: overrides.correlation.or(self.correlation),
            frac: overrides.frac.or(self.frac),
            seed: overrides.seed.or(self.seed),
            vars: overrides.vars.or(self.vars),
            clauses: overrides.clauses.or(self.clauses),
            file: overrides.file.or(self.file),
        }
    }

    /// Resolve into a spec: explicit values win, per-kind defaults fill
    /// the gaps, and parameters foreign to the kind are rejected.
    fn assemble(self) -> Result<ProblemSpec, ConfigError> {
        let kind = self.kind();
        if !KINDS.contains(&kind) {
            return err(format!(
                "unsupported problem kind `{kind}` (supported: {PROBLEM_KINDS})"
            ));
        }
        // One row per parameter, declaring which kinds accept it. A new
        // kind or parameter is added here once — not once per kind — so
        // a foreign parameter can never be silently ignored.
        let ownership: [(bool, &str, &[&str]); 8] = [
            (self.n.is_some(), "problem.n / --problem-n", &["knapsack"]),
            (
                self.range.is_some(),
                "problem.range / --problem-range",
                &["knapsack"],
            ),
            (
                self.correlation.is_some(),
                "problem.correlation / --problem-correlation",
                &["knapsack"],
            ),
            (
                self.frac.is_some(),
                "problem.frac / --problem-frac",
                &["knapsack"],
            ),
            (
                self.seed.is_some(),
                "problem.seed / --problem-seed",
                &["knapsack", "maxsat"],
            ),
            (
                self.vars.is_some(),
                "problem.vars / --problem-vars",
                &["maxsat"],
            ),
            (
                self.clauses.is_some(),
                "problem.clauses / --problem-clauses",
                &["maxsat"],
            ),
            (
                self.file.is_some(),
                "problem.file / --problem-file",
                &["tree-file"],
            ),
        ];
        for (set, param, accepted_by) in ownership {
            if set && !accepted_by.contains(&kind) {
                return err(format!("`{param}` does not apply to problem kind `{kind}`"));
            }
        }
        match kind {
            "knapsack" => {
                let b = KnapsackSpec::default();
                Ok(ProblemSpec::Knapsack(KnapsackSpec {
                    n: self.n.unwrap_or(b.n),
                    range: self.range.unwrap_or(b.range),
                    correlation: self.correlation.unwrap_or(b.correlation),
                    frac: self.frac.unwrap_or(b.frac),
                    seed: self.seed.unwrap_or(b.seed),
                }))
            }
            "maxsat" => {
                let b = MaxSatSpec::default();
                Ok(ProblemSpec::MaxSat(MaxSatSpec {
                    vars: self.vars.unwrap_or(b.vars),
                    clauses: self.clauses.unwrap_or(b.clauses),
                    seed: self.seed.unwrap_or(b.seed),
                }))
            }
            "tree-file" => match self.file {
                Some(file) => Ok(ProblemSpec::TreeFile(TreeFileSpec { file })),
                None => err("problem kind `tree-file` requires problem.file / --problem-file"),
            },
            _ => Ok(ProblemSpec::Wire),
        }
    }
}

/// Everything one `ftbb-noded` process needs to run.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This node's id.
    pub id: u32,
    /// Address to listen on.
    pub listen: SocketAddr,
    /// Peer nodes as `(id, address)`.
    pub peers: Vec<(u32, SocketAddr)>,
    /// The shared problem.
    pub problem: ProblemSpec,
    /// Hard wall-clock deadline in seconds (safety valve).
    pub deadline_s: f64,
    /// If set, the process `abort()`s this many seconds after start —
    /// a config-driven crash for experiments without an external killer.
    pub crash_at_s: Option<f64>,
    /// RNG seed for protocol randomness (target selection etc.).
    pub seed: u64,
    /// Readiness-barrier budget in seconds: how long the daemon waits
    /// for connections to every peer before injecting `Start`. Peers
    /// that never show up are the Crash model's problem — the node
    /// starts anyway once the budget is spent.
    pub preconnect_s: f64,
    /// Learn the peer map from stdin instead of flags/file: after
    /// printing its `FTBB-READY` line the daemon reads `peer id=addr`
    /// lines terminated by `start`. This is how the launcher wires a
    /// `--listen 127.0.0.1:0` cluster without pre-allocating ports.
    pub peers_from_stdin: bool,
    /// Directory for checkpoint snapshots (`node-<id>.ckpt`, written
    /// atomically via write-rename). `None` disables persistence.
    pub checkpoint_dir: Option<PathBuf>,
    /// Snapshot cadence in seconds (only meaningful with a checkpoint
    /// directory; an extra snapshot is always written at startup and at
    /// clean exit).
    pub checkpoint_every_s: f64,
    /// Restore state from `checkpoint_dir/node-<id>.ckpt` instead of
    /// starting fresh: the node comes back under the next incarnation,
    /// takes its problem binding from the checkpoint (any `--problem*`
    /// flags are ignored), and announces its rejoin to the peers.
    pub resume: bool,
    /// Gossip servers as `(id, optional address)`. Non-empty enables
    /// **membership mode**: the node runs the §5.2 gossip protocol —
    /// joins through the servers, heartbeats, suspects silent members —
    /// instead of a static member list. Entries without an address
    /// (`--gossip-servers 0`) must be resolvable from the peer wiring;
    /// entries with one (`--gossip-servers 0=HOST:PORT`) need no wiring
    /// at all, which is what `--join` relies on. A node whose own id is
    /// listed *is* a gossip server.
    pub gossip_servers: Vec<(u32, Option<SocketAddr>)>,
    /// Elastic join: start knowing *only* the gossip servers (no peer
    /// flags, no stdin wiring) and enter the live cluster through the
    /// join handshake. Requires an addressed entry in `gossip_servers`.
    /// A joiner never holds the root subproblem.
    pub join: bool,
    /// Membership gossip tick interval in seconds (membership mode).
    pub gossip_interval_s: f64,
    /// Heartbeat silence before a member is suspected (`t_fail`), seconds.
    pub suspect_after_s: f64,
    /// Suspicion duration before a member is forgotten (`t_cleanup`),
    /// seconds; must be ≥ `suspect_after_s`.
    pub forget_after_s: f64,
    /// Startup retry window of the TCP transport, seconds (see
    /// [`crate::tcp::WireConfig::retry_window`]).
    pub retry_window_s: f64,
    /// Frame budget of that window (see
    /// [`crate::tcp::WireConfig::retry_max_frames`]).
    pub retry_max_frames: usize,
    /// Expansion worker threads per node. `1` (the default) keeps
    /// expansion inline in the event pump — the historical behaviour.
    /// Higher values run subproblem expansion on a work-stealing pool
    /// so multiple jobs expand in parallel; the protocol state machine
    /// stays single-threaded either way, so the optimum is identical.
    pub workers: usize,
    /// Most frames one transport flush coalesces into a single write
    /// (see [`crate::tcp::WireConfig::batch_max_frames`]); `1` disables
    /// batching.
    pub batch_max_frames: usize,
    /// Most address-book entries piggybacked per membership frame (see
    /// [`crate::tcp::WireConfig::book_max_entries`]); `0` ships the full
    /// roster on every frame, the pre-scale behavior.
    pub book_max_entries: usize,
    /// Bound-dissemination flush window in seconds (see
    /// [`ftbb_core::ProtocolConfig::bound_flush_s`]); `<= 0` disables
    /// suppression and explicit bound broadcasts — every message
    /// piggybacks the incumbent eagerly, the pre-scale behavior.
    pub bound_flush_s: f64,
    /// Service mode: instead of solving one configured problem and
    /// exiting, the daemon joins a long-lived solve pool. Jobs stream in
    /// over the shared transport — `ftbb-submit` clients send `SubmitJob`
    /// frames to any pool node (the receiver becomes that job's gateway,
    /// holds its root, and announces the instance to its peers) — and the
    /// node multiplexes every admitted job over one mesh until the
    /// deadline. The `--problem*` flags are ignored; with
    /// `--checkpoint-dir` each job persists to its own
    /// `node-<id>-job-<job>.ckpt`, and `--resume` restores *all* of them.
    pub service: bool,
    /// Structured trace file (JSONL, one event per line), opened in
    /// append mode so a restarted node's lives accumulate. `None`
    /// disables tracing.
    pub trace_file: Option<PathBuf>,
    /// Interval in seconds between `FTBB-METRICS` stdout snapshots
    /// (Figure-3 time breakdown + counters); `None` disables them.
    pub metrics_every_s: Option<f64>,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            id: 0,
            listen: "127.0.0.1:0".parse().expect("static addr"),
            peers: Vec::new(),
            problem: ProblemSpec::default(),
            deadline_s: 30.0,
            crash_at_s: None,
            seed: 1,
            preconnect_s: 5.0,
            peers_from_stdin: false,
            checkpoint_dir: None,
            checkpoint_every_s: 0.5,
            resume: false,
            gossip_servers: Vec::new(),
            join: false,
            gossip_interval_s: 0.05,
            suspect_after_s: 0.5,
            forget_after_s: 3.0,
            retry_window_s: crate::tcp::RETRY_WINDOW.as_secs_f64(),
            retry_max_frames: crate::tcp::RETRY_MAX_FRAMES,
            workers: 1,
            batch_max_frames: crate::tcp::BATCH_MAX_FRAMES,
            book_max_entries: crate::tcp::BOOK_MAX_ENTRIES,
            bound_flush_s: ftbb_core::ProtocolConfig::default().bound_flush_s,
            service: false,
            trace_file: None,
            metrics_every_s: None,
        }
    }
}

/// Member ids of a cluster (peers + self), sorted and deduplicated —
/// the canonical membership every node derives from its peer map,
/// whether that map came from flags, a file, or stdin wiring.
pub fn member_ids(id: u32, peers: &[(u32, SocketAddr)]) -> Vec<u32> {
    let mut m: Vec<u32> = peers.iter().map(|&(peer, _)| peer).collect();
    m.push(id);
    m.sort_unstable();
    m.dedup();
    m
}

impl NodeConfig {
    /// Member ids of the whole cluster (peers + self), sorted.
    pub fn members(&self) -> Vec<u32> {
        member_ids(self.id, &self.peers)
    }

    /// Is membership mode enabled (any gossip servers configured)?
    pub fn gossip_mode(&self) -> bool {
        !self.gossip_servers.is_empty()
    }

    /// Is this node itself a gossip server?
    pub fn is_gossip_server(&self) -> bool {
        self.gossip_servers.iter().any(|&(id, _)| id == self.id)
    }

    /// The membership protocol parameters, when membership mode is on.
    pub fn membership(&self) -> Option<MembershipConfig> {
        if !self.gossip_mode() {
            return None;
        }
        Some(MembershipConfig {
            gossip_interval: SimTime::from_secs_f64(self.gossip_interval_s),
            fanout: 2,
            t_fail: SimTime::from_secs_f64(self.suspect_after_s),
            t_cleanup: SimTime::from_secs_f64(self.forget_after_s),
            // Delta digests with the default per-frame cap: the scalable
            // mode (see the README's "Scaling" section).
            ..MembershipConfig::default()
        })
    }

    /// The transport tuning this daemon applies to its mesh.
    pub fn wire_config(&self) -> WireConfig {
        WireConfig {
            retry_window: Duration::from_secs_f64(self.retry_window_s),
            retry_max_frames: self.retry_max_frames,
            batch_max_frames: self.batch_max_frames,
            book_max_entries: self.book_max_entries,
        }
    }

    /// Validate cross-field invariants.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.peers.iter().any(|&(id, _)| id == self.id) {
            return err(format!("peer list contains own id {}", self.id));
        }
        if self.deadline_s <= 0.0 {
            return err("deadline_s must be positive");
        }
        if !self.preconnect_s.is_finite() || self.preconnect_s < 0.0 {
            return err("preconnect_s must be a non-negative number");
        }
        if !(self.checkpoint_every_s.is_finite() && self.checkpoint_every_s > 0.0) {
            return err("checkpoint_every_s must be a positive number");
        }
        if self.resume && self.checkpoint_dir.is_none() {
            return err("--resume needs --checkpoint-dir to know where the snapshot lives");
        }
        if let Some(every) = self.metrics_every_s {
            if !(every.is_finite() && every > 0.0) {
                return err("metrics_every_s must be a positive number");
            }
        }
        if self.workers == 0 {
            return err("workers must be at least 1");
        }
        if self.batch_max_frames == 0 {
            return err("batch_max_frames must be at least 1 (1 disables batching)");
        }
        if self.gossip_mode() {
            for &v in &[
                self.gossip_interval_s,
                self.suspect_after_s,
                self.forget_after_s,
            ] {
                if !(v.is_finite() && v > 0.0) {
                    return err("membership intervals must be positive numbers");
                }
            }
            if self.forget_after_s < self.suspect_after_s {
                return err("forget_after_s must be at least suspect_after_s");
            }
        }
        // Bounded above because it feeds `Duration::from_secs_f64`,
        // which panics on absurd values — and a retry window past an
        // hour is a configuration mistake anyway.
        if !(self.retry_window_s.is_finite() && (0.0..=3600.0).contains(&self.retry_window_s)) {
            return err("retry_window_s must be between 0 and 3600 seconds");
        }
        // Non-positive values are a deliberate off switch, so only rule
        // out NaN/infinity, which would arm a timer that never fires.
        if !self.bound_flush_s.is_finite() {
            return err("bound_flush_s must be a finite number (<= 0 disables suppression)");
        }
        if self.join {
            if !self.gossip_mode() {
                return err("--join needs --gossip-servers to know whom to join through");
            }
            if !self
                .gossip_servers
                .iter()
                .any(|&(id, addr)| id != self.id && addr.is_some())
            {
                return err(
                    "--join needs at least one gossip server given as ID=HOST:PORT \
                     (a joiner has no peer wiring to resolve bare ids against)",
                );
            }
            if !self.peers.is_empty() || self.peers_from_stdin {
                return err("--join replaces peer wiring; drop --peer/--peers-from-stdin");
            }
            if self.resume {
                return err("--join is for brand-new nodes; restarted nodes use --resume alone");
            }
            if self.problem == ProblemSpec::Wire {
                return err(
                    "--join needs a concrete problem spec (the root's announce is sent \
                     before a joiner exists)",
                );
            }
        }
        if self.service {
            if self.problem == ProblemSpec::Wire {
                return err(
                    "--service nodes receive every job's instance over the wire already; \
                     drop `--problem wire` (the --problem* flags are ignored in service mode)",
                );
            }
            if self.join {
                return err("--join is not supported with --service; wire the pool statically");
            }
        }
        self.problem.validate()?;
        if self.problem == ProblemSpec::Wire && self.peers.is_empty() && !self.peers_from_stdin {
            return err("problem kind `wire` needs at least one peer to announce the instance");
        }
        Ok(())
    }
}

// ------------------------------------------------------- TOML subset

/// A parsed scalar or string-array value.
#[derive(Debug, Clone, PartialEq)]
enum TomlValue {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    StrArray(Vec<String>),
}

impl TomlValue {
    fn parse(raw: &str, line_no: usize) -> Result<TomlValue, ConfigError> {
        let raw = raw.trim();
        if let Some(stripped) = raw.strip_prefix('"') {
            let Some(inner) = stripped.strip_suffix('"') else {
                return err(format!("line {line_no}: unterminated string"));
            };
            if inner.contains('"') {
                return err(format!("line {line_no}: embedded quotes unsupported"));
            }
            return Ok(TomlValue::Str(inner.to_string()));
        }
        if raw.starts_with('[') {
            let Some(inner) = raw.strip_prefix('[').and_then(|r| r.strip_suffix(']')) else {
                return err(format!("line {line_no}: unterminated array"));
            };
            let mut items = Vec::new();
            for part in inner.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                match TomlValue::parse(part, line_no)? {
                    TomlValue::Str(s) => items.push(s),
                    _ => return err(format!("line {line_no}: only string arrays supported")),
                }
            }
            return Ok(TomlValue::StrArray(items));
        }
        match raw {
            "true" => return Ok(TomlValue::Bool(true)),
            "false" => return Ok(TomlValue::Bool(false)),
            _ => {}
        }
        if let Ok(i) = raw.parse::<i64>() {
            return Ok(TomlValue::Int(i));
        }
        if let Ok(f) = raw.parse::<f64>() {
            return Ok(TomlValue::Float(f));
        }
        err(format!("line {line_no}: cannot parse value `{raw}`"))
    }

    fn as_u64(&self, key: &str) -> Result<u64, ConfigError> {
        match self {
            TomlValue::Int(i) if *i >= 0 => Ok(*i as u64),
            _ => err(format!("`{key}` must be a non-negative integer")),
        }
    }

    fn as_f64(&self, key: &str) -> Result<f64, ConfigError> {
        match self {
            TomlValue::Int(i) => Ok(*i as f64),
            TomlValue::Float(f) => Ok(*f),
            _ => err(format!("`{key}` must be a number")),
        }
    }

    fn as_str(&self, key: &str) -> Result<&str, ConfigError> {
        match self {
            TomlValue::Str(s) => Ok(s),
            _ => err(format!("`{key}` must be a string")),
        }
    }
}

/// Parse the TOML subset into `section.key -> value` (top-level keys have
/// no dot).
fn parse_toml_subset(text: &str) -> Result<HashMap<String, TomlValue>, ConfigError> {
    let mut out = HashMap::new();
    let mut section = String::new();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = match line.find('#') {
            // A naive comment strip is fine: config strings never contain '#'.
            Some(pos) => &line[..pos],
            None => line,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[') {
            let Some(name) = name.strip_suffix(']') else {
                return err(format!("line {line_no}: malformed section header"));
            };
            section = name.trim().to_string();
            if section.starts_with('[') {
                return err(format!("line {line_no}: array-of-tables unsupported"));
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return err(format!("line {line_no}: expected `key = value`"));
        };
        let key = key.trim();
        let full_key = if section.is_empty() {
            key.to_string()
        } else {
            format!("{section}.{key}")
        };
        out.insert(full_key, TomlValue::parse(value, line_no)?);
    }
    Ok(out)
}

/// Parse one gossip-server entry: `ID` (resolved from peer wiring) or
/// `ID=HOST:PORT` (self-contained — what `--join` requires).
pub(crate) fn parse_gossip_server(spec: &str) -> Result<(u32, Option<SocketAddr>), ConfigError> {
    let spec = spec.trim();
    if spec.contains('=') {
        let (id, addr) = parse_peer(spec)?;
        Ok((id, Some(addr)))
    } else {
        spec.parse().map(|id| (id, None)).map_err(|_| {
            ConfigError(format!(
                "bad gossip server `{spec}` (want ID or ID=HOST:PORT)"
            ))
        })
    }
}

pub(crate) fn parse_peer(spec: &str) -> Result<(u32, SocketAddr), ConfigError> {
    let Some((id, addr)) = spec.split_once('=') else {
        return err(format!("peer `{spec}` is not `id=host:port`"));
    };
    let id: u32 = id
        .trim()
        .parse()
        .map_err(|_| ConfigError(format!("bad peer id in `{spec}`")))?;
    let addr: SocketAddr = addr
        .trim()
        .parse()
        .map_err(|_| ConfigError(format!("bad peer address in `{spec}`")))?;
    Ok((id, addr))
}

/// Parse a config file's contents.
pub fn parse_config(text: &str) -> Result<NodeConfig, ConfigError> {
    let (mut cfg, problem) = parse_config_parts(text)?;
    cfg.problem = problem.assemble()?;
    cfg.validate()?;
    Ok(cfg)
}

/// Parse a config file into the non-problem fields plus the raw problem
/// scratch, deferring problem assembly and cross-field validation — so
/// `parse_args` can layer flags on top before requiredness checks run
/// (a file with `kind = "wire"` and peers given as `--peer` flags is
/// legitimate).
fn parse_config_parts(text: &str) -> Result<(NodeConfig, ProblemScratch), ConfigError> {
    let kv = parse_toml_subset(text)?;
    let mut cfg = NodeConfig::default();
    let mut problem = ProblemScratch::default();
    for (key, value) in &kv {
        match key.as_str() {
            "id" => cfg.id = value.as_u64(key)? as u32,
            "listen" => {
                cfg.listen = value
                    .as_str(key)?
                    .parse()
                    .map_err(|_| ConfigError("bad listen address".to_string()))?;
            }
            "peers" => match value {
                TomlValue::StrArray(items) => {
                    cfg.peers = items
                        .iter()
                        .map(|s| parse_peer(s))
                        .collect::<Result<_, _>>()?;
                }
                _ => return err("`peers` must be an array of \"id=host:port\" strings"),
            },
            "deadline_s" => cfg.deadline_s = value.as_f64(key)?,
            "crash_at_s" => cfg.crash_at_s = Some(value.as_f64(key)?),
            "seed" => cfg.seed = value.as_u64(key)?,
            "preconnect_s" => cfg.preconnect_s = value.as_f64(key)?,
            "peers_from_stdin" => match value {
                TomlValue::Bool(b) => cfg.peers_from_stdin = *b,
                _ => return err("`peers_from_stdin` must be a boolean"),
            },
            "checkpoint_dir" => cfg.checkpoint_dir = Some(PathBuf::from(value.as_str(key)?)),
            "checkpoint_every_s" => cfg.checkpoint_every_s = value.as_f64(key)?,
            "trace_file" => cfg.trace_file = Some(PathBuf::from(value.as_str(key)?)),
            "metrics_every_s" => cfg.metrics_every_s = Some(value.as_f64(key)?),
            "resume" => match value {
                TomlValue::Bool(b) => cfg.resume = *b,
                _ => return err("`resume` must be a boolean"),
            },
            "service" => match value {
                TomlValue::Bool(b) => cfg.service = *b,
                _ => return err("`service` must be a boolean"),
            },
            "gossip_servers" => match value {
                TomlValue::StrArray(items) => {
                    cfg.gossip_servers = items
                        .iter()
                        .map(|s| parse_gossip_server(s))
                        .collect::<Result<_, _>>()?;
                }
                _ => return err("`gossip_servers` must be an array of \"ID\" or \"ID=HOST:PORT\""),
            },
            "join" => match value {
                TomlValue::Bool(b) => cfg.join = *b,
                _ => return err("`join` must be a boolean"),
            },
            "gossip_interval_s" => cfg.gossip_interval_s = value.as_f64(key)?,
            "suspect_after_s" => cfg.suspect_after_s = value.as_f64(key)?,
            "forget_after_s" => cfg.forget_after_s = value.as_f64(key)?,
            "retry_window_s" => cfg.retry_window_s = value.as_f64(key)?,
            "retry_max_frames" => cfg.retry_max_frames = value.as_u64(key)? as usize,
            "workers" => cfg.workers = value.as_u64(key)? as usize,
            "batch_max_frames" => cfg.batch_max_frames = value.as_u64(key)? as usize,
            "book_max_entries" => cfg.book_max_entries = value.as_u64(key)? as usize,
            "bound_flush_s" => cfg.bound_flush_s = value.as_f64(key)?,
            "problem.kind" => problem.kind = Some(value.as_str(key)?.to_string()),
            "problem.n" => problem.n = Some(value.as_u64(key)? as usize),
            "problem.range" => problem.range = Some(value.as_u64(key)?),
            "problem.correlation" => {
                problem.correlation = Some(correlation_from(value.as_str(key)?)?);
            }
            "problem.frac" => problem.frac = Some(value.as_f64(key)?),
            "problem.seed" => problem.seed = Some(value.as_u64(key)?),
            "problem.vars" => {
                problem.vars = Some(
                    u16::try_from(value.as_u64(key)?)
                        .map_err(|_| ConfigError("problem.vars out of range".into()))?,
                );
            }
            "problem.clauses" => problem.clauses = Some(value.as_u64(key)? as usize),
            "problem.file" => problem.file = Some(PathBuf::from(value.as_str(key)?)),
            other => return err(format!("unknown config key `{other}`")),
        }
    }
    Ok((cfg, problem))
}

/// Parse CLI arguments (optionally seeded from `--config <file>`).
/// Flags override file values; see the crate README for the list.
pub fn parse_args(args: &[String]) -> Result<NodeConfig, ConfigError> {
    // First pass: locate --config to establish the base. The file's
    // problem section and cross-field invariants are NOT validated here
    // — flags may legitimately complete the file (e.g. `kind = "wire"`
    // in the file with peers supplied as `--peer` flags), so assembly
    // and validation run once, on the merged result.
    let mut base: Option<(NodeConfig, ProblemScratch)> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--config" {
            let Some(path) = args.get(i + 1) else {
                return err("--config requires a path");
            };
            let text = std::fs::read_to_string(path)
                .map_err(|e| ConfigError(format!("cannot read config {path}: {e}")))?;
            base = Some(parse_config_parts(&text)?);
        }
        i += 1;
    }
    let (mut cfg, file_problem) = base.unwrap_or_default();

    // Flags override file values. For the repeatable --peer flag that
    // means the first occurrence *replaces* the file's peer list (so a
    // flag-supplied topology fully wins), and later occurrences append.
    // Problem flags accumulate in their own scratch and are merged over
    // the file's at the end, so `--problem maxsat` cleanly switches
    // kinds without inheriting the file's knapsack parameters.
    let mut problem = ProblemScratch::default();
    let mut peers_replaced = false;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let take = |name: &str| -> Result<String, ConfigError> {
            match args.get(i + 1) {
                Some(v) => Ok(v.clone()),
                None => err(format!("{name} requires a value")),
            }
        };
        match flag {
            "--config" => {
                i += 2; // handled in the first pass
                continue;
            }
            "--id" => {
                cfg.id = take("--id")?
                    .parse()
                    .map_err(|_| ConfigError("bad --id".into()))?;
            }
            "--listen" => {
                cfg.listen = take("--listen")?
                    .parse()
                    .map_err(|_| ConfigError("bad --listen address".into()))?;
            }
            "--peer" => {
                if !peers_replaced {
                    cfg.peers.clear();
                    peers_replaced = true;
                }
                cfg.peers.push(parse_peer(&take("--peer")?)?);
            }
            "--deadline-s" => {
                cfg.deadline_s = take("--deadline-s")?
                    .parse()
                    .map_err(|_| ConfigError("bad --deadline-s".into()))?;
            }
            "--crash-at-s" => {
                cfg.crash_at_s = Some(
                    take("--crash-at-s")?
                        .parse()
                        .map_err(|_| ConfigError("bad --crash-at-s".into()))?,
                );
            }
            "--seed" => {
                cfg.seed = take("--seed")?
                    .parse()
                    .map_err(|_| ConfigError("bad --seed".into()))?;
            }
            "--preconnect-s" => {
                cfg.preconnect_s = take("--preconnect-s")?
                    .parse()
                    .map_err(|_| ConfigError("bad --preconnect-s".into()))?;
            }
            "--peers-from-stdin" => {
                cfg.peers_from_stdin = true;
                i += 1; // flag takes no value
                continue;
            }
            "--checkpoint-dir" => {
                cfg.checkpoint_dir = Some(PathBuf::from(take("--checkpoint-dir")?));
            }
            "--checkpoint-every-s" => {
                cfg.checkpoint_every_s = take("--checkpoint-every-s")?
                    .parse()
                    .map_err(|_| ConfigError("bad --checkpoint-every-s".into()))?;
            }
            "--trace-file" => {
                cfg.trace_file = Some(PathBuf::from(take("--trace-file")?));
            }
            "--metrics-every-s" => {
                cfg.metrics_every_s = Some(
                    take("--metrics-every-s")?
                        .parse()
                        .map_err(|_| ConfigError("bad --metrics-every-s".into()))?,
                );
            }
            "--resume" => {
                cfg.resume = true;
                i += 1; // flag takes no value
                continue;
            }
            "--service" => {
                cfg.service = true;
                i += 1; // flag takes no value
                continue;
            }
            "--gossip-servers" => {
                cfg.gossip_servers = take("--gossip-servers")?
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(parse_gossip_server)
                    .collect::<Result<_, _>>()?;
            }
            "--join" => {
                cfg.join = true;
                i += 1; // flag takes no value
                continue;
            }
            "--gossip-interval-s" => {
                cfg.gossip_interval_s = take("--gossip-interval-s")?
                    .parse()
                    .map_err(|_| ConfigError("bad --gossip-interval-s".into()))?;
            }
            "--suspect-after-s" => {
                cfg.suspect_after_s = take("--suspect-after-s")?
                    .parse()
                    .map_err(|_| ConfigError("bad --suspect-after-s".into()))?;
            }
            "--forget-after-s" => {
                cfg.forget_after_s = take("--forget-after-s")?
                    .parse()
                    .map_err(|_| ConfigError("bad --forget-after-s".into()))?;
            }
            "--retry-window-s" => {
                cfg.retry_window_s = take("--retry-window-s")?
                    .parse()
                    .map_err(|_| ConfigError("bad --retry-window-s".into()))?;
            }
            "--retry-max-frames" => {
                cfg.retry_max_frames = take("--retry-max-frames")?
                    .parse()
                    .map_err(|_| ConfigError("bad --retry-max-frames".into()))?;
            }
            "--workers" => {
                cfg.workers = take("--workers")?
                    .parse()
                    .map_err(|_| ConfigError("bad --workers".into()))?;
            }
            "--batch-max-frames" => {
                cfg.batch_max_frames = take("--batch-max-frames")?
                    .parse()
                    .map_err(|_| ConfigError("bad --batch-max-frames".into()))?;
            }
            "--book-max-entries" => {
                cfg.book_max_entries = take("--book-max-entries")?
                    .parse()
                    .map_err(|_| ConfigError("bad --book-max-entries".into()))?;
            }
            "--bound-flush-s" => {
                cfg.bound_flush_s = take("--bound-flush-s")?
                    .parse()
                    .map_err(|_| ConfigError("bad --bound-flush-s".into()))?;
            }
            "--problem" => {
                problem.kind = Some(take("--problem")?);
            }
            "--problem-n" => {
                problem.n = Some(
                    take("--problem-n")?
                        .parse()
                        .map_err(|_| ConfigError("bad --problem-n".into()))?,
                );
            }
            "--problem-range" => {
                problem.range = Some(
                    take("--problem-range")?
                        .parse()
                        .map_err(|_| ConfigError("bad --problem-range".into()))?,
                );
            }
            "--problem-correlation" => {
                problem.correlation = Some(correlation_from(&take("--problem-correlation")?)?);
            }
            "--problem-frac" => {
                problem.frac = Some(
                    take("--problem-frac")?
                        .parse()
                        .map_err(|_| ConfigError("bad --problem-frac".into()))?,
                );
            }
            "--problem-seed" => {
                problem.seed = Some(
                    take("--problem-seed")?
                        .parse()
                        .map_err(|_| ConfigError("bad --problem-seed".into()))?,
                );
            }
            "--problem-vars" => {
                problem.vars = Some(
                    take("--problem-vars")?
                        .parse()
                        .map_err(|_| ConfigError("bad --problem-vars".into()))?,
                );
            }
            "--problem-clauses" => {
                problem.clauses = Some(
                    take("--problem-clauses")?
                        .parse()
                        .map_err(|_| ConfigError("bad --problem-clauses".into()))?,
                );
            }
            "--problem-file" => {
                problem.file = Some(PathBuf::from(take("--problem-file")?));
            }
            other => return err(format!("unknown flag `{other}`")),
        }
        i += 2;
    }
    cfg.problem = file_problem.merged_with(problem).assemble()?;
    cfg.validate()?;
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# cluster node zero
id = 0
listen = "127.0.0.1:4500"
peers = ["1=127.0.0.1:4501", "2=127.0.0.1:4502"]
deadline_s = 12.5
crash_at_s = 1.5
seed = 9

[problem]
kind = "knapsack"
n = 24
range = 80
correlation = "weak"
frac = 0.5
seed = 11
"#;

    #[test]
    fn parses_full_config() {
        let cfg = parse_config(SAMPLE).unwrap();
        assert_eq!(cfg.id, 0);
        assert_eq!(cfg.listen, "127.0.0.1:4500".parse().unwrap());
        assert_eq!(cfg.peers.len(), 2);
        assert_eq!(cfg.peers[1], (2, "127.0.0.1:4502".parse().unwrap()));
        assert_eq!(cfg.deadline_s, 12.5);
        assert_eq!(cfg.crash_at_s, Some(1.5));
        assert_eq!(cfg.seed, 9);
        let ProblemSpec::Knapsack(k) = &cfg.problem else {
            panic!("expected knapsack, got {:?}", cfg.problem);
        };
        assert_eq!(k.n, 24);
        assert_eq!(k.range, 80);
        assert_eq!(k.correlation, Correlation::Weak);
        assert_eq!(k.seed, 11);
        assert_eq!(cfg.members(), vec![0, 1, 2]);
    }

    #[test]
    fn parses_maxsat_config() {
        let cfg = parse_config(
            "id = 0\n[problem]\nkind = \"maxsat\"\nvars = 14\nclauses = 40\nseed = 3\n",
        )
        .unwrap();
        assert_eq!(
            cfg.problem,
            ProblemSpec::MaxSat(MaxSatSpec {
                vars: 14,
                clauses: 40,
                seed: 3,
            })
        );
        // Deterministic per spec, like every generator kind.
        assert_eq!(
            cfg.problem.instance().unwrap(),
            cfg.problem.instance().unwrap()
        );
    }

    #[test]
    fn parses_tree_file_and_wire_configs() {
        let cfg =
            parse_config("[problem]\nkind = \"tree-file\"\nfile = \"/tmp/t.ftbb\"\n").unwrap();
        assert_eq!(cfg.problem, ProblemSpec::tree_file("/tmp/t.ftbb"));

        // `wire` has no params and no local instance; it needs a peer to
        // hear the announce from.
        let cfg =
            parse_config("id = 1\npeers = [\"0=127.0.0.1:4500\"]\n[problem]\nkind = \"wire\"\n")
                .unwrap();
        assert_eq!(cfg.problem, ProblemSpec::Wire);
        assert!(cfg.problem.instance().is_err());
        assert!(parse_config("[problem]\nkind = \"wire\"\n").is_err());
    }

    #[test]
    fn unknown_kind_error_lists_supported_kinds() {
        let e = parse_config("[problem]\nkind = \"sudoku\"\n").unwrap_err();
        for kind in KINDS {
            assert!(e.0.contains(kind), "`{kind}` missing from: {e}");
        }
    }

    #[test]
    fn kind_list_spellings_agree() {
        // The canonical KINDS slice, the help/error text, and every
        // spec's kind_name must not drift apart.
        assert_eq!(PROBLEM_KINDS, KINDS.join(" | "));
        for spec in [
            ProblemSpec::Knapsack(KnapsackSpec::default()),
            ProblemSpec::MaxSat(MaxSatSpec::default()),
            ProblemSpec::tree_file("/tmp/t.ftbb"),
            ProblemSpec::Wire,
        ] {
            assert!(KINDS.contains(&spec.kind_name()), "{}", spec.kind_name());
        }
    }

    #[test]
    fn flags_complete_a_partial_config_file() {
        // The file alone would be invalid; flags legitimately complete
        // it, and only the merged result is validated.
        let dir = std::env::temp_dir().join("ftbb-wire-config-partial-test");
        std::fs::create_dir_all(&dir).unwrap();

        // wire kind in the file, peers from flags.
        let wire_path = dir.join("wire.toml");
        std::fs::write(&wire_path, "id = 1\n[problem]\nkind = \"wire\"\n").unwrap();
        let args: Vec<String> = [
            "--config",
            wire_path.to_str().unwrap(),
            "--peer",
            "0=127.0.0.1:4500",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cfg = parse_args(&args).unwrap();
        assert_eq!(cfg.problem, ProblemSpec::Wire);
        assert_eq!(cfg.peers.len(), 1);

        // tree-file kind in the file, path from flags.
        let tree_path = dir.join("tree.toml");
        std::fs::write(&tree_path, "[problem]\nkind = \"tree-file\"\n").unwrap();
        let args: Vec<String> = [
            "--config",
            tree_path.to_str().unwrap(),
            "--problem-file",
            "/tmp/w.ftbb",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cfg = parse_args(&args).unwrap();
        assert_eq!(cfg.problem, ProblemSpec::tree_file("/tmp/w.ftbb"));

        // Standalone, the same files still fail (nothing completes them).
        let solo: Vec<String> = ["--config", wire_path.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_args(&solo).is_err());
        std::fs::remove_file(&wire_path).ok();
        std::fs::remove_file(&tree_path).ok();
    }

    #[test]
    fn foreign_params_are_rejected_not_ignored() {
        // Knapsack params under a maxsat kind (and vice versa) are
        // configuration mistakes, loudly reported.
        assert!(parse_config("[problem]\nkind = \"maxsat\"\nn = 24\n").is_err());
        assert!(parse_config("[problem]\nkind = \"knapsack\"\nvars = 8\n").is_err());
        assert!(parse_config("[problem]\nkind = \"wire\"\nseed = 3\n").is_err());
        assert!(parse_config("[problem]\nkind = \"tree-file\"\n").is_err());

        let args: Vec<String> = ["--problem", "maxsat", "--problem-frac", "0.5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_args(&args).is_err());
    }

    #[test]
    fn problem_flag_switches_kind_without_inheriting_params() {
        let dir = std::env::temp_dir().join("ftbb-wire-config-kind-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("node.toml");
        std::fs::write(&path, SAMPLE).unwrap();
        // The file is knapsack (n=24 etc.); switching to maxsat on the
        // command line must not drag knapsack params along.
        let args: Vec<String> = [
            "--config",
            path.to_str().unwrap(),
            "--problem",
            "maxsat",
            "--problem-vars",
            "12",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cfg = parse_args(&args).unwrap();
        assert_eq!(
            cfg.problem,
            ProblemSpec::MaxSat(MaxSatSpec {
                vars: 12,
                ..Default::default()
            })
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flag_args_round_trip_through_the_parser() {
        let specs = [
            ProblemSpec::Knapsack(KnapsackSpec {
                n: 30,
                range: 99,
                correlation: Correlation::SubsetSum,
                frac: 0.4,
                seed: 17,
            }),
            ProblemSpec::MaxSat(MaxSatSpec {
                vars: 21,
                clauses: 77,
                seed: 5,
            }),
            ProblemSpec::tree_file("/tmp/workload.ftbb"),
        ];
        for spec in specs {
            let mut args = spec.flag_args();
            // `wire` needs peers; generators don't. Give every spec one.
            args.extend(["--peer".to_string(), "1=127.0.0.1:4501".to_string()]);
            let cfg = parse_args(&args).unwrap();
            assert_eq!(cfg.problem, spec, "flags: {args:?}");
        }
        let mut args = ProblemSpec::Wire.flag_args();
        args.extend(["--peer".to_string(), "1=127.0.0.1:4501".to_string()]);
        assert_eq!(parse_args(&args).unwrap().problem, ProblemSpec::Wire);
    }

    #[test]
    fn flags_override_file() {
        let dir = std::env::temp_dir().join("ftbb-wire-config-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("node.toml");
        std::fs::write(&path, SAMPLE).unwrap();
        // Without new peer flags the file's peer list stands, so taking
        // id 2 (listed as a peer in the file) must be rejected.
        let args: Vec<String> = [
            "--config",
            path.to_str().unwrap(),
            "--id",
            "2",
            "--listen",
            "127.0.0.1:4502",
            "--problem-seed",
            "77",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let err = parse_args(&args).unwrap_err();
        assert!(err.0.contains("own id"), "{err}");

        // The first --peer flag REPLACES the file's peer list (flags
        // override file values), so the same identity switch works once
        // the topology is given on the command line.
        let args: Vec<String> = [
            "--config",
            path.to_str().unwrap(),
            "--id",
            "2",
            "--listen",
            "127.0.0.1:4502",
            "--peer",
            "0=127.0.0.1:4500",
            "--peer",
            "1=127.0.0.1:4501",
            "--problem-seed",
            "77",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cfg = parse_args(&args).unwrap();
        assert_eq!(cfg.id, 2);
        let ProblemSpec::Knapsack(k) = &cfg.problem else {
            panic!("expected knapsack");
        };
        assert_eq!(k.seed, 77);
        assert_eq!(k.n, 24, "non-overridden file values survive");
        assert_eq!(cfg.members(), vec![0, 1, 2]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_config("id = ").is_err());
        assert!(parse_config("peers = [3]").is_err());
        assert!(parse_config("listen = \"not-an-addr\"").is_err());
        assert!(parse_config("mystery = 1").is_err());
        assert!(parse_config("[problem\nn = 3").is_err());
        assert!(parse_config("id = 0\npeers = [\"0=127.0.0.1:1\"]").is_err());
        assert!(parse_config("deadline_s = -1").is_err());
        assert!(parse_config("preconnect_s = -0.5").is_err());
        assert!(parse_config("peers_from_stdin = 3").is_err());
        assert!(parse_config("[problem]\ncorrelation = \"psychic\"").is_err());
    }

    #[test]
    fn parses_lifecycle_options() {
        let cfg = parse_config(
            "checkpoint_dir = \"/tmp/ckpts\"\ncheckpoint_every_s = 0.25\nresume = true\n",
        )
        .unwrap();
        assert_eq!(cfg.checkpoint_dir, Some(PathBuf::from("/tmp/ckpts")));
        assert_eq!(cfg.checkpoint_every_s, 0.25);
        assert!(cfg.resume);

        let args: Vec<String> = [
            "--checkpoint-dir",
            "/tmp/elsewhere",
            "--checkpoint-every-s",
            "1.5",
            "--resume",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cfg = parse_args(&args).unwrap();
        assert_eq!(cfg.checkpoint_dir, Some(PathBuf::from("/tmp/elsewhere")));
        assert_eq!(cfg.checkpoint_every_s, 1.5);
        assert!(cfg.resume);

        // Resume without a checkpoint directory has nothing to resume
        // from; a non-positive cadence would never snapshot.
        assert!(parse_config("resume = true\n").is_err());
        assert!(parse_config("checkpoint_every_s = 0\n").is_err());
        assert!(parse_config("checkpoint_every_s = -2\n").is_err());
        assert!(parse_config("resume = 3\n").is_err());
    }

    #[test]
    fn parses_telemetry_options() {
        let cfg = parse_config("trace_file = \"/tmp/n0.jsonl\"\nmetrics_every_s = 0.5\n").unwrap();
        assert_eq!(cfg.trace_file, Some(PathBuf::from("/tmp/n0.jsonl")));
        assert_eq!(cfg.metrics_every_s, Some(0.5));

        let args: Vec<String> = ["--trace-file", "/tmp/n1.jsonl", "--metrics-every-s", "0.25"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cfg = parse_args(&args).unwrap();
        assert_eq!(cfg.trace_file, Some(PathBuf::from("/tmp/n1.jsonl")));
        assert_eq!(cfg.metrics_every_s, Some(0.25));

        // Defaults: telemetry off.
        let cfg = parse_config("").unwrap();
        assert_eq!(cfg.trace_file, None);
        assert_eq!(cfg.metrics_every_s, None);

        // A cadence that never fires is a config mistake, not a mode.
        assert!(parse_config("metrics_every_s = 0\n").is_err());
        assert!(parse_config("metrics_every_s = -1\n").is_err());
    }

    #[test]
    fn parses_gossip_and_transport_options() {
        let cfg = parse_config(
            "gossip_servers = [\"0\", \"3=127.0.0.1:4503\"]\ngossip_interval_s = 0.1\n\
             suspect_after_s = 0.4\nforget_after_s = 2.0\nretry_window_s = 0.25\n\
             retry_max_frames = 16\n",
        )
        .unwrap();
        assert!(cfg.gossip_mode());
        assert!(cfg.is_gossip_server(), "own id 0 is listed as a server");
        assert_eq!(
            cfg.gossip_servers,
            vec![(0, None), (3, Some("127.0.0.1:4503".parse().unwrap()))]
        );
        let m = cfg.membership().expect("membership mode");
        assert_eq!(m.gossip_interval, SimTime::from_secs_f64(0.1));
        assert_eq!(m.t_fail, SimTime::from_secs_f64(0.4));
        assert_eq!(m.t_cleanup, SimTime::from_secs_f64(2.0));
        let w = cfg.wire_config();
        assert_eq!(w.retry_window, Duration::from_secs_f64(0.25));
        assert_eq!(w.retry_max_frames, 16);

        // Defaults: static mode, historical transport constants.
        let plain = NodeConfig::default();
        assert!(!plain.gossip_mode());
        assert_eq!(plain.membership(), None);
        assert_eq!(plain.wire_config(), WireConfig::default());

        // Inverted membership timeouts are a configuration mistake.
        assert!(parse_config(
            "gossip_servers = [\"0\"]\nsuspect_after_s = 2.0\nforget_after_s = 1.0\n"
        )
        .is_err());
    }

    #[test]
    fn join_mode_is_validated() {
        let ok: Vec<String> = [
            "--id",
            "5",
            "--join",
            "--gossip-servers",
            "0=127.0.0.1:4500",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cfg = parse_args(&ok).unwrap();
        assert!(cfg.join && cfg.gossip_mode() && !cfg.is_gossip_server());
        assert_eq!(cfg.gossip_servers.len(), 1);

        // --join without servers, with bare-id servers only, with peer
        // wiring, with --resume, or with --problem wire: all rejected.
        let cases: Vec<Vec<&str>> = vec![
            vec!["--id", "5", "--join"],
            vec!["--id", "5", "--join", "--gossip-servers", "0"],
            vec![
                "--id",
                "5",
                "--join",
                "--gossip-servers",
                "0=127.0.0.1:4500",
                "--peer",
                "1=127.0.0.1:4501",
            ],
            vec![
                "--id",
                "5",
                "--join",
                "--gossip-servers",
                "0=127.0.0.1:4500",
                "--checkpoint-dir",
                "/tmp/x",
                "--resume",
            ],
            vec![
                "--id",
                "5",
                "--join",
                "--gossip-servers",
                "0=127.0.0.1:4500",
                "--problem",
                "wire",
            ],
        ];
        for case in cases {
            let args: Vec<String> = case.iter().map(|s| s.to_string()).collect();
            assert!(parse_args(&args).is_err(), "{args:?} must be rejected");
        }
    }

    #[test]
    fn parses_service_mode_options() {
        let cfg = parse_config("service = true\n").unwrap();
        assert!(cfg.service);

        let args: Vec<String> = ["--service"].iter().map(|s| s.to_string()).collect();
        let cfg = parse_args(&args).unwrap();
        assert!(cfg.service);
        assert!(!NodeConfig::default().service);

        // Service nodes get every instance over the wire; `--problem
        // wire` is the single-run announce handshake, not a job stream.
        assert!(parse_config(
            "service = true\npeers = [\"1=127.0.0.1:4501\"]\n[problem]\nkind = \"wire\"\n"
        )
        .is_err());
        // Elastic join of a service pool is out of scope.
        assert!(parse_config("service = true\njoin = true\ngossip_servers = [\"0\"]\n").is_err());
        assert!(parse_config("service = 3\n").is_err());
    }

    #[test]
    fn parses_startup_wiring_options() {
        let cfg = parse_config("preconnect_s = 2.5\npeers_from_stdin = true").unwrap();
        assert_eq!(cfg.preconnect_s, 2.5);
        assert!(cfg.peers_from_stdin);

        let args: Vec<String> = ["--peers-from-stdin", "--preconnect-s", "0.25"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cfg = parse_args(&args).unwrap();
        assert!(cfg.peers_from_stdin);
        assert_eq!(cfg.preconnect_s, 0.25);
    }

    #[test]
    fn same_spec_same_instance_across_nodes() {
        let spec = ProblemSpec::default();
        let a = spec.instance().unwrap();
        let b = spec.instance().unwrap();
        assert_eq!(a, b, "instance generation must be deterministic");
    }

    #[test]
    fn tree_file_spec_loads_a_written_tree() {
        let dir = std::env::temp_dir().join("ftbb-wire-treefile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.ftbb");
        let tree = ftbb_tree::basic_tree::fig1_example();
        ftbb_tree::io::write_tree_file(&tree, &path).unwrap();

        let spec = ProblemSpec::tree_file(&path);
        let instance = spec.instance().unwrap();
        assert_eq!(instance, AnyInstance::from(tree));

        let missing = ProblemSpec::tree_file(dir.join("nope.ftbb"));
        assert!(missing.instance().is_err());
        std::fs::remove_file(&path).ok();
    }
}
