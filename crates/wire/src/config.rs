//! `ftbb-noded` configuration: a TOML-subset file, CLI flags, or both
//! (flags override file values).
//!
//! Example config:
//!
//! ```toml
//! id = 0
//! listen = "127.0.0.1:4500"
//! peers = ["1=127.0.0.1:4501", "2=127.0.0.1:4502"]
//! deadline_s = 30.0
//! crash_at_s = 1.5          # optional: abort() mid-run (Crash model)
//!
//! [problem]
//! kind = "knapsack"
//! n = 24
//! range = 80
//! correlation = "weak"
//! frac = 0.5
//! seed = 11
//! ```
//!
//! The parser covers the subset above — scalar `key = value` pairs
//! (strings, integers, floats, booleans), string arrays, comments, and
//! `[section]` headers — which keeps the daemon dependency-free.

use ftbb_bnb::{Correlation, KnapsackInstance};
use std::collections::HashMap;
use std::fmt;
use std::net::SocketAddr;

/// Configuration errors (parse or validation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config error: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ConfigError> {
    Err(ConfigError(msg.into()))
}

/// The problem a cluster solves. All nodes must agree on this spec; the
/// instance is regenerated deterministically on every node (codes are
/// self-contained *given the root instance*, paper §5.3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct ProblemSpec {
    /// Number of knapsack items.
    pub n: usize,
    /// Value/weight range.
    pub range: u64,
    /// Correlation structure.
    pub correlation: Correlation,
    /// Capacity as a fraction of total weight.
    pub frac: f64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for ProblemSpec {
    fn default() -> Self {
        ProblemSpec {
            n: 20,
            range: 60,
            correlation: Correlation::Weak,
            frac: 0.5,
            seed: 1,
        }
    }
}

impl ProblemSpec {
    /// Materialize the knapsack instance.
    pub fn instance(&self) -> KnapsackInstance {
        KnapsackInstance::generate(self.n, self.range, self.correlation, self.frac, self.seed)
    }

    fn correlation_from(name: &str) -> Result<Correlation, ConfigError> {
        match name {
            "uncorrelated" => Ok(Correlation::Uncorrelated),
            "weak" => Ok(Correlation::Weak),
            "strong" => Ok(Correlation::Strong),
            "subsetsum" | "subset_sum" => Ok(Correlation::SubsetSum),
            other => err(format!("unknown correlation `{other}`")),
        }
    }
}

/// Everything one `ftbb-noded` process needs to run.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This node's id.
    pub id: u32,
    /// Address to listen on.
    pub listen: SocketAddr,
    /// Peer nodes as `(id, address)`.
    pub peers: Vec<(u32, SocketAddr)>,
    /// The shared problem.
    pub problem: ProblemSpec,
    /// Hard wall-clock deadline in seconds (safety valve).
    pub deadline_s: f64,
    /// If set, the process `abort()`s this many seconds after start —
    /// a config-driven crash for experiments without an external killer.
    pub crash_at_s: Option<f64>,
    /// RNG seed for protocol randomness (target selection etc.).
    pub seed: u64,
    /// Readiness-barrier budget in seconds: how long the daemon waits
    /// for connections to every peer before injecting `Start`. Peers
    /// that never show up are the Crash model's problem — the node
    /// starts anyway once the budget is spent.
    pub preconnect_s: f64,
    /// Learn the peer map from stdin instead of flags/file: after
    /// printing its `FTBB-READY` line the daemon reads `peer id=addr`
    /// lines terminated by `start`. This is how the launcher wires a
    /// `--listen 127.0.0.1:0` cluster without pre-allocating ports.
    pub peers_from_stdin: bool,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            id: 0,
            listen: "127.0.0.1:0".parse().expect("static addr"),
            peers: Vec::new(),
            problem: ProblemSpec::default(),
            deadline_s: 30.0,
            crash_at_s: None,
            seed: 1,
            preconnect_s: 5.0,
            peers_from_stdin: false,
        }
    }
}

/// Member ids of a cluster (peers + self), sorted and deduplicated —
/// the canonical membership every node derives from its peer map,
/// whether that map came from flags, a file, or stdin wiring.
pub fn member_ids(id: u32, peers: &[(u32, SocketAddr)]) -> Vec<u32> {
    let mut m: Vec<u32> = peers.iter().map(|&(peer, _)| peer).collect();
    m.push(id);
    m.sort_unstable();
    m.dedup();
    m
}

impl NodeConfig {
    /// Member ids of the whole cluster (peers + self), sorted.
    pub fn members(&self) -> Vec<u32> {
        member_ids(self.id, &self.peers)
    }

    /// Validate cross-field invariants.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.peers.iter().any(|&(id, _)| id == self.id) {
            return err(format!("peer list contains own id {}", self.id));
        }
        if self.deadline_s <= 0.0 {
            return err("deadline_s must be positive");
        }
        if !self.preconnect_s.is_finite() || self.preconnect_s < 0.0 {
            return err("preconnect_s must be a non-negative number");
        }
        if self.problem.n == 0 {
            return err("problem.n must be at least 1");
        }
        Ok(())
    }
}

// ------------------------------------------------------- TOML subset

/// A parsed scalar or string-array value.
#[derive(Debug, Clone, PartialEq)]
enum TomlValue {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    StrArray(Vec<String>),
}

impl TomlValue {
    fn parse(raw: &str, line_no: usize) -> Result<TomlValue, ConfigError> {
        let raw = raw.trim();
        if let Some(stripped) = raw.strip_prefix('"') {
            let Some(inner) = stripped.strip_suffix('"') else {
                return err(format!("line {line_no}: unterminated string"));
            };
            if inner.contains('"') {
                return err(format!("line {line_no}: embedded quotes unsupported"));
            }
            return Ok(TomlValue::Str(inner.to_string()));
        }
        if raw.starts_with('[') {
            let Some(inner) = raw.strip_prefix('[').and_then(|r| r.strip_suffix(']')) else {
                return err(format!("line {line_no}: unterminated array"));
            };
            let mut items = Vec::new();
            for part in inner.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                match TomlValue::parse(part, line_no)? {
                    TomlValue::Str(s) => items.push(s),
                    _ => return err(format!("line {line_no}: only string arrays supported")),
                }
            }
            return Ok(TomlValue::StrArray(items));
        }
        match raw {
            "true" => return Ok(TomlValue::Bool(true)),
            "false" => return Ok(TomlValue::Bool(false)),
            _ => {}
        }
        if let Ok(i) = raw.parse::<i64>() {
            return Ok(TomlValue::Int(i));
        }
        if let Ok(f) = raw.parse::<f64>() {
            return Ok(TomlValue::Float(f));
        }
        err(format!("line {line_no}: cannot parse value `{raw}`"))
    }

    fn as_u64(&self, key: &str) -> Result<u64, ConfigError> {
        match self {
            TomlValue::Int(i) if *i >= 0 => Ok(*i as u64),
            _ => err(format!("`{key}` must be a non-negative integer")),
        }
    }

    fn as_f64(&self, key: &str) -> Result<f64, ConfigError> {
        match self {
            TomlValue::Int(i) => Ok(*i as f64),
            TomlValue::Float(f) => Ok(*f),
            _ => err(format!("`{key}` must be a number")),
        }
    }

    fn as_str(&self, key: &str) -> Result<&str, ConfigError> {
        match self {
            TomlValue::Str(s) => Ok(s),
            _ => err(format!("`{key}` must be a string")),
        }
    }
}

/// Parse the TOML subset into `section.key -> value` (top-level keys have
/// no dot).
fn parse_toml_subset(text: &str) -> Result<HashMap<String, TomlValue>, ConfigError> {
    let mut out = HashMap::new();
    let mut section = String::new();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = match line.find('#') {
            // A naive comment strip is fine: config strings never contain '#'.
            Some(pos) => &line[..pos],
            None => line,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[') {
            let Some(name) = name.strip_suffix(']') else {
                return err(format!("line {line_no}: malformed section header"));
            };
            section = name.trim().to_string();
            if section.starts_with('[') {
                return err(format!("line {line_no}: array-of-tables unsupported"));
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return err(format!("line {line_no}: expected `key = value`"));
        };
        let key = key.trim();
        let full_key = if section.is_empty() {
            key.to_string()
        } else {
            format!("{section}.{key}")
        };
        out.insert(full_key, TomlValue::parse(value, line_no)?);
    }
    Ok(out)
}

pub(crate) fn parse_peer(spec: &str) -> Result<(u32, SocketAddr), ConfigError> {
    let Some((id, addr)) = spec.split_once('=') else {
        return err(format!("peer `{spec}` is not `id=host:port`"));
    };
    let id: u32 = id
        .trim()
        .parse()
        .map_err(|_| ConfigError(format!("bad peer id in `{spec}`")))?;
    let addr: SocketAddr = addr
        .trim()
        .parse()
        .map_err(|_| ConfigError(format!("bad peer address in `{spec}`")))?;
    Ok((id, addr))
}

/// Parse a config file's contents.
pub fn parse_config(text: &str) -> Result<NodeConfig, ConfigError> {
    let kv = parse_toml_subset(text)?;
    let mut cfg = NodeConfig::default();
    for (key, value) in &kv {
        match key.as_str() {
            "id" => cfg.id = value.as_u64(key)? as u32,
            "listen" => {
                cfg.listen = value
                    .as_str(key)?
                    .parse()
                    .map_err(|_| ConfigError("bad listen address".to_string()))?;
            }
            "peers" => match value {
                TomlValue::StrArray(items) => {
                    cfg.peers = items
                        .iter()
                        .map(|s| parse_peer(s))
                        .collect::<Result<_, _>>()?;
                }
                _ => return err("`peers` must be an array of \"id=host:port\" strings"),
            },
            "deadline_s" => cfg.deadline_s = value.as_f64(key)?,
            "crash_at_s" => cfg.crash_at_s = Some(value.as_f64(key)?),
            "seed" => cfg.seed = value.as_u64(key)?,
            "preconnect_s" => cfg.preconnect_s = value.as_f64(key)?,
            "peers_from_stdin" => match value {
                TomlValue::Bool(b) => cfg.peers_from_stdin = *b,
                _ => return err("`peers_from_stdin` must be a boolean"),
            },
            "problem.kind" => {
                let kind = value.as_str(key)?;
                if kind != "knapsack" {
                    return err(format!("unsupported problem kind `{kind}`"));
                }
            }
            "problem.n" => cfg.problem.n = value.as_u64(key)? as usize,
            "problem.range" => cfg.problem.range = value.as_u64(key)?,
            "problem.correlation" => {
                cfg.problem.correlation = ProblemSpec::correlation_from(value.as_str(key)?)?;
            }
            "problem.frac" => cfg.problem.frac = value.as_f64(key)?,
            "problem.seed" => cfg.problem.seed = value.as_u64(key)?,
            other => return err(format!("unknown config key `{other}`")),
        }
    }
    cfg.validate()?;
    Ok(cfg)
}

/// Parse CLI arguments (optionally seeded from `--config <file>`).
/// Flags override file values; see the crate README for the list.
pub fn parse_args(args: &[String]) -> Result<NodeConfig, ConfigError> {
    // First pass: locate --config to establish the base.
    let mut base: Option<NodeConfig> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--config" {
            let Some(path) = args.get(i + 1) else {
                return err("--config requires a path");
            };
            let text = std::fs::read_to_string(path)
                .map_err(|e| ConfigError(format!("cannot read config {path}: {e}")))?;
            base = Some(parse_config(&text)?);
        }
        i += 1;
    }
    let mut cfg = base.unwrap_or_default();

    // Flags override file values. For the repeatable --peer flag that
    // means the first occurrence *replaces* the file's peer list (so a
    // flag-supplied topology fully wins), and later occurrences append.
    let mut peers_replaced = false;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let take = |name: &str| -> Result<String, ConfigError> {
            match args.get(i + 1) {
                Some(v) => Ok(v.clone()),
                None => err(format!("{name} requires a value")),
            }
        };
        match flag {
            "--config" => {
                i += 2; // handled in the first pass
                continue;
            }
            "--id" => {
                cfg.id = take("--id")?
                    .parse()
                    .map_err(|_| ConfigError("bad --id".into()))?;
            }
            "--listen" => {
                cfg.listen = take("--listen")?
                    .parse()
                    .map_err(|_| ConfigError("bad --listen address".into()))?;
            }
            "--peer" => {
                if !peers_replaced {
                    cfg.peers.clear();
                    peers_replaced = true;
                }
                cfg.peers.push(parse_peer(&take("--peer")?)?);
            }
            "--deadline-s" => {
                cfg.deadline_s = take("--deadline-s")?
                    .parse()
                    .map_err(|_| ConfigError("bad --deadline-s".into()))?;
            }
            "--crash-at-s" => {
                cfg.crash_at_s = Some(
                    take("--crash-at-s")?
                        .parse()
                        .map_err(|_| ConfigError("bad --crash-at-s".into()))?,
                );
            }
            "--seed" => {
                cfg.seed = take("--seed")?
                    .parse()
                    .map_err(|_| ConfigError("bad --seed".into()))?;
            }
            "--preconnect-s" => {
                cfg.preconnect_s = take("--preconnect-s")?
                    .parse()
                    .map_err(|_| ConfigError("bad --preconnect-s".into()))?;
            }
            "--peers-from-stdin" => {
                cfg.peers_from_stdin = true;
                i += 1; // flag takes no value
                continue;
            }
            "--problem-n" => {
                cfg.problem.n = take("--problem-n")?
                    .parse()
                    .map_err(|_| ConfigError("bad --problem-n".into()))?;
            }
            "--problem-range" => {
                cfg.problem.range = take("--problem-range")?
                    .parse()
                    .map_err(|_| ConfigError("bad --problem-range".into()))?;
            }
            "--problem-correlation" => {
                cfg.problem.correlation =
                    ProblemSpec::correlation_from(&take("--problem-correlation")?)?;
            }
            "--problem-frac" => {
                cfg.problem.frac = take("--problem-frac")?
                    .parse()
                    .map_err(|_| ConfigError("bad --problem-frac".into()))?;
            }
            "--problem-seed" => {
                cfg.problem.seed = take("--problem-seed")?
                    .parse()
                    .map_err(|_| ConfigError("bad --problem-seed".into()))?;
            }
            other => return err(format!("unknown flag `{other}`")),
        }
        i += 2;
    }
    cfg.validate()?;
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# cluster node zero
id = 0
listen = "127.0.0.1:4500"
peers = ["1=127.0.0.1:4501", "2=127.0.0.1:4502"]
deadline_s = 12.5
crash_at_s = 1.5
seed = 9

[problem]
kind = "knapsack"
n = 24
range = 80
correlation = "weak"
frac = 0.5
seed = 11
"#;

    #[test]
    fn parses_full_config() {
        let cfg = parse_config(SAMPLE).unwrap();
        assert_eq!(cfg.id, 0);
        assert_eq!(cfg.listen, "127.0.0.1:4500".parse().unwrap());
        assert_eq!(cfg.peers.len(), 2);
        assert_eq!(cfg.peers[1], (2, "127.0.0.1:4502".parse().unwrap()));
        assert_eq!(cfg.deadline_s, 12.5);
        assert_eq!(cfg.crash_at_s, Some(1.5));
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.problem.n, 24);
        assert_eq!(cfg.problem.range, 80);
        assert_eq!(cfg.problem.correlation, Correlation::Weak);
        assert_eq!(cfg.problem.seed, 11);
        assert_eq!(cfg.members(), vec![0, 1, 2]);
    }

    #[test]
    fn flags_override_file() {
        let dir = std::env::temp_dir().join("ftbb-wire-config-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("node.toml");
        std::fs::write(&path, SAMPLE).unwrap();
        // Without new peer flags the file's peer list stands, so taking
        // id 2 (listed as a peer in the file) must be rejected.
        let args: Vec<String> = [
            "--config",
            path.to_str().unwrap(),
            "--id",
            "2",
            "--listen",
            "127.0.0.1:4502",
            "--problem-seed",
            "77",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let err = parse_args(&args).unwrap_err();
        assert!(err.0.contains("own id"), "{err}");

        // The first --peer flag REPLACES the file's peer list (flags
        // override file values), so the same identity switch works once
        // the topology is given on the command line.
        let args: Vec<String> = [
            "--config",
            path.to_str().unwrap(),
            "--id",
            "2",
            "--listen",
            "127.0.0.1:4502",
            "--peer",
            "0=127.0.0.1:4500",
            "--peer",
            "1=127.0.0.1:4501",
            "--problem-seed",
            "77",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cfg = parse_args(&args).unwrap();
        assert_eq!(cfg.id, 2);
        assert_eq!(cfg.problem.seed, 77);
        assert_eq!(cfg.problem.n, 24, "non-overridden file values survive");
        assert_eq!(cfg.members(), vec![0, 1, 2]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_config("id = ").is_err());
        assert!(parse_config("peers = [3]").is_err());
        assert!(parse_config("listen = \"not-an-addr\"").is_err());
        assert!(parse_config("mystery = 1").is_err());
        assert!(parse_config("[problem\nn = 3").is_err());
        assert!(parse_config("id = 0\npeers = [\"0=127.0.0.1:1\"]").is_err());
        assert!(parse_config("deadline_s = -1").is_err());
        assert!(parse_config("preconnect_s = -0.5").is_err());
        assert!(parse_config("peers_from_stdin = 3").is_err());
        assert!(parse_config("[problem]\ncorrelation = \"psychic\"").is_err());
    }

    #[test]
    fn parses_startup_wiring_options() {
        let cfg = parse_config("preconnect_s = 2.5\npeers_from_stdin = true").unwrap();
        assert_eq!(cfg.preconnect_s, 2.5);
        assert!(cfg.peers_from_stdin);

        let args: Vec<String> = ["--peers-from-stdin", "--preconnect-s", "0.25"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cfg = parse_args(&args).unwrap();
        assert!(cfg.peers_from_stdin);
        assert_eq!(cfg.preconnect_s, 0.25);
    }

    #[test]
    fn same_spec_same_instance_across_nodes() {
        let spec = ProblemSpec::default();
        let a = spec.instance();
        let b = spec.instance();
        assert_eq!(a, b, "instance generation must be deterministic");
    }
}
